"""Fleet cache tier gate (slow tier).

Runs ``benchmarks/run_cluster_cache.py`` — on a Zipf-skewed workload
at 4 replicas under cache pressure, the fleet cache tier must beat the
static hash ring by >= 1.3x on fleet hit-token rate and cut prefill
compute tokens by >= 20%, lose zero requests across a mid-run replica
kill, and stay bit-identical to the single-engine reference.
Excluded from the tier-1 default run; invoke with ``pytest -m slow``.
"""

import pathlib
import sys

import pytest

pytestmark = [pytest.mark.slow, pytest.mark.cluster]

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent
                       / "benchmarks"))

import run_cluster_cache  # noqa: E402


def test_fleet_cache_tier_clears_all_gates():
    assert run_cluster_cache.main([]) == 0
