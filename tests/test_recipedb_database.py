"""Unit tests for the indexed recipe database (repro.recipedb.database)."""

import numpy as np
import pytest

from repro.recipedb import RecipeDatabase, generate_corpus


@pytest.fixture(scope="module")
def db():
    return RecipeDatabase(generate_corpus(80, seed=21))


class TestInsertRemove:
    def test_len(self, db):
        assert len(db) == 80

    def test_duplicate_id_rejected(self, db):
        recipe = db.all()[0]
        with pytest.raises(ValueError):
            db.insert(recipe)

    def test_get_missing_raises(self, db):
        with pytest.raises(KeyError):
            db.get(10**9)

    def test_contains(self, db):
        some_id = db.ids()[0]
        assert some_id in db
        assert 10**9 not in db

    def test_remove_updates_indices(self):
        recipes = generate_corpus(10, seed=3)
        database = RecipeDatabase(recipes)
        victim = recipes[0]
        database.remove(victim.recipe_id)
        assert len(database) == 9
        assert victim.recipe_id not in database
        for name in victim.ingredient_names:
            assert all(r.recipe_id != victim.recipe_id
                       for r in database.with_ingredient(name))
        # reinsert works after removal
        database.insert(victim)
        assert len(database) == 10


class TestQueries:
    def test_by_region_partition(self, db):
        total = sum(len(db.by_region(region))
                    for region in {r.region for r in db.all()})
        assert total == len(db)

    def test_by_country_subset_of_region(self, db):
        recipe = db.all()[0]
        country_hits = db.by_country(recipe.country)
        region_hits = db.by_region(recipe.region)
        assert set(r.recipe_id for r in country_hits) <= \
               set(r.recipe_id for r in region_hits)

    def test_by_continent(self, db):
        recipe = db.all()[0]
        hits = db.by_continent(recipe.continent)
        assert recipe.recipe_id in [r.recipe_id for r in hits]

    def test_with_ingredient(self, db):
        recipe = db.all()[0]
        name = recipe.ingredient_names[0]
        hits = db.with_ingredient(name)
        assert recipe.recipe_id in [r.recipe_id for r in hits]
        assert all(name in r.ingredient_names for r in hits)

    def test_with_all_ingredients_intersection(self, db):
        recipe = db.all()[0]
        names = recipe.ingredient_names[:2]
        hits = db.with_all_ingredients(names)
        assert recipe.recipe_id in [r.recipe_id for r in hits]
        for hit in hits:
            assert all(name in hit.ingredient_names for name in names)

    def test_with_all_ingredients_empty_returns_all(self, db):
        assert len(db.with_all_ingredients([])) == len(db)

    def test_with_any_ingredient_union(self, db):
        r0, r1 = db.all()[0], db.all()[1]
        names = [r0.ingredient_names[0], r1.ingredient_names[0]]
        hits = {r.recipe_id for r in db.with_any_ingredient(names)}
        assert r0.recipe_id in hits and r1.recipe_id in hits

    def test_with_process(self, db):
        recipe = db.all()[0]
        process = recipe.processes[0]
        hits = db.with_process(process)
        assert recipe.recipe_id in [r.recipe_id for r in hits]

    def test_unknown_keys_return_empty(self, db):
        assert db.by_region("Atlantis") == []
        assert db.with_ingredient("unobtainium") == []


class TestStats:
    def test_stats_counts(self, db):
        stats = db.stats()
        assert stats.num_recipes == 80
        assert stats.num_distinct_ingredients > 50
        assert stats.mean_ingredients_per_recipe > 5
        assert stats.mean_instructions_per_recipe > 5

    def test_empty_stats(self):
        stats = RecipeDatabase().stats()
        assert stats.num_recipes == 0
        assert stats.mean_ingredients_per_recipe == 0.0

    def test_ingredient_frequencies_zipfian_head(self, db):
        freqs = db.ingredient_frequencies()
        counts = sorted(freqs.values(), reverse=True)
        # head ingredient should appear far more than median
        assert counts[0] >= 3 * counts[len(counts) // 2]

    def test_process_frequencies(self, db):
        freqs = db.process_frequencies()
        assert sum(freqs.values()) > 0

    def test_sample(self, db):
        rng = np.random.default_rng(0)
        sample = db.sample(10, rng)
        assert len(sample) == 10
        assert len({r.recipe_id for r in sample}) == 10
        with pytest.raises(ValueError):
            db.sample(10**6, rng)
