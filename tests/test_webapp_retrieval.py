"""Integration tests for the retrieval surface of the backend
(docs/RETRIEVAL.md): /api/search, retrieve_k conditioning, novelty in
responses, validation -> 400, and the retrieve_k=0 bit-identity
guarantee against a retrieval-free backend."""

import pytest

from repro.core import PipelineConfig, Ratatouille
from repro.obs import MetricsRegistry
from repro.preprocess import preprocess
from repro.recipedb import generate_corpus
from repro.training import TrainingConfig
from repro.webapp import (ApiError, RatatouilleClient, Server,
                          create_backend)
from repro.webapp.backend import MAX_RETRIEVE_K, MAX_SEARCH_K

pytestmark = pytest.mark.retrieval


@pytest.fixture(scope="module")
def pipeline():
    texts, _ = preprocess(generate_corpus(30, seed=31))
    config = PipelineConfig(
        model_name="distilgpt2",
        training=TrainingConfig(max_steps=30, batch_size=4, warmup_steps=5,
                                eval_every=10**9))
    return Ratatouille.from_texts(texts, config=config)


@pytest.fixture(scope="module")
def registry():
    return MetricsRegistry()


@pytest.fixture(scope="module")
def backend(pipeline, registry):
    index = pipeline.build_retrieval_index(registry=registry)
    app = create_backend(pipeline, registry=registry,
                         retrieval_index=index, retrieve_k=0)
    with Server(app) as server:
        yield server
    app.engine.stop()


@pytest.fixture(scope="module")
def plain_backend(pipeline):
    app = create_backend(pipeline, registry=MetricsRegistry())
    with Server(app) as server:
        yield server
    app.engine.stop()


@pytest.fixture(scope="module")
def client(backend):
    return RatatouilleClient(backend.url, retry=None)


class TestSearchEndpoint:
    def test_query_search(self, client):
        result = client.search(query="chicken with garlic", k=3)
        assert result["mode"] == "ann"
        assert result["documents"] > 0
        assert len(result["hits"]) == 3
        scores = [hit["score"] for hit in result["hits"]]
        assert scores == sorted(scores, reverse=True)
        assert "text" not in result["hits"][0]

    def test_ingredient_search_with_text(self, client):
        result = client.search(ingredients=["garlic", "onion"], k=2,
                               include_text=True)
        assert len(result["hits"]) == 2
        assert result["hits"][0]["text"]

    def test_exact_mode(self, client):
        result = client.search(query="chicken with garlic", k=3, exact=True)
        assert result["mode"] == "exact"
        assert len(result["hits"]) == 3

    @pytest.mark.parametrize("payload", [
        {},                                      # neither query nor list
        {"query": "   "},                        # blank query
        {"query": "x" * 2001},                   # over the length cap
        {"ingredients": []},                     # empty list
        {"query": "ok", "k": 0},                 # k too small
        {"query": "ok", "k": MAX_SEARCH_K + 1},  # k too large
        {"query": "ok", "k": "five"},            # k wrong type
    ])
    def test_validation_400(self, client, payload):
        with pytest.raises(ApiError) as excinfo:
            client._request("POST", "/api/search", payload)
        assert excinfo.value.status == 400

    def test_search_disabled_is_503(self, plain_backend):
        plain = RatatouilleClient(plain_backend.url, retry=None)
        with pytest.raises(ApiError) as excinfo:
            plain.search(query="anything")
        assert excinfo.value.status == 503


class TestRetrievalConditionedGeneration:
    def test_generate_carries_novelty(self, client):
        recipe = client.generate(["garlic", "onion"], max_new_tokens=12,
                                 seed=3)
        assert "novelty" in recipe
        report = recipe["novelty"]
        assert 0.0 <= report["novelty"] <= 1.0
        assert {"similarity", "nearest_id", "memorized"} <= set(report)
        assert recipe["retrieved_k"] == 0

    def test_generate_with_retrieve_k(self, client):
        recipe = client.generate(["garlic", "onion"], max_new_tokens=12,
                                 seed=3, retrieve_k=2)
        assert recipe["retrieved_k"] == 2
        assert "retrieval_degraded" not in recipe
        assert "title" in recipe

    def test_stream_final_event_carries_novelty(self, client):
        events = list(client.generate_stream(["garlic"], max_new_tokens=8,
                                             seed=1, retrieve_k=1))
        final = events[-1]
        assert final.get("done") is True
        assert "novelty" in final["recipe"]
        assert final["recipe"]["retrieved_k"] == 1

    @pytest.mark.parametrize("retrieve_k", [-1, MAX_RETRIEVE_K + 1, "two",
                                            2.5, True])
    def test_bad_retrieve_k_400(self, client, retrieve_k):
        with pytest.raises(ApiError) as excinfo:
            client.generate(["garlic"], max_new_tokens=8,
                            retrieve_k=retrieve_k)
        assert excinfo.value.status == 400

    def test_retrieve_k_without_index_400(self, plain_backend):
        plain = RatatouilleClient(plain_backend.url, retry=None)
        with pytest.raises(ApiError) as excinfo:
            plain.generate(["garlic"], max_new_tokens=8, retrieve_k=2)
        assert excinfo.value.status == 400

    def test_retrieve_k_zero_bit_identical_to_plain_backend(
            self, client, plain_backend):
        """The acceptance criterion: a retrieval-enabled backend with
        retrieve_k=0 generates byte-for-byte what a retrieval-free
        backend generates."""
        plain = RatatouilleClient(plain_backend.url, retry=None)
        payload = dict(max_new_tokens=24, seed=11, temperature=0.8)
        with_index = client.generate(["chicken", "rice"], **payload)
        without = plain.generate(["chicken", "rice"], **payload)
        assert with_index["title"] == without["title"]
        assert with_index["ingredients"] == without["ingredients"]
        assert with_index["instructions"] == without["instructions"]


class TestRetrievalOps:
    def test_health_reports_retrieval(self, client):
        health = client.health()
        assert health["retrieval"]["enabled"] is True
        assert health["retrieval"]["documents"] > 0
        assert health["retrieval"]["default_k"] == 0

    def test_health_without_index(self, plain_backend):
        plain = RatatouilleClient(plain_backend.url, retry=None)
        assert plain.health()["retrieval"]["enabled"] is False

    def test_retrieval_stats_route(self, client):
        stats = client.retrieval_stats()
        assert stats["enabled"] is True
        assert stats["documents"] > 0
        assert "ann" in stats

    def test_retrieval_metrics_exposed(self, client, registry):
        client.search(query="garlic soup", k=1)
        client.generate(["garlic"], max_new_tokens=8, seed=0)
        names = {family.name for family in registry.families()}
        assert "retrieval_searches_total" in names
        assert "retrieval_search_seconds" in names
        assert "novelty_score" in names
