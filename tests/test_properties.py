"""Property-based tests (hypothesis) on core invariants.

These cover the data structures whose correctness everything else
rests on: the tagged format, structured truncation, the recipe
database's index consistency, schema serialization, and BLEU bounds.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.preprocess import (parse_recipe, serialize_sections,
                              structure_errors, truncate_structured)
from repro.recipedb import RecipeDatabase, generate_corpus
from repro.recipedb.schema import Quantity, Recipe

# Words that can appear inside sections without colliding with tags.
_word = st.text(alphabet="abcdefghijklmnop", min_size=1, max_size=8)
_line = st.lists(_word, min_size=1, max_size=6).map(" ".join)


class TestTaggedFormatProperties:
    @given(title=_line,
           ingredients=st.lists(_line, min_size=1, max_size=6),
           instructions=st.lists(_line, min_size=1, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_serialize_parse_roundtrip(self, title, ingredients, instructions):
        text = serialize_sections(title, ingredients, instructions)
        parsed = parse_recipe(text)
        assert parsed.title == title
        assert parsed.ingredients == ingredients
        assert parsed.instructions == instructions
        assert structure_errors(text) == []

    @given(title=_line,
           ingredients=st.lists(_line, min_size=1, max_size=4),
           instructions=st.lists(_line, min_size=2, max_size=10),
           cap=st.integers(min_value=150, max_value=400))
    @settings(max_examples=60, deadline=None)
    def test_structured_truncation_keeps_validity(self, title, ingredients,
                                                  instructions, cap):
        text = serialize_sections(title, ingredients, instructions)
        assume(len(text) > cap)
        # only recipes whose one-step form could ever fit are interesting
        minimal = serialize_sections(title, ingredients, instructions[:1])
        assume(len(minimal) <= cap)
        capped = truncate_structured(text, cap)
        assert len(capped) <= cap
        assert structure_errors(capped) == []
        parsed = parse_recipe(capped)
        # instructions are a prefix of the originals
        assert parsed.instructions == instructions[:len(parsed.instructions)]

    @given(st.text(alphabet="abc <>/_RECIPESTAT", max_size=120))
    @settings(max_examples=60, deadline=None)
    def test_parse_never_crashes_on_garbage(self, text):
        parsed = parse_recipe(text)
        assert isinstance(parsed.ingredients, list)
        assert isinstance(parsed.instructions, list)


class TestDatabaseProperties:
    @given(st.integers(min_value=1, max_value=30),
           st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=15, deadline=None)
    def test_index_consistency(self, n, seed):
        recipes = generate_corpus(n, seed=seed % 1000)
        db = RecipeDatabase(recipes)
        # every recipe is findable through each of its indices
        for recipe in recipes:
            assert recipe.recipe_id in {r.recipe_id
                                        for r in db.by_region(recipe.region)}
            for name in set(recipe.ingredient_names):
                assert recipe.recipe_id in {r.recipe_id
                                            for r in db.with_ingredient(name)}

    @given(st.integers(min_value=2, max_value=15))
    @settings(max_examples=10, deadline=None)
    def test_remove_then_reinsert_is_identity(self, n):
        recipes = generate_corpus(n, seed=5)
        db = RecipeDatabase(recipes)
        victim = recipes[n // 2]
        before = {r.recipe_id for r in db.with_ingredient(
            victim.ingredient_names[0])}
        removed = db.remove(victim.recipe_id)
        db.insert(removed)
        after = {r.recipe_id for r in db.with_ingredient(
            victim.ingredient_names[0])}
        assert before == after
        assert len(db) == n


class TestSchemaProperties:
    @given(st.integers(min_value=0, max_value=20),
           st.sampled_from([0.0, 0.125, 0.25, 0.333, 0.5, 0.667, 0.75]))
    @settings(max_examples=60, deadline=None)
    def test_quantity_display_never_empty_unit_text(self, whole, frac):
        value = whole + frac
        assume(value > 0)
        rendered = Quantity(value, "cup").display()
        assert rendered.endswith("cup")
        assert rendered[0].isdigit()

    @given(st.integers(min_value=0, max_value=999))
    @settings(max_examples=20, deadline=None)
    def test_recipe_dict_roundtrip(self, seed):
        recipe = generate_corpus(1, seed=seed)[0]
        restored = Recipe.from_dict(recipe.to_dict())
        assert restored.title == recipe.title
        assert restored.ingredient_names == recipe.ingredient_names
        assert [s.text for s in restored.instructions] == \
               [s.text for s in recipe.instructions]
        assert restored.nutrition == recipe.nutrition
        # and the roundtrip is a fixed point
        assert restored.to_dict() == recipe.to_dict()


class TestTokenizerProperties:
    @given(st.lists(st.sampled_from(
        ["mix", "the", "flour", "<NEXT_INGR>", "<QTY_1/2>", "salt", "."],
    ), min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_bpe_roundtrip_arbitrary_token_streams(self, words):
        from repro.tokenizers import BPETokenizer
        text = " ".join(words)
        tok = BPETokenizer([text, "mix the flour salt ."], num_merges=30)
        assert tok.decode(tok.encode(text)) == text

    @given(st.integers(min_value=2, max_value=64))
    @settings(max_examples=20, deadline=None)
    def test_char_tokenizer_length_equals_chars(self, n):
        from repro.tokenizers import CharTokenizer
        text = "abc def " * n
        tok = CharTokenizer([text])
        assert len(tok.encode(text)) == len(text)


class TestGenerationProperties:
    @given(st.integers(min_value=1, max_value=30),
           st.integers(min_value=0, max_value=100))
    @settings(max_examples=10, deadline=None)
    def test_generation_length_and_vocab_bounds(self, max_new, seed):
        from repro.models import GenerationConfig, generate
        from repro.models.lstm import LSTMConfig, LSTMLanguageModel
        model = LSTMLanguageModel(LSTMConfig(vocab_size=12, d_embed=4,
                                             d_hidden=8, num_layers=1,
                                             dropout=0.0))
        out = generate(model, [1, 2],
                       GenerationConfig(max_new_tokens=max_new, seed=seed))
        assert len(out) == max_new
        assert all(0 <= t < 12 for t in out)
