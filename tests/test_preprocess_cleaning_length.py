"""Unit tests for cleaning and length ops (repro.preprocess)."""

import dataclasses

import numpy as np
import pytest

from repro.preprocess import (clean_corpus, content_fingerprint,
                              measure_lengths, merge_short_texts,
                              near_duplicate_key, remove_duplicates,
                              remove_incomplete, size_distribution,
                              truncate_corpus, truncate_text)
from repro.recipedb import generate_corpus


@pytest.fixture(scope="module")
def recipes():
    return generate_corpus(30, seed=8)


class TestFingerprint:
    def test_stable(self, recipes):
        assert content_fingerprint(recipes[0]) == content_fingerprint(recipes[0])

    def test_id_independent(self, recipes):
        clone = dataclasses.replace(recipes[0], recipe_id=99999)
        assert content_fingerprint(clone) == content_fingerprint(recipes[0])

    def test_content_dependent(self, recipes):
        clone = dataclasses.replace(recipes[0], title="something else")
        assert content_fingerprint(clone) != content_fingerprint(recipes[0])

    def test_near_key_ignores_instruction_changes(self, recipes):
        base = recipes[0]
        clone = dataclasses.replace(base, instructions=base.instructions[:-1])
        assert near_duplicate_key(clone) == near_duplicate_key(base)


class TestCleaning:
    def test_remove_incomplete(self, recipes):
        broken = dataclasses.replace(recipes[0], recipe_id=1000, title="")
        complete, incomplete = remove_incomplete(list(recipes) + [broken])
        assert len(incomplete) == 1
        assert incomplete[0].recipe_id == 1000
        assert len(complete) == len(recipes)

    def test_remove_exact_duplicates_first_wins(self, recipes):
        dup = dataclasses.replace(recipes[0], recipe_id=1000)
        unique, dups = remove_duplicates(list(recipes) + [dup])
        assert len(dups) == 1
        assert dups[0].recipe_id == 1000

    def test_near_duplicate_removal_toggle(self, recipes):
        base = recipes[0]
        near = dataclasses.replace(base, recipe_id=1000,
                                   instructions=base.instructions[:-1])
        unique_strict, _ = remove_duplicates(list(recipes) + [near], near=True)
        unique_loose, _ = remove_duplicates(list(recipes) + [near], near=False)
        assert len(unique_strict) == len(recipes)
        assert len(unique_loose) == len(recipes) + 1

    def test_clean_corpus_report(self):
        corpus = generate_corpus(40, seed=3, duplicate_rate=0.5,
                                 incomplete_rate=0.25)
        cleaned, report = clean_corpus(corpus)
        assert report.total_in == len(corpus)
        assert report.kept == len(cleaned) == 40
        assert report.incomplete_removed + report.duplicates_removed \
               == len(corpus) - 40
        assert report.total_removed == len(report.removed_ids)

    def test_clean_preserves_order(self, recipes):
        cleaned, _ = clean_corpus(list(recipes))
        assert [r.recipe_id for r in cleaned] == [r.recipe_id for r in recipes]


class TestSizeDistribution:
    def test_basic_stats(self):
        texts = ["a" * 100, "b" * 200, "c" * 300]
        dist = size_distribution(texts, cap=250)
        assert dist.count == 3
        assert dist.mean == pytest.approx(200.0)
        assert dist.minimum == 100
        assert dist.maximum == 300
        assert dist.coverage_at_cap == pytest.approx(2 / 3)

    def test_two_sigma_point(self):
        texts = ["a" * 100, "b" * 300]
        dist = size_distribution(texts)
        assert dist.two_sigma_point == pytest.approx(200 + 2 * 100)
        assert dist.minus_three_sigma_point == pytest.approx(200 - 300)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            size_distribution([])

    def test_measure_lengths(self):
        np.testing.assert_array_equal(measure_lengths(["ab", "c"]), [2, 1])

    def test_corpus_shape_matches_paper(self):
        """The synthetic corpus puts ~2σ near 2000 chars (E3)."""
        from repro.preprocess import PreprocessingPipeline
        pipe = PreprocessingPipeline()
        texts = [pipe.serialize(r) for r in generate_corpus(400, seed=1)]
        dist = size_distribution(texts)
        assert 1600 < dist.two_sigma_point < 2400
        assert 0.90 < dist.coverage_at_cap <= 1.0


class TestTruncation:
    def test_under_cap_untouched(self):
        assert truncate_text("short text", 100) == "short text"

    def test_cuts_on_word_boundary(self):
        text = "one two three four"
        out = truncate_text(text, 12)
        assert out == "one two"
        assert not out.endswith(" ")

    def test_never_splits_tag(self):
        text = "word " + "<RECIPE_START>" * 5
        out = truncate_text(text, 25)
        # every tag in the output is intact
        assert out.count("<") == out.count("<RECIPE_START>")

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            truncate_text("x", 0)

    def test_corpus_count(self):
        texts = ["a b c " * 100, "short"]
        capped, n = truncate_corpus(texts, 50)
        assert n == 1
        assert len(capped[0]) <= 50
        assert capped[1] == "short"


class TestMergeShort:
    def test_packs_short_texts(self):
        # tight distribution around 500 with two -3σ outliers
        texts = ["L" * (500 + i) for i in range(30)] + ["s" * 40, "t" * 40]
        dist = size_distribution(texts)
        assert dist.minus_three_sigma_point > 40
        merged, merges = merge_short_texts(texts, dist)
        assert merges > 0
        assert len(merged) < len(texts)

    def test_no_short_texts_no_merges(self):
        texts = ["x" * 100] * 5
        dist = size_distribution(texts)
        merged, merges = merge_short_texts(texts, dist)
        assert merges == 0
        assert merged == texts

    def test_content_preserved(self):
        texts = ["L" * 400] * 3 + ["alpha", "beta", "gamma"]
        dist = size_distribution(texts)
        merged, _ = merge_short_texts(texts, dist)
        joined = " ".join(merged)
        for token in ("alpha", "beta", "gamma"):
            assert token in joined
