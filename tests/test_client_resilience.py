"""Client-side resilience: retries, circuit breaker, stream interruption.

Transport is stubbed (no sockets): tests monkeypatch
``RatatouilleClient._open`` and inject a recording sleeper, so retry
schedules run instantly and deterministically.
"""

import io
import json
import socket
from urllib.error import HTTPError, URLError

import pytest

from repro.webapp import (ApiError, CircuitBreaker, CircuitOpenError,
                          RatatouilleClient, RetryPolicy, StreamInterrupted)


def _http_error(code, message="boom", retry_after=None):
    headers = {}
    if retry_after is not None:
        headers["Retry-After"] = str(retry_after)
    body = json.dumps({"error": message}).encode("utf-8")
    return HTTPError("http://test/api", code, message, headers,
                     io.BytesIO(body))


class _FakeResponse:
    def __init__(self, body=b"{}"):
        self._body = body

    def read(self):
        return self._body

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


class _ScriptedTransport:
    """Each call pops the next step: an exception to raise or a body."""

    def __init__(self, steps):
        self.steps = list(steps)
        self.calls = 0

    def __call__(self, method, path, payload):
        self.calls += 1
        step = self.steps.pop(0)
        if isinstance(step, BaseException):
            raise step
        return _FakeResponse(step)


def _client(steps, retry=RetryPolicy(max_retries=2, backoff_seconds=0.1),
            breaker=None):
    slept = []
    client = RatatouilleClient("http://test", retry=retry, breaker=breaker,
                               sleep=slept.append)
    transport = _ScriptedTransport(steps)
    client._open = transport
    return client, transport, slept


class TestRetries:
    def test_get_retries_5xx_then_succeeds(self):
        client, transport, slept = _client(
            [_http_error(500), _http_error(502), b'{"status": "ok"}'])
        assert client.health() == {"status": "ok"}
        assert transport.calls == 3
        # capped exponential backoff: 0.1 then 0.2
        assert slept == [pytest.approx(0.1), pytest.approx(0.2)]

    def test_get_retries_transport_errors(self):
        client, transport, _ = _client(
            [URLError("refused"), socket.timeout(), b'{"status": "ok"}'])
        assert client.health() == {"status": "ok"}
        assert transport.calls == 3

    def test_post_not_retried_on_500(self):
        client, transport, _ = _client([_http_error(500), b"{}"])
        with pytest.raises(ApiError) as excinfo:
            client.generate(["garlic"])
        assert excinfo.value.status == 500
        assert transport.calls == 1  # a non-idempotent POST ran once

    def test_post_retried_on_503_honoring_retry_after(self):
        client, transport, slept = _client(
            [_http_error(503, "overloaded", retry_after=1), b'{"ok": true}'])
        assert client.generate(["garlic"]) == {"ok": True}
        assert transport.calls == 2
        assert slept == [pytest.approx(1.0)]  # the server's hint won

    def test_post_retried_on_502_replica_death(self):
        # 502 = a serving replica died mid-request (EngineCrashedError
        # at the backend).  Generation is deterministic, so the resend
        # is idempotent: exactly one logical response comes back across
        # two transport calls.
        client, transport, slept = _client(
            [_http_error(502, "engine thread died"), b'{"title": "Soup"}'])
        assert client.generate(["garlic"]) == {"title": "Soup"}
        assert transport.calls == 2
        assert len(slept) == 1

    def test_502_budget_exhausts_with_the_status(self):
        client, transport, _ = _client([_http_error(502)] * 5)
        with pytest.raises(ApiError) as excinfo:
            client.generate(["garlic"])
        assert excinfo.value.status == 502
        assert transport.calls == 3  # 1 attempt + max_retries=2

    def test_retry_budget_exhausts(self):
        client, transport, slept = _client([_http_error(503)] * 5)
        with pytest.raises(ApiError) as excinfo:
            client.generate(["garlic"])
        assert excinfo.value.status == 503
        assert transport.calls == 3  # 1 attempt + max_retries=2
        assert len(slept) == 2

    def test_backoff_is_capped(self):
        policy = RetryPolicy(max_retries=4, backoff_seconds=1.0,
                             backoff_multiplier=10.0, max_backoff_seconds=2.0)
        client, _, slept = _client([_http_error(503)] * 5, retry=policy)
        with pytest.raises(ApiError):
            client.generate(["garlic"])
        assert max(slept) == pytest.approx(2.0)

    def test_retries_disabled(self):
        client, transport, _ = _client([_http_error(503), b"{}"], retry=None)
        with pytest.raises(ApiError):
            client.generate(["garlic"])
        assert transport.calls == 1

    def test_4xx_never_retried(self):
        client, transport, _ = _client([_http_error(429), b"{}"])
        with pytest.raises(ApiError) as excinfo:
            client.health()
        assert excinfo.value.status == 429
        assert transport.calls == 1


class TestCircuitBreaker:
    def test_opens_after_threshold_and_fails_fast(self):
        clock = [0.0]
        breaker = CircuitBreaker(threshold=2, cooldown_seconds=5.0,
                                 clock=lambda: clock[0])
        client, transport, _ = _client([URLError("down")] * 10, retry=None,
                                       breaker=breaker)
        for _ in range(2):
            with pytest.raises(URLError):
                client.health()
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError):
            client.health()
        assert transport.calls == 2  # the open circuit never hit transport

    def test_half_open_probe_closes_on_success(self):
        clock = [0.0]
        breaker = CircuitBreaker(threshold=1, cooldown_seconds=5.0,
                                 clock=lambda: clock[0])
        client, transport, _ = _client(
            [URLError("down"), b'{"status": "ok"}'], retry=None,
            breaker=breaker)
        with pytest.raises(URLError):
            client.health()
        assert breaker.state == "open"
        clock[0] = 6.0  # cooldown elapsed → half-open probe allowed
        assert client.health() == {"status": "ok"}
        assert breaker.state == "closed"

    def test_half_open_probe_reopens_on_failure(self):
        clock = [0.0]
        breaker = CircuitBreaker(threshold=1, cooldown_seconds=5.0,
                                 clock=lambda: clock[0])
        client, _, _ = _client([URLError("down")] * 3, retry=None,
                               breaker=breaker)
        with pytest.raises(URLError):
            client.health()
        clock[0] = 6.0
        with pytest.raises(URLError):
            client.health()  # the probe
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError):
            client.health()

    def test_4xx_does_not_trip_the_breaker(self):
        breaker = CircuitBreaker(threshold=1)
        client, _, _ = _client([_http_error(400), b'{"status": "ok"}'],
                               retry=None, breaker=breaker)
        with pytest.raises(ApiError):
            client.health()
        assert breaker.state == "closed"
        assert client.health() == {"status": "ok"}


class _FakeStream:
    """Iterable SSE response; optionally dies mid-iteration."""

    def __init__(self, events, die_with=None, terminal=False):
        lines = []
        for event in events:
            lines.append(f"data: {json.dumps(event)}\n".encode("utf-8"))
        self._lines = lines
        self._die_with = die_with
        self.terminal = terminal

    def __iter__(self):
        yield from self._lines
        if self._die_with is not None:
            raise self._die_with

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


class TestStreamInterrupted:
    def _stream_client(self, stream):
        client = RatatouilleClient("http://test", retry=None)
        client._open = lambda method, path, payload: stream
        return client

    def test_eof_without_terminal_event_raises_typed(self):
        stream = _FakeStream([{"token": 4, "text": "a"},
                              {"token": 9, "text": "b"}])
        client = self._stream_client(stream)
        received = []
        with pytest.raises(StreamInterrupted) as excinfo:
            for event in client.generate_stream(["garlic"]):
                received.append(event)
        assert excinfo.value.tokens == [4, 9]  # partial, surfaced
        assert len(received) == 2  # events before the cut still arrived

    def test_connection_error_mid_stream_raises_typed(self):
        stream = _FakeStream([{"token": 7, "text": "x"}],
                             die_with=ConnectionResetError("gone"))
        client = self._stream_client(stream)
        with pytest.raises(StreamInterrupted) as excinfo:
            list(client.generate_stream(["garlic"]))
        assert excinfo.value.tokens == [7]

    def test_done_event_is_a_clean_end(self):
        stream = _FakeStream([{"token": 1, "text": "x"},
                              {"done": True, "recipe": {}}])
        client = self._stream_client(stream)
        events = list(client.generate_stream(["garlic"]))
        assert events[-1]["done"] is True

    def test_error_event_is_a_clean_end(self):
        stream = _FakeStream([{"error": "deadline", "deadline_exceeded": True}])
        client = self._stream_client(stream)
        events = list(client.generate_stream(["garlic"]))
        assert events == [{"error": "deadline", "deadline_exceeded": True}]
