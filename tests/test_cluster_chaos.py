"""Cluster chaos: replica deaths mid-decode never lose or corrupt work.

The headline contract — ISSUE 5's acceptance bar — is the first test:
kill one replica of an N≥2 fleet *mid-batch* with a seeded
:class:`FaultInjector` and every in-flight request still completes,
with results bit-identical to a run where nothing failed.  The rest of
the suite covers the edges: the failover budget, the last-replica
case, and liveness under arbitrary seeded fault plans.
"""

import threading

import pytest

from repro.cluster import ClusterConfig, Router
from repro.models import GenerationConfig, generate
from repro.models.lstm import LSTMConfig, LSTMLanguageModel
from repro.obs import MetricsRegistry, NullRegistry, NullTracer
from repro.resilience import (FaultInjector, FaultSpec, InjectedFault,
                              inject_faults)
from repro.resilience.supervisor import EngineUnavailableError
from repro.serving import (DeadlineExceededError, EngineConfig,
                           EngineCrashedError, EngineStoppedError,
                           InferenceEngine)

pytestmark = [pytest.mark.chaos, pytest.mark.cluster]

CONFIG = GenerationConfig(max_new_tokens=4, seed=0)

TERMINAL_ERRORS = (InjectedFault, EngineCrashedError, EngineStoppedError,
                   EngineUnavailableError, DeadlineExceededError,
                   TimeoutError)


def _model():
    return LSTMLanguageModel(LSTMConfig(vocab_size=16, d_embed=4, d_hidden=8,
                                        num_layers=1, dropout=0.0))


def _cluster(**overrides):
    defaults = dict(replicas=2, saturation_tokens=10**6,
                    restart_backoff_seconds=0.01, heartbeat_seconds=0.01)
    defaults.update(overrides)
    return ClusterConfig(**defaults)


def _factory(model, registry):
    def build(name):
        return InferenceEngine(model, EngineConfig(max_batch_size=2),
                               registry=registry, tracer=NullTracer(),
                               name=name)
    return build


class TestMidDecodeKill:
    def test_replica_death_mid_batch_is_bit_identical(self):
        # Four same-prefix requests pin to one home replica (saturation
        # disabled).  With batch size 2, request 0 (short) retires
        # first; the next admission's prefix_cache.get is call #2 on
        # the injector's deterministic index stream — the fault fires
        # there, killing the home engine thread while the other three
        # requests are mid-decode.
        model = _model()
        registry = MetricsRegistry()
        prompt = [1, 2, 3]
        configs = [GenerationConfig(max_new_tokens=4 if i == 0 else 8,
                                    seed=0) for i in range(4)]
        expected = [generate(model, prompt, config, registry=NullRegistry(),
                             tracer=NullTracer()) for config in configs]
        injector = FaultInjector(
            {"prefix_cache.get": FaultSpec(schedule={2})})
        with Router(_factory(model, registry), _cluster(),
                    registry=registry) as router:
            home = router.affinity_replica(prompt)
            with inject_faults(injector):
                handles = [router.submit(prompt, config)
                           for config in configs]
                for handle in handles:
                    assert handle.replica == home
                results = [None] * len(handles)
                # Consume one victim as a stream: across the failover
                # the replayed prefix must be deduplicated, not
                # re-yielded.
                results[1] = list(handles[1].tokens(timeout=30))
                for index in (0, 2, 3):
                    results[index] = handles[index].result(timeout=30)
            # Zero failed requests, every result byte-equal to the
            # unfailed sequential run.
            assert results == expected
            assert sum(handle.failovers for handle in handles) >= 1
            stats = router.stats()
            assert stats["replicas"][home]["failovers"] >= 1
            survivor = next(name for name in stats["replicas"]
                            if name != home)
            assert stats["replicas"][survivor]["dispatches"] >= 1
        failovers = registry.counter("cluster_failovers_total")
        assert failovers.labels(replica=home).value >= 1

    def test_failover_budget_exhaustion_surfaces_named_error(self):
        model = _model()
        registry = MetricsRegistry()
        injector = FaultInjector(
            {"prefix_cache.get": FaultSpec(schedule={0})})
        with Router(_factory(model, registry),
                    _cluster(max_failovers=0),
                    registry=registry) as router:
            with inject_faults(injector):
                handle = router.submit([1, 2, 3], CONFIG)
                with pytest.raises(EngineCrashedError):
                    handle.result(timeout=10)
            # The request's budget was spent, not the fleet's health:
            # fresh requests keep serving (off the restarting replica).
            assert len(router.generate([1, 2, 3], CONFIG)) == 4

    def test_last_replica_crash_raises_the_crash_error(self):
        # One replica, no restart budget: failover has nowhere to go
        # and must surface the *original* crash error, not a router
        # internality.
        model = _model()
        registry = MetricsRegistry()
        injector = FaultInjector(
            {"prefix_cache.get": FaultSpec(schedule={0})})
        with Router(_factory(model, registry),
                    _cluster(replicas=1, max_restarts=0),
                    registry=registry) as router:
            with inject_faults(injector):
                handle = router.submit([1, 2, 3], CONFIG)
                with pytest.raises(EngineCrashedError):
                    handle.result(timeout=10)


class TestClusterLiveness:
    def test_concurrent_requests_all_terminate_under_faults(self):
        # Arbitrary seeded plan across both fault points: every request
        # resolves — result or named error — within the timeout bound.
        model = _model()
        registry = MetricsRegistry()
        plan = {
            "model.forward": FaultSpec(rate=0.2, delay_seconds=0.002),
            "prefix_cache.get": FaultSpec(schedule={3, 7}, max_faults=2),
        }
        injector = FaultInjector(plan, seed=7)
        outcomes = []
        lock = threading.Lock()
        with Router(_factory(model, registry), _cluster(),
                    registry=registry) as router:

            def one_request(i):
                config = GenerationConfig(max_new_tokens=3 + i % 3, seed=i)
                try:
                    handle = router.submit([1 + i % 5, 2, 3], config)
                    outcome = ("ok", len(handle.result(timeout=30)))
                except TERMINAL_ERRORS as exc:
                    outcome = ("error", type(exc).__name__)
                with lock:
                    outcomes.append(outcome)

            with inject_faults(injector):
                threads = [threading.Thread(target=one_request, args=(i,))
                           for i in range(6)]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=60)
                assert not any(t.is_alive() for t in threads), \
                    "a routed request hung under fault injection"
        assert len(outcomes) == 6
        assert ("error", "TimeoutError") not in outcomes
