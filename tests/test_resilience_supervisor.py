"""Engine supervision: crash detection, bounded restarts, degraded mode.

The crash vector throughout is the ``prefix_cache.get`` fault point —
it fires inside the engine's admission loop, escapes ``_run`` and kills
the engine thread, which is exactly the failure the supervisor exists
to contain.
"""

import time

import pytest

from repro.models import GenerationConfig, generate
from repro.models.lstm import LSTMConfig, LSTMLanguageModel
from repro.obs import MetricsRegistry, NullRegistry, NullTracer
from repro.resilience import (EngineSupervisor, EngineUnavailableError,
                              FaultInjector, FaultSpec, inject_faults,
                              sequential_fallback)
from repro.serving import EngineCrashedError, InferenceEngine

CONFIG = GenerationConfig(max_new_tokens=4, seed=0)


def _model():
    return LSTMLanguageModel(LSTMConfig(vocab_size=16, d_embed=4, d_hidden=8,
                                        num_layers=1, dropout=0.0))


def _supervisor(model, registry=None, **kwargs):
    registry = registry if registry is not None else MetricsRegistry()

    def factory():
        return InferenceEngine(model, registry=registry)

    kwargs.setdefault("backoff_seconds", 0.005)
    kwargs.setdefault("poll_seconds", 0.005)
    return EngineSupervisor(factory, registry=registry, **kwargs)


def _wait_for(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


class TestCrashRecovery:
    def test_crash_fails_request_named_then_restarts(self):
        model = _model()
        registry = MetricsRegistry()
        injector = FaultInjector(
            {"prefix_cache.get": FaultSpec(schedule={0})})
        with _supervisor(model, registry=registry) as sup:
            first_engine = sup.engine
            with inject_faults(injector):
                handle = sup.submit([1, 2, 3], CONFIG)
                # The crash must resolve the request — never hang it.
                with pytest.raises(EngineCrashedError):
                    handle.result(timeout=10)
                assert _wait_for(lambda: sup.restarts == 1)
            assert sup.state == "serving"
            assert sup.engine is not first_engine
            assert sup.engine.prefix_cache is not first_engine.prefix_cache
            # The replacement serves, bit-identically to sequential.
            expected = generate(model, [1, 2, 3], CONFIG,
                                registry=NullRegistry(), tracer=NullTracer())
            assert sup.generate([1, 2, 3], CONFIG) == expected
        assert registry.counter("engine_crashes_total").value == 1
        assert registry.counter("engine_restarts_total").value == 1

    def test_restart_budget_exhausts_to_failed(self):
        model = _model()
        injector = FaultInjector({"prefix_cache.get": FaultSpec(rate=1.0)})
        with _supervisor(model, max_restarts=2) as sup:
            with inject_faults(injector):
                # Keep crashing whichever engine is serving until the
                # restart budget (initial + 2 replacements) runs out.
                deadline = time.monotonic() + 30
                while sup.state != "failed" and time.monotonic() < deadline:
                    if sup.state == "serving":
                        try:
                            sup.submit([1, 2], CONFIG).result(timeout=10)
                        except (EngineCrashedError, EngineUnavailableError):
                            pass
                    time.sleep(0.005)
                assert sup.state == "failed"
            assert sup.restarts == 2  # the cap held
            with pytest.raises(EngineUnavailableError):
                sup.submit([1, 2], CONFIG)
            with pytest.raises(EngineUnavailableError):
                sup.generate([1, 2], CONFIG)

    def test_degraded_fallback_serves_while_down(self):
        model = _model()
        registry = MetricsRegistry()
        injector = FaultInjector({"prefix_cache.get": FaultSpec(rate=1.0)})
        expected = generate(model, [1, 2, 3], CONFIG,
                            registry=NullRegistry(), tracer=NullTracer())
        with _supervisor(model, registry=registry, max_restarts=0,
                         fallback=sequential_fallback(model)) as sup:
            with inject_faults(injector):
                try:
                    sup.generate([9, 9], CONFIG)
                except EngineCrashedError:
                    pass
                assert _wait_for(lambda: sup.state == "failed")
                tokens, degraded = sup.generate_ex([1, 2, 3], CONFIG)
            assert degraded
            assert tokens == expected  # degraded ≠ different output
            # Streaming has no degraded mode: submit stays unavailable.
            with pytest.raises(EngineUnavailableError):
                sup.submit([1, 2], CONFIG)
        assert registry.counter("engine_degraded_requests_total").value >= 1

    def test_clean_stop_is_not_a_crash(self):
        model = _model()
        registry = MetricsRegistry()
        sup = _supervisor(model, registry=registry)
        engine = sup.engine
        engine.stop()  # external stop of the inner engine, then the sup
        time.sleep(0.05)  # give the watchdog polls a chance to misfire
        sup.stop()
        assert registry.counter("engine_crashes_total").value == 0
        assert sup.restarts == 0


class TestFailInflight:
    def test_idempotent_and_counts_once(self):
        model = _model()
        registry = MetricsRegistry()
        engine = InferenceEngine(model, registry=registry)
        try:
            injector = FaultInjector(
                {"prefix_cache.get": FaultSpec(schedule={0})})
            with inject_faults(injector):
                handle = engine.submit([1, 2], CONFIG)
                with pytest.raises(EngineCrashedError):
                    handle.result(timeout=10)
            # The engine already failed its own in-flight work; a
            # supervisor calling again must be a harmless no-op.
            assert engine.fail_inflight(EngineCrashedError("again")) == 0
            assert engine.crashed is not None
            assert engine.stats()["crashed"]
            with pytest.raises(EngineCrashedError):
                engine.submit([1, 2], CONFIG)
        finally:
            engine.stop()
        failed = registry.counter("engine_requests_total").labels(
            outcome="failed", strategy="plain")
        assert failed.value == 1

    def test_stats_report_supervisor_block(self):
        model = _model()
        with _supervisor(model, max_restarts=5) as sup:
            stats = sup.stats()
        block = stats["supervisor"]
        assert block["state"] in ("serving", "stopped")
        assert block["max_restarts"] == 5
        assert block["restarts"] == 0
        assert block["degraded_available"] is False
