"""Unit tests for repro.decoding: grammar FSM, constraints, MCTS.

The contracts under test (``docs/DECODING.md``):

* the grammar mask only admits tokens whose successor state can still
  close the recipe within the remaining budget — a tight budget forces
  the shortest closing path and the output always parses;
* constraint parsing/validation fails with *named* error prefixes
  (``unknown_diet`` / ``conflicting_constraints`` / ...), which the
  backend surfaces as HTTP 400s;
* :class:`PhraseBlocker` bans canonical tokenizations *and* merged
  vocabulary pieces whose surface mentions a banned word;
* seeded MCTS is deterministic, prefers constraint-satisfying rollouts
  over higher-reward violating ones, and degrades — never raises — on
  a reward failure;
* with ``constraints`` absent, the request path is bit-identical to
  the plain engine (the constrained-off regression).
"""

import numpy as np
import pytest

from repro.core import PipelineConfig, Ratatouille
from repro.models import GenerationConfig, distilgpt2, generate
from repro.obs import MetricsRegistry, NullRegistry, NullTracer
from repro.preprocess import preprocess
from repro.preprocess.formatting import (INSTR_END, NEXT_INSTR, RECIPE_END,
                                         TITLE_END, TITLE_START, parse_recipe)
from repro.recipedb import default_catalog, generate_corpus
from repro.serving import InferenceEngine
from repro.tokenizers import BPETokenizer, WordTokenizer
from repro.training import TrainingConfig
from repro.decoding import (Constraints, GrammarMask, MCTSDecoder, MIN_BUDGET,
                            PhraseBlocker, RecipeGrammar, RecipeReward,
                            apply_constraints_to_prompt, estimate_calories,
                            parse_constraints, run_constrained_generation,
                            violations)
from repro.decoding.constraints import _surface_banned_ids
from repro.decoding.grammar import CLOSE_COST, S_INSTR_EMPTY
from repro.decoding.reward import RewardBreakdown
from repro.webapp.backend import _admission_cost, _parse_generation_request


@pytest.fixture(scope="module")
def texts():
    corpus, _ = preprocess(generate_corpus(40, seed=13))
    return corpus


@pytest.fixture(scope="module")
def tokenizer(texts):
    return WordTokenizer(texts)


@pytest.fixture(scope="module")
def grammar(tokenizer):
    return RecipeGrammar(tokenizer)


@pytest.fixture(scope="module")
def catalog():
    return default_catalog()


@pytest.fixture(scope="module")
def pipeline():
    config = PipelineConfig(
        model_name="word-lstm",
        training=TrainingConfig(max_steps=5, batch_size=4,
                                eval_every=10**9))
    return Ratatouille.quickstart(model_name="word-lstm", num_recipes=30,
                                  seed=0, config=config)


def _tag(grammar, name):
    return grammar.tag_ids[name]


class TestGrammar:
    def test_start_state_allows_only_content(self, grammar):
        mask = GrammarMask(grammar, max_new_tokens=64)
        allowed = set(mask.allowed_ids([]).tolist())
        assert allowed == set(grammar.content_ids.tolist())

    def test_tag_walk_follows_the_format(self, grammar):
        mask = GrammarMask(grammar, max_new_tokens=64)
        content = int(grammar.content_ids[0])
        history = [content, _tag(grammar, INSTR_END)]
        assert set(mask.allowed_ids(history).tolist()) == {
            _tag(grammar, TITLE_START)}
        history += [_tag(grammar, TITLE_START), content,
                    _tag(grammar, TITLE_END)]
        assert set(mask.allowed_ids(history).tolist()) == {
            _tag(grammar, RECIPE_END)}
        history.append(_tag(grammar, RECIPE_END))
        assert set(mask.allowed_ids(history).tolist()) == {grammar.eos_id}

    def test_tight_budget_forces_the_closing_path(self, grammar, tokenizer):
        # At exactly MIN_BUDGET the only legal walk is the shortest
        # close: content, <INSTR_END>, <TITLE_START>, content,
        # <TITLE_END>, <RECIPE_END>, <EOS> — and it parses.
        mask = GrammarMask(grammar, max_new_tokens=MIN_BUDGET)
        history = []
        rng = np.random.default_rng(0)
        for _ in range(MIN_BUDGET):
            allowed = mask.allowed_ids(history)
            assert allowed.size >= 1  # never a dead end
            history.append(int(rng.choice(allowed)))
        assert history[1] == _tag(grammar, INSTR_END)
        assert history[2] == _tag(grammar, TITLE_START)
        assert history[-2] == _tag(grammar, RECIPE_END)
        assert history[-1] == tokenizer.eos_id

    def test_budget_below_close_cost_is_rejected(self, grammar):
        with pytest.raises(ValueError, match="cannot close"):
            GrammarMask(grammar, max_new_tokens=MIN_BUDGET - 1)
        assert MIN_BUDGET == CLOSE_COST[S_INSTR_EMPTY]

    def test_shrunk_history_resets_the_automaton(self, grammar):
        mask = GrammarMask(grammar, max_new_tokens=64)
        content = int(grammar.content_ids[0])
        mask.allowed_ids([content, _tag(grammar, INSTR_END)])
        # Failover replay: a shorter history must replay from scratch,
        # not continue from the stale post-<INSTR_END> state.
        fresh = GrammarMask(grammar, max_new_tokens=64)
        assert (set(mask.allowed_ids([content]).tolist())
                == set(fresh.allowed_ids([content]).tolist()))

    def test_preamble_resumes_mid_recipe(self, grammar):
        preamble = [int(grammar.content_ids[0]), _tag(grammar, INSTR_END)]
        mask = GrammarMask(grammar, max_new_tokens=8, preamble=preamble)
        assert set(mask.allowed_ids([]).tolist()) == {
            _tag(grammar, TITLE_START)}

    def test_masked_greedy_decode_parses(self, grammar, tokenizer):
        # Argmax over masked pseudo-random logits, any budget: the
        # emitted text (appended to a prompt) always parses.
        rng = np.random.default_rng(7)
        mask = GrammarMask(grammar, max_new_tokens=24)
        history = []
        for _ in range(24):
            logits = rng.normal(size=tokenizer.vocab_size)
            masked = mask(logits, history)
            history.append(int(np.argmax(masked)))
            if history[-1] == tokenizer.eos_id:
                break
        text = ("<RECIPE_START> <INGR_START> onion <INGR_END> "
                "<INSTR_START> " + tokenizer.decode(history))
        parsed = parse_recipe(text)
        assert parsed.title
        assert parsed.instructions


class TestParseConstraints:
    def test_unknown_diet_is_named(self):
        with pytest.raises(ValueError, match="unknown_diet"):
            parse_constraints({"diet": "carnivore"})

    def test_unknown_key_is_named(self):
        with pytest.raises(ValueError, match="unknown_constraint"):
            parse_constraints({"forbidden": ["x"]})

    def test_include_exclude_overlap_is_named(self):
        with pytest.raises(ValueError, match="conflicting_constraints"):
            parse_constraints({"include_ingredients": ["garlic"],
                               "exclude_ingredients": ["garlic"]})

    @pytest.mark.parametrize("calories", [0, -10, True, "many"])
    def test_bad_max_calories(self, calories):
        with pytest.raises(ValueError, match="unknown_constraint"):
            parse_constraints({"max_calories": calories})

    def test_name_list_cap(self):
        with pytest.raises(ValueError, match="unknown_constraint"):
            parse_constraints({"exclude_ingredients": ["x"] * 21})

    def test_diet_spelling_normalizes(self):
        assert parse_constraints({"diet": "Dairy-Free"}).diet == "dairy_free"

    def test_vegan_bans_meat_dairy_and_eggs(self, catalog):
        banned = parse_constraints({"diet": "vegan"}).banned_names(catalog)
        for name in ("chicken breast", "milk", "egg", "honey"):
            assert name in banned

    def test_exclusions_merge_with_diet(self, catalog):
        constraints = parse_constraints(
            {"diet": "vegetarian", "exclude_ingredients": ["cilantro"]})
        banned = constraints.banned_names(catalog)
        assert "cilantro" in banned
        assert "chicken breast" in banned


class TestPromptApplication:
    def test_includes_merge_into_the_prompt(self, catalog):
        constraints = parse_constraints({"include_ingredients": ["basil"]})
        merged = apply_constraints_to_prompt(["onion"], constraints, catalog)
        assert merged == ["onion", "basil"]

    def test_excluded_prompt_ingredient_is_named(self, catalog):
        constraints = parse_constraints({"exclude_ingredients": ["garlic"]})
        with pytest.raises(ValueError, match="conflicting_constraints"):
            apply_constraints_to_prompt(["2 clove garlic"], constraints,
                                        catalog)

    def test_diet_banned_prompt_ingredient_is_named(self, catalog):
        constraints = parse_constraints({"diet": "vegan"})
        with pytest.raises(ValueError, match="diet_conflict"):
            apply_constraints_to_prompt(["chicken breast"], constraints,
                                        catalog)

    def test_calorie_ceiling_is_named(self, catalog):
        constraints = parse_constraints({"max_calories": 1})
        with pytest.raises(ValueError, match="calories_exceeded"):
            apply_constraints_to_prompt(["500 g butter"], constraints,
                                        catalog)

    def test_calorie_estimate_is_deterministic(self, catalog):
        lines = ["2 cup flour", "1 tbsp olive oil", "chicken breast"]
        first = estimate_calories(lines, catalog)
        assert first > 0
        assert estimate_calories(lines, catalog) == first


class TestPhraseBlocker:
    def test_canonical_single_token_is_banned(self, tokenizer):
        blocker = PhraseBlocker(tokenizer, ["garlic"])
        garlic = tokenizer.encode("garlic")[0]
        logits = np.zeros(tokenizer.vocab_size)
        assert blocker(logits, [])[garlic] == -np.inf

    def test_multi_token_phrase_blocks_completion_only(self, tokenizer):
        ids = tokenizer.encode("olive oil")
        assert len(ids) == 2  # word tokenizer: one id per word
        blocker = PhraseBlocker(tokenizer, ["olive oil"])
        logits = np.zeros(tokenizer.vocab_size)
        # "oil" alone is fine...
        assert np.isfinite(blocker(logits, [])[ids[1]])
        # ...but not right after "olive".
        assert blocker(logits, [ids[0]])[ids[1]] == -np.inf

    def test_preamble_carries_the_phrase_prefix(self, tokenizer):
        ids = tokenizer.encode("olive oil")
        blocker = PhraseBlocker(tokenizer, ["olive oil"], preamble=[ids[0]])
        logits = np.zeros(tokenizer.vocab_size)
        assert blocker(logits, [])[ids[1]] == -np.inf

    def test_surface_scan_bans_merged_bpe_pieces(self, texts):
        # BPE merges produce vocabulary pieces like "garlic,</w>" whose
        # canonical encoding of "garlic" never covers them; the surface
        # scan must catch every piece that *mentions* the word.
        bpe = BPETokenizer(texts, num_merges=300)
        merged = bpe.token_to_id("onion,</w>")  # punctuation-merged piece
        assert merged != bpe.unk_id
        surface = _surface_banned_ids(bpe, ("onion",))
        assert merged in surface
        blocker = PhraseBlocker(bpe, ["onion"])
        logits = np.zeros(bpe.vocab_size)
        out = blocker(logits, [])
        for idx in surface:
            assert out[idx] == -np.inf

    def test_surface_scan_respects_word_boundaries(self, texts):
        # "boil" contains "oil" but not at a word boundary: banning
        # "oil" must not ban the cooking verb.
        bpe = BPETokenizer(texts, num_merges=300)
        boil = bpe.token_to_id("boil</w>")
        assert boil != bpe.unk_id
        assert boil not in _surface_banned_ids(bpe, ("oil",))

    def test_surface_scan_is_memoised(self, tokenizer):
        first = _surface_banned_ids(tokenizer, ("garlic", "onion"))
        assert _surface_banned_ids(tokenizer, ("garlic", "onion")) is first


class TestViolationsPredicate:
    def test_banned_mention_is_flagged(self, catalog):
        constraints = parse_constraints({"exclude_ingredients": ["garlic"]})
        problems = violations(constraints, "fry the garlic gently", catalog)
        assert problems == ["exclude:garlic"]

    def test_word_boundary_not_substring(self, catalog):
        constraints = parse_constraints({"exclude_ingredients": ["rice"]})
        assert violations(constraints, "a pinch of turmeric", catalog) == []

    def test_missing_include_is_flagged(self, catalog):
        constraints = parse_constraints({"include_ingredients": ["basil"]})
        assert violations(constraints, "boil the pasta", catalog) == [
            "include:basil"]

    def test_diet_violation_labelled_diet(self, catalog):
        constraints = parse_constraints({"diet": "vegan"})
        assert "diet:chicken breast" in violations(
            constraints, "add the chicken breast", catalog)


def _breakdown(total):
    return RewardBreakdown(total=total, components={"format": total})


class TestMCTSDecoder:
    def _stub_submit(self, table):
        def submit(prompt, config, processors, deadline_ms):
            return list(table[config.strategy])
        return submit

    def test_reward_failure_degrades_to_greedy(self):
        greedy_tokens = [5, 6, 7]

        def reward(_ids):
            raise RuntimeError("reward backend down")

        decoder = MCTSDecoder(
            submit=self._stub_submit({"greedy": greedy_tokens,
                                      "sample": [8, 9]}),
            build_processors=lambda preamble, budget: [],
            reward=reward)
        result = decoder.search([1, 2], GenerationConfig(
            max_new_tokens=MIN_BUDGET, strategy="mcts", mcts_rollouts=4))
        assert result.search_degraded is True
        assert result.tokens == greedy_tokens
        assert result.reward is None

    def test_satisfying_rollout_outranks_higher_reward_violator(self):
        # sample rollouts score higher but violate; the greedy rollout
        # satisfies — satisfaction must win.
        table = {"greedy": [1, 2, 3], "sample": [4, 5, 6]}
        decoder = MCTSDecoder(
            submit=self._stub_submit(table),
            build_processors=lambda preamble, budget: [],
            reward=lambda ids: _breakdown(
                0.9 if list(ids)[-3:] == table["sample"] else 0.4),
            satisfies=lambda ids: list(ids)[-3:] == table["greedy"])
        result = decoder.search([0], GenerationConfig(
            max_new_tokens=MIN_BUDGET, strategy="mcts", mcts_rollouts=3))
        assert result.tokens[-3:] == table["greedy"]
        assert result.rollouts == 3

    def test_best_reward_wins_when_all_satisfy(self):
        table = {"greedy": [1, 2, 3], "sample": [4, 5, 6]}
        decoder = MCTSDecoder(
            submit=self._stub_submit(table),
            build_processors=lambda preamble, budget: [],
            reward=lambda ids: _breakdown(
                0.9 if list(ids)[-3:] == table["sample"] else 0.4))
        result = decoder.search([0], GenerationConfig(
            max_new_tokens=MIN_BUDGET, strategy="mcts", mcts_rollouts=3))
        assert result.tokens[-3:] == table["sample"]
        assert result.reward.total == 0.9

    def test_prompt_tokens_submitted_accumulates(self):
        decoder = MCTSDecoder(
            submit=self._stub_submit({"greedy": [1] * 20,
                                      "sample": [2] * 20}),
            build_processors=lambda preamble, budget: [],
            reward=lambda ids: _breakdown(0.5))
        result = decoder.search([0] * 10, GenerationConfig(
            max_new_tokens=40, strategy="mcts", mcts_rollouts=4))
        # Every rollout resubmits at least the 10-token prompt.
        assert result.prompt_tokens_submitted >= 10 * result.rollouts


class TestConstrainedGeneration:
    CONSTRAINTS = {"exclude_ingredients": ["garlic"],
                   "include_ingredients": ["onion"]}

    def _config(self, **overrides):
        base = dict(max_new_tokens=32, strategy="greedy", seed=11,
                    constraints=parse_constraints(self.CONSTRAINTS))
        base.update(overrides)
        return GenerationConfig(**base)

    def test_greedy_constrained_output_parses_and_satisfies(
            self, pipeline, catalog):
        config = self._config()
        names = apply_constraints_to_prompt(
            ["onion", "tomato"], config.constraints, catalog)
        prompt_text, new_ids, config, info = run_constrained_generation(
            pipeline, names, config, catalog=catalog)
        recipe = pipeline.finish_recipe(prompt_text, new_ids, names)
        assert recipe.is_valid  # grammar guarantee: it parses
        assert info["constraints_satisfied"] is True
        assert violations(config.constraints, recipe.raw_text, catalog) == []

    def test_mcts_is_deterministic_and_reports_search(
            self, pipeline, catalog):
        config = self._config(strategy="mcts", mcts_rollouts=4)
        names = apply_constraints_to_prompt(
            ["onion", "tomato"], config.constraints, catalog)
        runs = [run_constrained_generation(pipeline, names,
                                           self._config(strategy="mcts",
                                                        mcts_rollouts=4),
                                           catalog=catalog)
                for _ in range(2)]
        (_, ids_a, _, info_a), (_, ids_b, _, info_b) = runs
        assert ids_a == ids_b
        assert info_a["search"] == info_b["search"]
        search = info_a["search"]
        assert search["strategy"] == "mcts"
        assert search["rollouts"] == 4
        assert search["prompt_tokens_submitted"] > 0
        assert 0.0 <= search["reward"]["total"] <= 1.0
        assert info_a["constraints_satisfied"] is True

    def test_reward_is_deterministic(self, pipeline, catalog):
        scorer = RecipeReward(["onion"], catalog=catalog)
        text = ("<RECIPE_START> <INGR_START> onion <INGR_END> "
                "<INSTR_START> chop the onion <NEXT_INSTR> serve warm "
                "<INSTR_END> <TITLE_START> onion bowl <TITLE_END> "
                "<RECIPE_END>")
        assert scorer(text).as_dict() == scorer(text).as_dict()
        assert set(scorer(text).components) == {
            "format", "constraints", "novelty", "pairing", "diversity",
            "length"}


class TestConstrainedOffRegression:
    def test_plain_payload_parses_to_default_config(self, catalog):
        names, config, _ = _parse_generation_request(
            {"ingredients": ["onion"], "max_new_tokens": 12, "seed": 3},
            catalog=catalog)
        assert names == ["onion"]
        assert config.constraints is None
        assert config.strategy == "sample"

    def test_constrained_off_is_bit_identical_to_plain_engine(
            self, pipeline, catalog):
        names, config, _ = _parse_generation_request(
            {"ingredients": ["onion", "tomato"], "max_new_tokens": 16,
             "seed": 5, "strategy": "sample"}, catalog=catalog)
        _, prompt_ids, config, processors = pipeline.prepare_prompt(
            names, generation=config)
        sequential = generate(pipeline.model, prompt_ids, config,
                              processors=processors,
                              registry=NullRegistry(), tracer=NullTracer())
        with InferenceEngine(pipeline.model) as engine:
            batched = engine.generate(prompt_ids, config,
                                      processors=processors)
        assert batched == sequential


class TestAdmissionCost:
    def test_mcts_cost_is_token_denominated(self):
        config = GenerationConfig(max_new_tokens=32, strategy="mcts",
                                  mcts_rollouts=8)
        assert _admission_cost(config) == 32 * 9

    def test_plain_cost_unchanged(self):
        config = GenerationConfig(max_new_tokens=32)
        assert _admission_cost(config) == 32


VOCAB = 32


class TestEngineStrategyLabels:
    def test_requests_and_tokens_carry_strategy(self):
        model = distilgpt2(vocab_size=VOCAB, context_length=64)
        registry = MetricsRegistry()
        plain = GenerationConfig(max_new_tokens=5, seed=0)
        rollout = GenerationConfig(max_new_tokens=5, seed=0,
                                   mcts_rollout=True)
        with InferenceEngine(model, registry=registry) as engine:
            engine.generate([1, 2, 3], plain)
            engine.generate([1, 2, 3], rollout)
        requests = registry.counter("engine_requests_total")
        assert requests.labels(outcome="completed",
                               strategy="plain").value == 1
        assert requests.labels(outcome="completed",
                               strategy="mcts").value == 1
        tokens = registry.counter("engine_tokens_total")
        assert tokens.labels(strategy="plain").value == 5
        assert tokens.labels(strategy="mcts").value == 5

    def test_engine_rejects_raw_mcts_strategy(self):
        # The tree searches; the engine only ever decodes rollouts.
        model = distilgpt2(vocab_size=VOCAB, context_length=64)
        with InferenceEngine(model) as engine:
            with pytest.raises(ValueError, match="mcts"):
                engine.submit([1, 2, 3], GenerationConfig(
                    max_new_tokens=8, strategy="mcts"))
