"""Unit + property tests for number special tokens (repro.preprocess.numbers)."""

import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.preprocess import (decode_numbers, encode_numbers,
                              number_tokens_in, vocabulary_from)


class TestEncode:
    def test_mixed_fraction(self):
        assert encode_numbers("1 1/2 cup flour") == "<QTY_1_1/2> cup flour"

    def test_bare_fraction(self):
        assert encode_numbers("3/4 teaspoon salt") == "<QTY_3/4> teaspoon salt"

    def test_integer(self):
        assert encode_numbers("bake 30 minutes") == "bake <NUM_30> minutes"

    def test_multiple_occurrences(self):
        out = encode_numbers("2 eggs and 1/2 cup milk for 20 minutes")
        assert out == "<NUM_2> eggs and <QTY_1/2> cup milk for <NUM_20> minutes"

    def test_number_inside_word_untouched(self):
        assert encode_numbers("gpt2 model") == "gpt2 model"
        assert encode_numbers("a100 gpu") == "a100 gpu"

    def test_decimal_untouched(self):
        # decimals are not in the corpus grammar; leave them alone
        assert encode_numbers("1.5 liters") == "1.5 liters"

    def test_temperature(self):
        assert encode_numbers("preheat to 425 degrees") == \
               "preheat to <NUM_425> degrees"


class TestDecode:
    def test_inverts_mixed(self):
        assert decode_numbers("<QTY_1_1/2> cup") == "1 1/2 cup"

    def test_inverts_bare(self):
        assert decode_numbers("<QTY_2/3> cup") == "2/3 cup"

    def test_inverts_integer(self):
        assert decode_numbers("<NUM_350> degrees") == "350 degrees"

    def test_unknown_tokens_untouched(self):
        assert decode_numbers("<RECIPE_START> hello") == "<RECIPE_START> hello"


class TestRoundtrip:
    CASES = [
        "1 1/2 pound chicken , cubed",
        "1/4 teaspoon salt and 2 cloves garlic",
        "bake at 375 for 45 minutes",
        "divide dough into 4 equal pieces ; roll to 1/4 inch",
        "no numbers here at all",
        "8 to 10 minutes",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_exact_roundtrip(self, text):
        assert decode_numbers(encode_numbers(text)) == text

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=50)
    def test_integer_roundtrip_property(self, n):
        text = f"cook for {n} minutes"
        assert decode_numbers(encode_numbers(text)) == text

    @given(st.integers(1, 99), st.integers(1, 16), st.integers(2, 16))
    @settings(max_examples=50)
    def test_mixed_fraction_roundtrip_property(self, whole, num, den):
        text = f"add {whole} {num}/{den} cup"
        assert decode_numbers(encode_numbers(text)) == text

    @given(st.text(alphabet="abcdefghij ,.;", max_size=60))
    @settings(max_examples=50)
    def test_numberless_text_is_fixed_point(self, text):
        assert encode_numbers(text) == text


class TestHelpers:
    def test_number_tokens_in_order(self):
        encoded = encode_numbers("2 cups then 1/2 cup then 30 minutes")
        assert number_tokens_in(encoded) == ["<NUM_2>", "<QTY_1/2>", "<NUM_30>"]

    def test_vocabulary_from_sorted_unique(self):
        texts = [encode_numbers("2 cups for 30 minutes"),
                 encode_numbers("2 cups for 45 minutes")]
        vocab = vocabulary_from(texts)
        assert vocab == sorted(set(vocab))
        assert "<NUM_2>" in vocab
        assert "<NUM_45>" in vocab

    def test_encoded_tokens_are_single_words(self):
        encoded = encode_numbers("1 1/2 cup flour")
        first_word = encoded.split()[0]
        assert re.fullmatch(r"<QTY_[0-9_/]+>", first_word)
