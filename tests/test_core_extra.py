"""Additional core-path coverage: checkpoint versioning, prompt
construction edge cases, pipeline configuration interactions."""

import json

import numpy as np
import pytest

from repro.core import PipelineConfig, Ratatouille
from repro.core.checkpoints import FORMAT_VERSION, load_checkpoint
from repro.models import GenerationConfig
from repro.preprocess import (PreprocessConfig, format_prompt, preprocess)
from repro.recipedb import generate_corpus
from repro.training import TrainingConfig


@pytest.fixture(scope="module")
def tiny_app():
    texts, _ = preprocess(generate_corpus(20, seed=81))
    config = PipelineConfig(
        model_name="distilgpt2",
        training=TrainingConfig(max_steps=15, batch_size=4, warmup_steps=2,
                                eval_every=10**9))
    return Ratatouille.from_texts(texts, config=config)


class TestCheckpointVersioning:
    def test_future_version_rejected(self, tiny_app, tmp_path):
        tiny_app.save(tmp_path / "ckpt")
        config_path = tmp_path / "ckpt" / "config.json"
        payload = json.loads(config_path.read_text())
        payload["format_version"] = FORMAT_VERSION + 1
        config_path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="format"):
            load_checkpoint(tmp_path / "ckpt")

    def test_corrupt_weights_detected(self, tiny_app, tmp_path):
        tiny_app.save(tmp_path / "ckpt")
        weights_path = tmp_path / "ckpt" / "weights.npz"
        # remove one array from the archive
        with np.load(weights_path) as archive:
            state = {name: archive[name] for name in archive.files}
        some_key = next(iter(state))
        del state[some_key]
        np.savez(weights_path, **state)
        with pytest.raises(KeyError):
            load_checkpoint(tmp_path / "ckpt")

    def test_checkpoint_files_complete(self, tiny_app, tmp_path):
        tiny_app.save(tmp_path / "ckpt")
        for name in ("config.json", "weights.npz", "tokenizer.json"):
            assert (tmp_path / "ckpt" / name).exists()


class TestGenerationEdgeCases:
    def test_single_ingredient(self, tiny_app):
        out = tiny_app.generate(["salt"],
                                GenerationConfig(max_new_tokens=10, seed=0))
        assert out.prompt_ingredients == ["salt"]

    def test_unknown_ingredient_tokenizes_to_unk(self, tiny_app):
        # BPE decomposes unknown words; generation must not crash
        out = tiny_app.generate(["quixotic zanthum gum"],
                                GenerationConfig(max_new_tokens=10, seed=0))
        assert out.raw_text

    def test_quantity_in_prompt_preserved(self, tiny_app):
        out = tiny_app.generate(["2 1/4 cup flour"],
                                GenerationConfig(max_new_tokens=5, seed=0))
        assert out.ingredients[0] == "2 1/4 cup flour"

    def test_generation_stops_at_eos_budget(self, tiny_app):
        config = GenerationConfig(max_new_tokens=500, seed=0)
        out = tiny_app.generate(["salt"], config)
        # either hit EOS early or used the full budget — never crashed
        assert len(out.raw_text) > 0

    def test_whitespace_only_ingredient_rejected(self):
        with pytest.raises(ValueError):
            format_prompt(["  ", "\t"])


class TestPipelineConfigInteractions:
    def test_no_number_tokens_pipeline(self):
        texts, _ = preprocess(generate_corpus(15, seed=82),
                              PreprocessConfig(number_special_tokens=False))
        config = PipelineConfig(
            model_name="word-lstm",
            training=TrainingConfig(max_steps=5, batch_size=4,
                                    eval_every=10**9))
        app = Ratatouille.from_texts(texts, config=config)
        assert "<QTY_" not in " ".join(
            app.tokenizer.id_to_token(i) for i in range(app.tokenizer.vocab_size))

    def test_all_registry_models_trainable_one_step(self):
        from repro.core.registry import model_names
        texts, _ = preprocess(generate_corpus(15, seed=83))
        for name in model_names():
            config = PipelineConfig(
                model_name=name, seq_len=64,
                training=TrainingConfig(max_steps=2, batch_size=2,
                                        eval_every=10**9))
            app = Ratatouille.from_texts(texts, config=config)
            assert app.training_result.steps == 2

    def test_seq_len_respected(self):
        texts, _ = preprocess(generate_corpus(15, seed=84))
        config = PipelineConfig(
            model_name="distilgpt2", seq_len=48,
            training=TrainingConfig(max_steps=2, batch_size=2,
                                    eval_every=10**9))
        app = Ratatouille.from_texts(texts, config=config)
        assert app.training_result.tokens_seen == 2 * 2 * 48
