"""Tests for the CLI, the job queue, serve entrypoint and analytics."""

import json
import time

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.recipedb import (RecipeDatabase, cooccurrence, corpus_report,
                            generate_corpus, pmi_pairs, region_distribution,
                            zipf_fit)
from repro.webapp import JobQueue, JobStatus, QueueFullError
from repro.webapp.serve import build_server


@pytest.fixture(scope="module")
def db():
    return RecipeDatabase(generate_corpus(120, seed=51))


class TestAnalysis:
    def test_zipf_fit_on_corpus(self, db):
        fit = zipf_fit(db.ingredient_frequencies())
        assert fit.slope > 0.3          # heavy-tailed
        assert 0.0 <= fit.r_squared <= 1.0
        assert fit.num_types > 50

    def test_zipf_requires_enough_types(self):
        from collections import Counter
        with pytest.raises(ValueError):
            zipf_fit(Counter({"a": 5}))

    def test_region_distribution_sums_to_one(self, db):
        dist = region_distribution(db)
        assert sum(dist.values()) == pytest.approx(1.0)
        # sorted descending
        values = list(dist.values())
        assert values == sorted(values, reverse=True)

    def test_cooccurrence_symmetric_pairs(self, db):
        top = cooccurrence(db, top_k=10)
        assert len(top) == 10
        for (a, b), count in top:
            assert a < b  # canonical ordering
            assert count >= 1

    def test_pmi_ranks_affinities(self, db):
        pairs = pmi_pairs(db, min_count=2, top_k=5)
        scores = [score for _, score in pairs]
        assert scores == sorted(scores, reverse=True)

    def test_corpus_report_renders(self, db):
        report = corpus_report(db)
        assert "Zipf" in report
        assert "recipes: 120" in report


class TestJobQueue:
    def test_submit_and_wait(self):
        queue = JobQueue(workers=1)
        job_id = queue.submit(lambda: 40 + 2)
        job = queue.wait(job_id, timeout=5)
        assert job.status is JobStatus.DONE
        assert job.result == 42
        assert "seconds" in job.snapshot()

    def test_failure_captured(self):
        queue = JobQueue(workers=1)

        def boom():
            raise RuntimeError("kitchen fire")

        job = queue.wait(queue.submit(boom), timeout=5)
        assert job.status is JobStatus.FAILED
        assert "kitchen fire" in job.error
        assert "error" in job.snapshot()

    def test_backpressure(self):
        queue = JobQueue(workers=1, max_pending=1)
        blocker = queue.submit(lambda: time.sleep(0.4))
        # fill the single pending slot, then overflow
        filled = False
        with pytest.raises(QueueFullError):
            for _ in range(5):
                queue.submit(lambda: None)
                filled = True
        assert filled or queue.pending >= 1
        queue.wait(blocker, timeout=5)

    def test_unknown_job(self):
        queue = JobQueue()
        with pytest.raises(KeyError):
            queue.get("nope")

    def test_shutdown_rejects_new_work(self):
        queue = JobQueue(workers=1)
        queue.shutdown()
        with pytest.raises(RuntimeError):
            queue.submit(lambda: 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            JobQueue(workers=0)
        with pytest.raises(ValueError):
            JobQueue(max_pending=0)

    def test_fifo_ordering(self):
        queue = JobQueue(workers=1)
        results = []
        ids = [queue.submit(lambda i=i: results.append(i)) for i in range(5)]
        for job_id in ids:
            queue.wait(job_id, timeout=5)
        assert results == [0, 1, 2, 3, 4]


class TestCli:
    def test_full_pipeline_through_cli(self, tmp_path, capsys):
        corpus_path = tmp_path / "corpus.jsonl"
        texts_path = tmp_path / "texts.txt"
        ckpt_path = tmp_path / "ckpt"

        assert cli_main(["corpus", "--num", "30", "--seed", "1",
                         "--out", str(corpus_path),
                         "--csv", str(tmp_path / "c.csv")]) == 0
        assert corpus_path.exists()

        assert cli_main(["preprocess", "--input", str(corpus_path),
                         "--out", str(texts_path)]) == 0
        lines = texts_path.read_text().strip().splitlines()
        assert len(lines) == 30

        assert cli_main(["train", "--texts", str(texts_path),
                         "--model", "distilgpt2", "--steps", "30",
                         "--out", str(ckpt_path)]) == 0
        assert (ckpt_path / "weights.npz").exists()

        assert cli_main(["generate", "--checkpoint", str(ckpt_path),
                         "--ingredients", "chicken breast, garlic",
                         "--max-new-tokens", "30"]) == 0
        out = capsys.readouterr().out
        assert "Ingredients:" in out

        assert cli_main(["evaluate", "--checkpoint", str(ckpt_path),
                         "--texts", str(texts_path), "--samples", "2"]) == 0
        out = capsys.readouterr().out
        assert "BLEU" in out

    def test_info_lists_models(self, capsys):
        assert cli_main(["info"]) == 0
        out = capsys.readouterr().out
        assert "gpt2-medium" in out
        assert "0.806" in out

    def test_corpus_with_corruption_flags(self, tmp_path):
        out = tmp_path / "c.jsonl"
        assert cli_main(["corpus", "--num", "10", "--duplicate-rate", "1.0",
                         "--out", str(out)]) == 0
        lines = out.read_text().strip().splitlines()
        assert len(lines) == 20

    def test_generate_empty_ingredients_fails(self, tmp_path):
        with pytest.raises(SystemExit):
            cli_main(["generate", "--checkpoint", str(tmp_path),
                      "--ingredients", " , "])


class TestServeEntrypoint:
    def test_frontend_service_builds_and_serves(self):
        server = build_server(["frontend", "--port", "0",
                               "--backend-url", "http://127.0.0.1:9999"])
        server.start()
        try:
            import urllib.request
            with urllib.request.urlopen(f"{server.url}/health",
                                        timeout=5) as response:
                payload = json.loads(response.read())
            assert payload["backend"] == "http://127.0.0.1:9999"
        finally:
            server.stop()

    def test_backend_from_checkpoint(self, tmp_path):
        # train the tiniest possible model, save, serve from checkpoint
        from repro.core import PipelineConfig, Ratatouille
        from repro.preprocess import preprocess as prep
        from repro.training import TrainingConfig
        texts, _ = prep(generate_corpus(15, seed=3))
        config = PipelineConfig(model_name="distilgpt2",
                                training=TrainingConfig(max_steps=10,
                                                        batch_size=4,
                                                        eval_every=10**9))
        Ratatouille.from_texts(texts, config=config).save(tmp_path / "m")

        server = build_server(["backend", "--port", "0",
                               "--checkpoint", str(tmp_path / "m")])
        server.start()
        try:
            import urllib.request
            with urllib.request.urlopen(f"{server.url}/api/health",
                                        timeout=10) as response:
                payload = json.loads(response.read())
            assert payload["status"] == "ok"
        finally:
            server.stop()


class TestAsyncApi:
    @pytest.fixture(scope="class")
    def backend_url(self, tmp_path_factory):
        from repro.core import PipelineConfig, Ratatouille
        from repro.preprocess import preprocess as prep
        from repro.training import TrainingConfig
        from repro.webapp import Server, create_backend
        texts, _ = prep(generate_corpus(15, seed=4))
        config = PipelineConfig(model_name="distilgpt2",
                                training=TrainingConfig(max_steps=10,
                                                        batch_size=4,
                                                        eval_every=10**9))
        pipeline = Ratatouille.from_texts(texts, config=config)
        server = Server(create_backend(pipeline)).start()
        yield server.url
        server.stop()

    def test_async_generation_round_trip(self, backend_url):
        import urllib.request

        def post(path, payload):
            req = urllib.request.Request(
                f"{backend_url}{path}", data=json.dumps(payload).encode(),
                headers={"Content-Type": "application/json"}, method="POST")
            with urllib.request.urlopen(req, timeout=10) as response:
                return response.status, json.loads(response.read())

        status, submitted = post("/api/generate_async",
                                 {"ingredients": ["salt", "pepper"],
                                  "max_new_tokens": 20})
        assert status == 202
        job_id = submitted["job_id"]

        deadline = time.time() + 30
        while time.time() < deadline:
            with urllib.request.urlopen(
                    f"{backend_url}/api/job?id={job_id}", timeout=10) as r:
                payload = json.loads(r.read())
            if payload["status"] in ("done", "failed"):
                break
            time.sleep(0.05)
        assert payload["status"] == "done"
        assert "instructions" in payload["result"]

    def test_job_endpoint_validation(self, backend_url):
        import urllib.error
        import urllib.request
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(f"{backend_url}/api/job?id=zzz", timeout=5)
        assert exc.value.code == 404
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(f"{backend_url}/api/job", timeout=5)
        assert exc.value.code == 400
