"""Throughput gate for speculative decoding (slow tier).

Runs ``benchmarks/run_speculative_decoding.py`` — the engine with an
n-gram draft must beat the plain engine by the configured factor on a
greedy workload while producing bit-identical output.  Excluded from
the tier-1 default run; invoke with ``pytest -m slow``.
"""

import pathlib
import sys

import pytest

pytestmark = pytest.mark.slow

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent
                       / "benchmarks"))

import run_speculative_decoding  # noqa: E402


def test_speculative_clears_throughput_gate():
    assert run_speculative_decoding.main(["--rounds", "3"]) == 0
