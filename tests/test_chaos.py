"""Chaos suite: under any seeded fault schedule, nothing ever hangs.

Every test here installs a :class:`FaultInjector` against one (or all)
of the named failure points and asserts the liveness contract: every
request terminates — with a result, a named error, or a deadline — and
the system keeps serving (or degrades loudly) afterwards.
"""

import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import GenerationConfig
from repro.models.lstm import LSTMConfig, LSTMLanguageModel
from repro.obs import MetricsRegistry
from repro.resilience import (FAULT_POINTS, EngineSupervisor, FaultInjector,
                              FaultSpec, InjectedFault, inject_faults)
from repro.serving import (DeadlineExceededError, EngineCrashedError,
                           EngineStoppedError, InferenceEngine)
from repro.resilience.supervisor import EngineUnavailableError
from repro.webapp import JobQueue, JobStatus

pytestmark = pytest.mark.chaos

CONFIG = GenerationConfig(max_new_tokens=4, seed=0)

#: Every way a request is allowed to terminate under chaos.  Anything
#: else — and in particular a hang — is a bug.
TERMINAL_ERRORS = (InjectedFault, EngineCrashedError, EngineStoppedError,
                   EngineUnavailableError, DeadlineExceededError,
                   TimeoutError)


def _model():
    return LSTMLanguageModel(LSTMConfig(vocab_size=16, d_embed=4, d_hidden=8,
                                        num_layers=1, dropout=0.0))


class TestEveryNamedPoint:
    def test_model_forward_fails_requests_not_engine(self):
        model = _model()
        engine = InferenceEngine(model)
        try:
            injector = FaultInjector(
                {"model.forward": FaultSpec(schedule={0})})
            with inject_faults(injector):
                handle = engine.submit([1, 2, 3], CONFIG)
                with pytest.raises((InjectedFault, EngineCrashedError)):
                    handle.result(timeout=10)
            # The engine survived a step-level fault and still serves.
            assert engine.crashed is None
            assert len(engine.generate([1, 2, 3], CONFIG)) == 4
        finally:
            engine.stop()

    def test_prefix_cache_get_crashes_engine_but_resolves_requests(self):
        model = _model()
        engine = InferenceEngine(model)
        try:
            injector = FaultInjector(
                {"prefix_cache.get": FaultSpec(schedule={0})})
            with inject_faults(injector):
                handle = engine.submit([1, 2, 3], CONFIG)
                with pytest.raises(EngineCrashedError):
                    handle.result(timeout=10)
            assert engine.crashed is not None
            with pytest.raises(EngineCrashedError):
                engine.submit([1, 2], CONFIG)
        finally:
            engine.stop()

    def test_jobs_worker_fault_fails_job_named(self):
        registry = MetricsRegistry()
        jobs = JobQueue(workers=1, max_pending=4, registry=registry)
        try:
            injector = FaultInjector(
                {"jobs.worker": FaultSpec(schedule={0})})
            with inject_faults(injector):
                doomed = jobs.submit(lambda: "never")
                survivor = jobs.submit(lambda: "ran")
                failed = jobs.wait(doomed, timeout=10)
                done = jobs.wait(survivor, timeout=10)
            assert failed.status is JobStatus.FAILED
            assert "InjectedFault" in failed.error
            assert done.status is JobStatus.DONE and done.result == "ran"
        finally:
            jobs.shutdown()

    def test_framework_write_releases_engine_slot(self):
        # A client disconnect mid-stream (simulated at the write path)
        # must cancel the engine request — the slot frees, the next
        # request decodes, nothing leaks.
        pipeline = _tiny_pipeline()
        from repro.webapp import (RatatouilleClient, Server, StreamInterrupted,
                                  create_backend)
        registry = MetricsRegistry()
        app = create_backend(pipeline, registry=registry)
        try:
            injector = FaultInjector(
                {"framework.write": FaultSpec(schedule={2})})
            with Server(app) as server, inject_faults(injector):
                client = RatatouilleClient(server.url, timeout=30,
                                           retry=None)
                with pytest.raises(StreamInterrupted) as excinfo:
                    for _ in client.generate_stream(["garlic", "onion"],
                                                    max_new_tokens=30,
                                                    seed=1):
                        pass
                # tokens received before the cut are surfaced, typed.
                assert len(excinfo.value.tokens) >= 1
                # The slot is free: a fresh request completes normally.
                recipe = client.generate(["garlic"], max_new_tokens=8)
                assert "title" in recipe
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                stats = app.engine.stats()
                if (stats["active_sequences"] == 0
                        and stats["queue_depth"] == 0):
                    break
                time.sleep(0.02)
            assert stats["active_sequences"] == 0
            assert stats["queue_depth"] == 0
        finally:
            app.engine.stop()

    def test_retrieval_fault_degrades_generation_not_request(self):
        # A faulted retrieval lookup must *degrade* the generation —
        # un-conditioned output, flagged — never fail or hang it; and
        # a faulted /api/search is a 503, never a hang or a 500.
        import json as _json

        from repro.webapp import Request, create_backend

        pipeline = _tiny_pipeline()
        registry = MetricsRegistry()
        index = pipeline.build_retrieval_index(registry=registry)
        app = create_backend(pipeline, registry=registry, use_engine=False,
                             retrieval_index=index, retrieve_k=2)

        def post(path, payload):
            return app.dispatch(Request(
                "POST", path, {}, {}, _json.dumps(payload).encode()))

        injector = FaultInjector(
            {"retrieval.search": FaultSpec(schedule={0})})
        with inject_faults(injector):
            # Call #0: the exemplar fetch faults -> degraded, 200.
            response = post("/api/generate",
                            {"ingredients": ["garlic", "onion"],
                             "max_new_tokens": 6, "retrieve_k": 2})
            assert response.status == 200
            body = _json.loads(response.body)
            assert body["retrieval_degraded"] is True
            assert body["retrieved_k"] == 0
            assert "title" in body
            # Novelty (exempted call #1) still rides along.
            assert "novelty" in body
            # Calls #1+: retrieval recovered — conditioning works again.
            response = post("/api/generate",
                            {"ingredients": ["garlic", "onion"],
                             "max_new_tokens": 6, "retrieve_k": 2})
            body = _json.loads(response.body)
            assert response.status == 200
            assert body["retrieved_k"] == 2
            assert "retrieval_degraded" not in body
        snapshot = injector.snapshot()["retrieval.search"]
        assert snapshot["faults"] == 1
        # /api/search has nothing to degrade to: explicit 503.
        with inject_faults(FaultInjector(
                {"retrieval.search": FaultSpec(schedule={0})})):
            response = post("/api/search", {"query": "garlic soup", "k": 2})
            assert response.status == 503
            response = post("/api/search", {"query": "garlic soup", "k": 2})
            assert response.status == 200

    def test_journal_append_fault_refuses_durably(self, tmp_path):
        from repro.durability import JobJournal, JournalError

        with JobJournal(tmp_path / "journal", fsync=False) as journal:
            injector = FaultInjector(
                {"journal.append": FaultSpec(schedule={0})})
            with inject_faults(injector):
                # The fault is a disk failure to the caller: a typed
                # refusal (the backend maps it to 503 + Retry-After),
                # never an acknowledgement we cannot honour.
                with pytest.raises(JournalError):
                    journal.append_accepted("doomed", {"ingredients": ["x"]})
                assert "doomed" not in journal.replay().accepted
                # The journal survives and keeps accepting.
                journal.append_accepted("fine", {"ingredients": ["x"]})
            assert "fine" in journal.replay().accepted

    def test_spill_save_fault_degrades_to_cold_start(self, tmp_path):
        from repro.durability import CacheSpill, SpillError
        from repro.serving import PrefixCache

        cache = PrefixCache(max_bytes=1024)
        cache.insert([1, 2], "snapshot", nbytes=8)
        spill = CacheSpill(tmp_path / "spill")
        injector = FaultInjector({"spill.save": FaultSpec(schedule={0})})
        with inject_faults(injector):
            with pytest.raises(SpillError):
                spill.save(cache)
            # Nothing half-written became live: the next start is a
            # clean cold start, not a torn snapshot.
            assert spill.load_into(PrefixCache(max_bytes=1024)) == 0
            # Recovery: the next save succeeds and loads warm.
            spill.save(cache)
        assert spill.load_into(PrefixCache(max_bytes=1024)) == 1

    def test_decoding_reward_fault_degrades_search_not_request(self):
        # A reward failure mid-search must *degrade* the MCTS request
        # to constrained greedy — flagged, 200 — never 500 or hang;
        # and the next search (fault exhausted) runs normally.
        import json as _json

        from repro.webapp import Request, create_backend

        pipeline = _tiny_pipeline()
        app = create_backend(pipeline, registry=MetricsRegistry(),
                             use_engine=False)

        def post(payload):
            return app.dispatch(Request(
                "POST", "/api/generate", {}, {},
                _json.dumps(payload).encode()))

        payload = {"ingredients": ["onion", "tomato"],
                   "strategy": "mcts", "mcts_rollouts": 3,
                   "max_new_tokens": 24, "seed": 4,
                   "constraints": {"exclude_ingredients": ["garlic"]}}
        injector = FaultInjector(
            {"decoding.reward": FaultSpec(schedule={0})})
        with inject_faults(injector):
            response = post(payload)
            assert response.status == 200
            body = _json.loads(response.body)
            assert body["search_degraded"] is True
            assert "reward" not in body["search"]  # no reward was scored
            assert "title" in body
            # Fault exhausted: the next search completes undegraded.
            response = post(payload)
            body = _json.loads(response.body)
            assert response.status == 200
            assert "search_degraded" not in body
            assert body["search"]["rollouts"] == 3
        assert injector.snapshot()["decoding.reward"]["faults"] == 1

    def test_all_points_are_exercised_by_this_suite(self):
        # Guard: a new fault point must come with chaos coverage.
        # fleet_cache.borrow is exercised in test_cluster_fleet_cache.py
        # (borrow fault degrades to bit-identical recompute).
        assert set(FAULT_POINTS) == {"model.forward", "prefix_cache.get",
                                     "jobs.worker", "framework.write",
                                     "retrieval.search", "journal.append",
                                     "spill.save", "fleet_cache.borrow",
                                     "decoding.reward"}


class TestSpeculativeUnderFaults:
    def test_forward_fault_during_verify_fails_cleanly(self):
        # A model.forward fault on a speculative verify step must fail
        # the in-flight request with a named error — no hang — and
        # leave the engine serving speculative requests whose output
        # is still bit-identical to sequential decoding.
        from repro.models import NGramDraft, generate
        from repro.obs import NullRegistry, NullTracer

        model = _model()
        draft = NGramDraft.fit([[1, 2, 3, 4, 5] * 4], 16, order=3)
        config = GenerationConfig(max_new_tokens=6, strategy="greedy",
                                  seed=0, speculative_k=4)
        engine = InferenceEngine(model, draft=draft)
        try:
            # Call 0 is the prefill; call 1 is the first decode
            # forward, which for a speculative sequence is the
            # batched verify_chunk step.
            injector = FaultInjector(
                {"model.forward": FaultSpec(schedule={1})})
            with inject_faults(injector):
                handle = engine.submit([1, 2, 3], config)
                with pytest.raises((InjectedFault, EngineCrashedError)):
                    handle.result(timeout=10)
            assert engine.crashed is None
            survivor = engine.generate([1, 2, 3], config)
            sequential = GenerationConfig(max_new_tokens=6,
                                          strategy="greedy", seed=0)
            assert survivor == generate(model, [1, 2, 3], sequential,
                                        registry=NullRegistry(),
                                        tracer=NullTracer())
        finally:
            engine.stop()

    def test_stop_racing_inflight_verify_group_resolves_everything(self):
        # stop() landing while a speculative verify group is in flight
        # (a forward delay holds it there) must resolve every handle —
        # no hang — and retire each request exactly once: the
        # engine_requests_total series sum equals the submit count, so
        # a double-retire (completed *and* failed-by-stop) shows up as
        # an off-by-one.
        from repro.models import NGramDraft

        model = _model()
        draft = NGramDraft.fit([[1, 2, 3, 4, 5] * 4], 16, order=3)
        registry = MetricsRegistry()
        config = GenerationConfig(max_new_tokens=8, strategy="greedy",
                                  seed=0, speculative_k=4)
        engine = InferenceEngine(model, draft=draft, registry=registry)
        submitted = 3
        injector = FaultInjector(
            {"model.forward": FaultSpec(delay_seconds=0.02)})
        try:
            with inject_faults(injector):
                handles = [engine.submit([1, 2, 3], config)
                           for _ in range(submitted)]
                time.sleep(0.03)  # let a delayed verify forward start
                engine.stop(timeout=10)
                for handle in handles:
                    try:
                        handle.result(timeout=10)
                    except TERMINAL_ERRORS:
                        pass
            assert all(handle.done for handle in handles)
            retired = sum(child.value for _, child in
                          registry.counter("engine_requests_total").series())
            assert retired == submitted
        finally:
            engine.stop()

    def test_mixed_batch_fault_spares_no_one_silently(self):
        # Speculative and plain sequences sharing the faulted step all
        # terminate with named errors; the engine survives and both
        # kinds of request complete afterwards.
        from repro.models import NGramDraft

        model = _model()
        draft = NGramDraft.fit([[1, 2, 3, 4, 5] * 4], 16, order=3)
        spec_config = GenerationConfig(max_new_tokens=5, strategy="greedy",
                                       seed=0, speculative_k=3)
        engine = InferenceEngine(model, draft=draft)
        try:
            injector = FaultInjector(
                {"model.forward": FaultSpec(rate=0.3, max_faults=3)},
                seed=11)
            with inject_faults(injector):
                handles = [engine.submit([1 + i, 2, 3],
                                         spec_config if i % 2 else CONFIG)
                           for i in range(4)]
                for handle in handles:
                    try:
                        handle.result(timeout=10)
                    except TERMINAL_ERRORS:
                        pass
            assert engine.crashed is None
            assert len(engine.generate([1, 2, 3], spec_config)) == 5
            assert len(engine.generate([1, 2, 3], CONFIG)) == 4
        finally:
            engine.stop()


_PIPELINE = None


def _tiny_pipeline():
    """One tiny trained pipeline shared across chaos tests (slow to build)."""
    global _PIPELINE
    if _PIPELINE is None:
        from repro.core import PipelineConfig, Ratatouille
        from repro.training import TrainingConfig
        config = PipelineConfig(
            model_name="word-lstm",
            training=TrainingConfig(max_steps=5, batch_size=4,
                                    eval_every=10**9))
        _PIPELINE = Ratatouille.quickstart(model_name="word-lstm",
                                           num_recipes=30, seed=0,
                                           config=config)
    return _PIPELINE


@pytest.mark.property
class TestChaosProperty:
    @given(seed=st.integers(0, 2**16),
           forward_rate=st.floats(0.0, 0.4),
           cache_schedule=st.frozensets(st.integers(0, 8), max_size=2),
           delay_ms=st.integers(0, 3))
    @settings(max_examples=8, deadline=None)
    def test_concurrent_requests_all_terminate(self, seed, forward_rate,
                                               cache_schedule, delay_ms):
        """Liveness under arbitrary seeded fault plans.

        N concurrent requests against a supervised engine, with faults
        at both the survivable point (``model.forward``) and the
        crash point (``prefix_cache.get``): every request resolves
        within the timeout bound, and restarts never exceed the cap.
        """
        model = _model()
        registry = MetricsRegistry()
        plan = {
            "model.forward": FaultSpec(rate=forward_rate,
                                       delay_seconds=delay_ms / 1e3),
            "prefix_cache.get": FaultSpec(schedule=cache_schedule,
                                          max_faults=2),
        }
        injector = FaultInjector(plan, seed=seed)
        max_restarts = 3

        def factory():
            return InferenceEngine(model, registry=registry)

        sup = EngineSupervisor(factory, max_restarts=max_restarts,
                               backoff_seconds=0.002, poll_seconds=0.002,
                               registry=registry)
        outcomes = []
        lock = threading.Lock()

        def one_request(i):
            config = GenerationConfig(max_new_tokens=3 + i % 3, seed=i)
            try:
                handle = sup.submit([1 + i % 5, 2, 3], config,
                                    deadline_ms=30_000.0)
                result = handle.result(timeout=30)
                outcome = ("ok", len(result))
            except TERMINAL_ERRORS as exc:
                outcome = ("error", type(exc).__name__)
            with lock:
                outcomes.append(outcome)

        try:
            with inject_faults(injector):
                threads = [threading.Thread(target=one_request, args=(i,))
                           for i in range(6)]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=60)
                # The liveness bound: every worker thread came back.
                assert not any(t.is_alive() for t in threads), \
                    "a request hung under fault injection"
        finally:
            sup.stop()
        assert len(outcomes) == 6
        assert sup.restarts <= max_restarts
        # Nothing timed out: "terminate" means resolve, not give up.
        assert ("error", "TimeoutError") not in outcomes
