"""Hypothesis property tests for repro.decoding (marker: property).

The three invariants the subsystem's guarantees rest on:

* **The grammar FSM never dead-ends.**  Whatever token an adversary
  picks from the allowed set, at every step there is at least one
  allowed token, and the walk closes the recipe within any legal
  budget.
* **Constrained outputs round-trip.**  A masked decode appended to a
  prompt always parses back into a recipe with a title and at least
  one instruction — the "100% parse-valid" half of the benchmark gate,
  quantified over adversarial token choices rather than model samples.
* **Seeded MCTS is bit-identical.**  The same seed yields the same
  tokens, the same reward and the same tree statistics across two
  independent searches.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.decoding import GrammarMask, MCTSDecoder, MIN_BUDGET, RecipeGrammar
from repro.decoding.grammar import S_DONE
from repro.decoding.reward import RewardBreakdown
from repro.models import GenerationConfig
from repro.preprocess import preprocess
from repro.preprocess.formatting import parse_recipe
from repro.recipedb import generate_corpus
from repro.tokenizers import WordTokenizer

pytestmark = pytest.mark.property

_TOKENIZER = None
_GRAMMAR = None


def _grammar():
    # Built lazily once; hypothesis re-enters the test many times and
    # function-scoped fixtures are off-limits under @given.
    global _TOKENIZER, _GRAMMAR
    if _GRAMMAR is None:
        texts, _ = preprocess(generate_corpus(30, seed=31))
        _TOKENIZER = WordTokenizer(texts)
        _GRAMMAR = RecipeGrammar(_TOKENIZER)
    return _TOKENIZER, _GRAMMAR


class TestGrammarNeverDeadEnds:
    @given(budget=st.integers(MIN_BUDGET, 48), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_adversarial_walks_always_close(self, budget, data):
        tokenizer, grammar = _grammar()
        mask = GrammarMask(grammar, max_new_tokens=budget)
        history = []
        for step in range(budget):
            allowed = mask.allowed_ids(history)
            assert allowed.size >= 1, f"dead end at step {step}"
            pick = data.draw(st.integers(0, allowed.size - 1),
                             label=f"step{step}")
            history.append(int(allowed[pick]))
            if history[-1] == tokenizer.eos_id:
                break
        # Wherever the adversary steered, the automaton reached the
        # absorbing state within the budget.
        state = mask._start_state
        for token in history:
            state = grammar.advance(state, token)
        assert state == S_DONE

    @given(budget=st.integers(MIN_BUDGET, 32),
           seed=st.integers(0, 2**16))
    @settings(max_examples=40, deadline=None)
    def test_masked_decodes_round_trip_through_the_parser(self, budget, seed):
        tokenizer, grammar = _grammar()
        mask = GrammarMask(grammar, max_new_tokens=budget)
        rng = np.random.default_rng(seed)
        history = []
        for _ in range(budget):
            logits = rng.normal(size=tokenizer.vocab_size)
            history.append(int(np.argmax(mask(logits, history))))
            if history[-1] == tokenizer.eos_id:
                break
        text = ("<RECIPE_START> <INGR_START> onion <INGR_END> "
                "<INSTR_START> " + tokenizer.decode(history))
        parsed = parse_recipe(text)
        assert parsed.title
        assert parsed.instructions


class TestSeededSearchDeterminism:
    @staticmethod
    def _decoder():
        # A deterministic pseudo-model: rollout tokens and rewards are
        # pure functions of (prompt, config), standing in for the real
        # engine whose determinism is covered by the serving tests.
        def submit(prompt, config, processors, deadline_ms):
            rng = np.random.default_rng(
                (config.seed * 31 + len(prompt)) % (2**31))
            n = rng.integers(MIN_BUDGET, config.max_new_tokens + 1)
            return [int(t) for t in rng.integers(4, 40, size=n)]

        def reward(ids):
            total = (sum(ids) % 997) / 997.0
            return RewardBreakdown(total=total,
                                   components={"format": total})

        return MCTSDecoder(submit=submit,
                           build_processors=lambda preamble, budget: [],
                           reward=reward)

    @given(seed=st.integers(0, 2**16),
           rollouts=st.integers(1, 8))
    @settings(max_examples=30, deadline=None)
    def test_same_seed_same_search(self, seed, rollouts):
        config = GenerationConfig(max_new_tokens=24, strategy="mcts",
                                  seed=seed, mcts_rollouts=rollouts)
        first = self._decoder().search([1, 2, 3], config)
        second = self._decoder().search([1, 2, 3], config)
        assert first.tokens == second.tokens
        assert first.reward.as_dict() == second.reward.as_dict()
        assert first.rollouts == second.rollouts
        assert first.nodes_expanded == second.nodes_expanded
        assert (first.prompt_tokens_submitted
                == second.prompt_tokens_submitted)
