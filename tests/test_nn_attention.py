"""Unit tests for attention and transformer blocks (repro.nn.attention)."""

import numpy as np
import pytest

from repro.nn import (CausalSelfAttention, KVCache, MLP, Tensor,
                      TransformerBlock, no_grad)


@pytest.fixture
def rng():
    return np.random.default_rng(4)


def empty_cache(batch, heads, head_dim):
    return KVCache(k=np.zeros((batch, heads, 0, head_dim), dtype=np.float32),
                   v=np.zeros((batch, heads, 0, head_dim), dtype=np.float32))


class TestCausalSelfAttention:
    def test_head_divisibility_check(self, rng):
        with pytest.raises(ValueError):
            CausalSelfAttention(10, 3, 0.0, rng)

    def test_output_shape(self, rng):
        attn = CausalSelfAttention(16, 4, 0.0, rng)
        out, cache = attn(Tensor(np.ones((2, 5, 16), dtype=np.float32)))
        assert out.shape == (2, 5, 16)
        assert cache is None

    def test_causality(self, rng):
        """Changing a future token must not change earlier outputs."""
        attn = CausalSelfAttention(8, 2, 0.0, rng)
        attn.eval()
        x = rng.standard_normal((1, 6, 8)).astype(np.float32)
        with no_grad():
            base, _ = attn(Tensor(x))
            perturbed = x.copy()
            perturbed[0, 5, :] += 10.0
            changed, _ = attn(Tensor(perturbed))
        np.testing.assert_allclose(base.data[0, :5], changed.data[0, :5],
                                   atol=1e-5)
        assert not np.allclose(base.data[0, 5], changed.data[0, 5])

    def test_cache_incremental_matches_full(self, rng):
        attn = CausalSelfAttention(8, 2, 0.0, rng)
        attn.eval()
        x = rng.standard_normal((2, 7, 8)).astype(np.float32)
        with no_grad():
            full, _ = attn(Tensor(x))
            cache = empty_cache(2, 2, 4)
            pieces = []
            for t in range(7):
                out, cache = attn(Tensor(x[:, t:t + 1, :]), cache=cache)
                pieces.append(out.data)
        np.testing.assert_allclose(full.data, np.concatenate(pieces, axis=1),
                                   atol=1e-5)

    def test_cache_grows(self, rng):
        attn = CausalSelfAttention(8, 2, 0.0, rng)
        attn.eval()
        cache = empty_cache(1, 2, 4)
        with no_grad():
            for t in range(1, 4):
                _, cache = attn(
                    Tensor(np.ones((1, 1, 8), dtype=np.float32)), cache=cache)
                assert cache.seq_len == t

    def test_gradients_flow(self, rng):
        attn = CausalSelfAttention(8, 2, 0.0, rng)
        x = Tensor(rng.standard_normal((1, 4, 8)).astype(np.float32),
                   requires_grad=True)
        out, _ = attn(x)
        out.sum().backward()
        assert x.grad is not None
        for name, param in attn.named_parameters():
            assert param.grad is not None, name


class TestKVCacheBuffer:
    """Capacity-buffer semantics: in-place append, frozen copy-on-append."""

    def _chunk(self, rng, t):
        return (rng.standard_normal((1, 2, t, 4)).astype(np.float32),
                rng.standard_normal((1, 2, t, 4)).astype(np.float32))

    def test_append_values_match_concatenation(self, rng):
        cache = empty_cache(1, 2, 4)
        expect_k = np.zeros((1, 2, 0, 4), dtype=np.float32)
        for t in (3, 1, 1, 5):
            k, v = self._chunk(rng, t)
            cache = cache.append(k, v)
            expect_k = np.concatenate([expect_k, k], axis=2)
        assert cache.seq_len == 10
        np.testing.assert_array_equal(cache.keys, expect_k)

    def test_append_reuses_buffer_in_place(self, rng):
        cache = empty_cache(1, 2, 4).append(*self._chunk(rng, 1))
        grown = cache.append(*self._chunk(rng, 1))
        # The first append allocated headroom; the second must not.
        assert grown.k is cache.k
        assert grown.seq_len == cache.seq_len + 1

    def test_frozen_snapshot_survives_owner_appends(self, rng):
        cache = empty_cache(1, 2, 4).append(*self._chunk(rng, 4))
        snap = cache.snapshot()
        before = snap.keys.copy()
        cache.append(*self._chunk(rng, 1))  # owner keeps going
        np.testing.assert_array_equal(snap.keys, before)

    def test_append_through_snapshot_copies(self, rng):
        cache = empty_cache(1, 2, 4).append(*self._chunk(rng, 4))
        snap = cache.snapshot()
        owner_before = cache.keys.copy()
        k, v = self._chunk(rng, 1)
        resumed = snap.append(k, v)
        assert resumed.k is not cache.k  # frozen forces reallocation
        np.testing.assert_array_equal(cache.keys, owner_before)
        np.testing.assert_array_equal(resumed.keys[:, :, -1:], k)


class TestMLP:
    def test_shape_preserved(self, rng):
        mlp = MLP(16, 64, 0.0, rng)
        out = mlp(Tensor(np.ones((2, 3, 16), dtype=np.float32)))
        assert out.shape == (2, 3, 16)


class TestTransformerBlock:
    def test_residual_structure(self, rng):
        """With zeroed projections the block must be the identity."""
        block = TransformerBlock(8, 2, 32, 0.0, rng)
        block.attn.proj.weight.data[...] = 0.0
        block.attn.proj.bias.data[...] = 0.0
        block.mlp.proj.weight.data[...] = 0.0
        block.mlp.proj.bias.data[...] = 0.0
        x = rng.standard_normal((1, 4, 8)).astype(np.float32)
        out, _ = block(Tensor(x))
        np.testing.assert_allclose(out.data, x, atol=1e-6)

    def test_block_cache_equivalence(self, rng):
        block = TransformerBlock(16, 4, 64, 0.0, rng, num_layers=3)
        block.eval()
        x = rng.standard_normal((1, 5, 16)).astype(np.float32)
        with no_grad():
            full, _ = block(Tensor(x))
            cache = empty_cache(1, 4, 4)
            parts = []
            for t in range(5):
                out, cache = block(Tensor(x[:, t:t + 1, :]), cache=cache)
                parts.append(out.data)
        np.testing.assert_allclose(full.data, np.concatenate(parts, axis=1),
                                   atol=1e-5)

    def test_residual_scaling_by_depth(self, rng):
        shallow = TransformerBlock(8, 2, 16, 0.0, np.random.default_rng(1),
                                   num_layers=1)
        deep = TransformerBlock(8, 2, 16, 0.0, np.random.default_rng(1),
                                num_layers=8)
        assert (np.abs(deep.mlp.proj.weight.data).std()
                < np.abs(shallow.mlp.proj.weight.data).std())
