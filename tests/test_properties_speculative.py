"""Hypothesis property: speculative greedy decoding is lossless.

For *any* prompt, any draft (any corpus, any n-gram order) and any
speculative depth ``k``, greedy speculative decoding must emit exactly
the tokens sequential greedy decoding emits.  The draft only ever
changes how many model forwards it takes to produce them — acceptance
rate is a performance number, never a correctness one.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import GenerationConfig, NGramDraft, distilgpt2, generate
from repro.models.base import LanguageModel
from repro.obs import NullRegistry, NullTracer

pytestmark = pytest.mark.property

VOCAB = 12

_token = st.integers(min_value=0, max_value=VOCAB - 1)
_prompt = st.lists(_token, min_size=1, max_size=12)
_corpus = st.lists(st.lists(_token, min_size=2, max_size=20),
                   min_size=1, max_size=4)


class SeededModel(LanguageModel):
    """Deterministic pseudo-random model (cheap sequential oracle)."""

    def __init__(self, vocab_size: int = VOCAB, salt: int = 0) -> None:
        super().__init__(vocab_size)
        rng = np.random.default_rng(salt)
        self._table = rng.normal(size=(vocab_size, vocab_size)) * 2.0

    def start_state(self, batch_size: int):
        return None

    def next_logits(self, ids: np.ndarray, state):
        return self._table[int(ids[-1]) % self.vocab_size][None, :], state


def _run(model, prompt, draft, k, **config_kwargs):
    config = GenerationConfig(max_new_tokens=16, strategy="greedy", seed=0,
                              speculative_k=k, **config_kwargs)
    return generate(model, prompt, config, draft=draft,
                    registry=NullRegistry(), tracer=NullTracer())


class TestSpeculativeGreedyIsLossless:
    @given(prompt=_prompt, corpus=_corpus,
           k=st.integers(min_value=1, max_value=8),
           order=st.integers(min_value=1, max_value=4),
           salt=st.integers(min_value=0, max_value=3))
    @settings(max_examples=60, deadline=None)
    def test_any_draft_any_k_matches_sequential(self, prompt, corpus, k,
                                                order, salt):
        model = SeededModel(salt=salt)
        draft = NGramDraft.fit(corpus, VOCAB, order=order)
        assert _run(model, prompt, draft, k) == _run(model, prompt, None, 0)

    @given(prompt=_prompt, corpus=_corpus,
           k=st.integers(min_value=1, max_value=8),
           penalty=st.floats(min_value=1.0, max_value=2.0))
    @settings(max_examples=30, deadline=None)
    def test_with_stop_token_and_penalty(self, prompt, corpus, k, penalty):
        model = SeededModel(salt=1)
        draft = NGramDraft.fit(corpus, VOCAB, order=3)
        kwargs = {"stop_token_id": 3, "repetition_penalty": penalty}
        assert _run(model, prompt, draft, k, **kwargs) \
            == _run(model, prompt, None, 0, **kwargs)


class TestSpeculativeGreedyOnTransformer:
    """The fused ``verify_chunk`` fast path, against the real model."""

    @given(seed=st.integers(min_value=0, max_value=50),
           k=st.integers(min_value=1, max_value=8),
           order=st.integers(min_value=2, max_value=4))
    @settings(max_examples=10, deadline=None)
    def test_matches_sequential(self, seed, k, order):
        model = _transformer()
        rng = np.random.default_rng(seed)
        prompt = [int(t) for t in rng.integers(0, 16, size=1 + seed % 7)]
        corpus = [[int(t) for t in rng.integers(0, 16, size=24)]
                  for _ in range(2)]
        draft = NGramDraft.fit(corpus, 16, order=order)
        assert _run(model, prompt, draft, k) == _run(model, prompt, None, 0)


_TRANSFORMER = None


def _transformer():
    global _TRANSFORMER
    if _TRANSFORMER is None:
        _TRANSFORMER = distilgpt2(vocab_size=16, context_length=64)
        _TRANSFORMER.eval()
    return _TRANSFORMER
