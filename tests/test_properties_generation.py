"""Hypothesis property tests for decoding invariants (repro.models.generation).

The invariants the serving path relies on:

* top-k filtering keeps at most k candidates (even with tied logits);
* the top-p nucleus carries probability mass >= p;
* ``repetition_penalty=1.0`` is the identity;
* the same seed produces the same sampled continuation;
* beam search is deterministic across runs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import GenerationConfig, RepetitionPenalty, generate
from repro.models.base import LanguageModel
from repro.models.generation import _filter_top_k, _filter_top_p, _softmax
from repro.obs import NullRegistry, NullTracer

pytestmark = pytest.mark.property

_finite = st.floats(min_value=-30.0, max_value=30.0,
                    allow_nan=False, allow_infinity=False)
_logits = st.lists(_finite, min_size=2, max_size=64).map(
    lambda values: np.asarray(values, dtype=np.float64))
# Duplicate-heavy logits to hammer the tie-handling path.
_tied_logits = st.lists(st.integers(min_value=-3, max_value=3),
                        min_size=2, max_size=32).map(
    lambda values: np.asarray(values, dtype=np.float64))


class SeededModel(LanguageModel):
    """Deterministic pseudo-random model: logits are a fixed function
    of the last token, so every run over the same ids is identical."""

    def __init__(self, vocab_size: int = 12, salt: int = 0) -> None:
        super().__init__(vocab_size)
        rng = np.random.default_rng(salt)
        self._table = rng.normal(size=(vocab_size, vocab_size)) * 2.0

    def start_state(self, batch_size: int):
        return None

    def next_logits(self, ids: np.ndarray, state):
        return self._table[int(ids[-1]) % self.vocab_size][None, :], state


class TestTopK:
    @given(logits=_logits, k=st.integers(min_value=1, max_value=80))
    @settings(max_examples=80, deadline=None)
    def test_keeps_at_most_k(self, logits, k):
        filtered = _filter_top_k(logits, k)
        assert np.isfinite(filtered).sum() <= max(k, 0) or k == 0

    @given(logits=_tied_logits, k=st.integers(min_value=1, max_value=8))
    @settings(max_examples=80, deadline=None)
    def test_ties_cannot_leak_past_k(self, logits, k):
        filtered = _filter_top_k(logits, k)
        assert np.isfinite(filtered).sum() == min(k, logits.shape[0])

    @given(logits=_logits, k=st.integers(min_value=1, max_value=64))
    @settings(max_examples=80, deadline=None)
    def test_kept_values_are_the_largest(self, logits, k):
        filtered = _filter_top_k(logits, k)
        kept = np.isfinite(filtered)
        if kept.all():
            return  # k >= vocab: filter disabled
        assert logits[kept].min() >= logits[~kept].max()

    @given(logits=_logits)
    @settings(max_examples=30, deadline=None)
    def test_k_zero_is_identity(self, logits):
        np.testing.assert_array_equal(_filter_top_k(logits, 0), logits)


class TestTopP:
    @given(logits=_logits,
           p=st.floats(min_value=0.01, max_value=0.999))
    @settings(max_examples=100, deadline=None)
    def test_nucleus_mass_at_least_p(self, logits, p):
        filtered = _filter_top_p(logits, p)
        kept = np.isfinite(filtered)
        assert kept.sum() >= 1
        mass = _softmax(logits)[kept].sum()
        assert mass >= p - 1e-9

    @given(logits=_logits,
           p=st.floats(min_value=0.05, max_value=0.999))
    @settings(max_examples=100, deadline=None)
    def test_nucleus_is_a_top_slice(self, logits, p):
        filtered = _filter_top_p(logits, p)
        kept = np.isfinite(filtered)
        if kept.all():
            return
        assert logits[kept].min() >= logits[~kept].max()

    @given(logits=_logits)
    @settings(max_examples=30, deadline=None)
    def test_p_one_is_identity(self, logits):
        np.testing.assert_array_equal(_filter_top_p(logits, 1.0), logits)


class TestRepetitionPenalty:
    @given(logits=_logits,
           generated=st.lists(st.integers(min_value=0, max_value=63),
                              max_size=20))
    @settings(max_examples=80, deadline=None)
    def test_penalty_one_is_identity(self, logits, generated):
        generated = [g for g in generated if g < logits.shape[0]]
        processor = RepetitionPenalty(1.0)
        np.testing.assert_array_equal(processor(logits, generated), logits)

    @given(logits=_logits,
           generated=st.lists(st.integers(min_value=0, max_value=63),
                              min_size=1, max_size=20),
           penalty=st.floats(min_value=1.01, max_value=5.0))
    @settings(max_examples=80, deadline=None)
    def test_penalty_never_raises_seen_scores(self, logits, generated,
                                              penalty):
        generated = [g for g in generated if g < logits.shape[0]]
        processor = RepetitionPenalty(penalty)
        adjusted = processor(logits, generated)
        for token in set(generated):
            assert adjusted[token] <= logits[token] + 1e-12
        untouched = np.ones(logits.shape[0], dtype=bool)
        untouched[list(set(generated))] = False
        np.testing.assert_array_equal(adjusted[untouched], logits[untouched])


class TestGenerateDeterminism:
    @given(seed=st.integers(min_value=0, max_value=2**31),
           salt=st.integers(min_value=0, max_value=5),
           temperature=st.floats(min_value=0.5, max_value=2.0),
           top_k=st.integers(min_value=0, max_value=8),
           prompt=st.lists(st.integers(min_value=0, max_value=11),
                           min_size=1, max_size=4))
    @settings(max_examples=25, deadline=None)
    def test_same_seed_same_sample(self, seed, salt, temperature, top_k,
                                   prompt):
        model = SeededModel(salt=salt)
        config = GenerationConfig(strategy="sample", max_new_tokens=8,
                                  seed=seed, temperature=temperature,
                                  top_k=top_k)
        a = generate(model, prompt, config,
                     registry=NullRegistry(), tracer=NullTracer())
        b = generate(model, prompt, config,
                     registry=NullRegistry(), tracer=NullTracer())
        assert a == b
        assert len(a) == 8
        assert all(0 <= t < model.vocab_size for t in a)

    @given(salt=st.integers(min_value=0, max_value=5),
           beam_size=st.integers(min_value=1, max_value=4),
           prompt=st.lists(st.integers(min_value=0, max_value=11),
                           min_size=1, max_size=3))
    @settings(max_examples=25, deadline=None)
    def test_beam_deterministic_across_runs(self, salt, beam_size, prompt):
        model = SeededModel(salt=salt)
        config = GenerationConfig(strategy="beam", beam_size=beam_size,
                                  max_new_tokens=6)
        runs = [generate(model, prompt, config,
                         registry=NullRegistry(), tracer=NullTracer())
                for _ in range(3)]
        assert runs[0] == runs[1] == runs[2]
        assert len(runs[0]) == 6

    @given(salt=st.integers(min_value=0, max_value=5),
           prompt=st.lists(st.integers(min_value=0, max_value=11),
                           min_size=1, max_size=3))
    @settings(max_examples=15, deadline=None)
    def test_greedy_matches_itself_and_beam1_prefix(self, salt, prompt):
        model = SeededModel(salt=salt)
        greedy = generate(model, prompt,
                          GenerationConfig(strategy="greedy",
                                           max_new_tokens=6),
                          registry=NullRegistry(), tracer=NullTracer())
        again = generate(model, prompt,
                         GenerationConfig(strategy="greedy",
                                          max_new_tokens=6),
                         registry=NullRegistry(), tracer=NullTracer())
        assert greedy == again
