"""HTTP-layer resilience: shedding, deadline mapping, degraded mode.

Engine-level deadline/crash semantics are covered in
``test_serving_deadlines.py`` and ``test_resilience_supervisor.py``;
these tests pin the *HTTP contract* — which status codes, headers and
payload fields each failure becomes at the API boundary.
"""

import json
import time

import pytest

from repro.core import PipelineConfig, Ratatouille
from repro.obs import MetricsRegistry
from repro.resilience import (FaultInjector, FaultSpec, ResilienceConfig,
                              inject_faults)
from repro.serving import DeadlineExceededError
from repro.training import TrainingConfig
from repro.webapp import Request, create_backend


@pytest.fixture(scope="module")
def pipeline():
    config = PipelineConfig(
        model_name="word-lstm",
        training=TrainingConfig(max_steps=5, batch_size=4, eval_every=10**9))
    return Ratatouille.quickstart(model_name="word-lstm", num_recipes=30,
                                  seed=0, config=config)


def _post(app, path, payload):
    return app.dispatch(Request(method="POST", path=path, query={},
                                headers={},
                                body=json.dumps(payload).encode("utf-8")))


def _get(app, path):
    return app.dispatch(Request(method="GET", path=path, query={},
                                headers={}, body=b""))


def _body(response):
    return json.loads(response.body.decode("utf-8"))


class TestAdmissionAtHttpLayer:
    @pytest.fixture()
    def app(self, pipeline):
        return create_backend(
            pipeline, registry=MetricsRegistry(), use_engine=False,
            resilience=ResilienceConfig(shed_watermark_tokens=64))

    def test_generate_sheds_503_with_retry_after(self, app):
        app.admission.try_acquire(60)  # a big request already in flight
        try:
            response = _post(app, "/api/generate",
                             {"ingredients": ["garlic"],
                              "max_new_tokens": 16})
            assert response.status == 503
            assert float(response.headers["Retry-After"]) >= 1
            assert "overloaded" in _body(response)["error"]
        finally:
            app.admission.release(60)
        # Load drained: the same request is admitted and served.
        response = _post(app, "/api/generate",
                         {"ingredients": ["garlic"], "max_new_tokens": 16,
                          "seed": 3})
        assert response.status == 200
        assert "title" in _body(response)
        assert app.admission.queued_tokens == 0  # released after serving

    def test_async_endpoint_sheds_too(self, app):
        app.admission.try_acquire(60)
        try:
            response = _post(app, "/api/generate_async",
                             {"ingredients": ["garlic"],
                              "max_new_tokens": 16})
            assert response.status == 503
        finally:
            app.admission.release(60)

    def test_resilience_endpoint_reports_shed(self, app):
        app.admission.try_acquire(60)
        try:
            _post(app, "/api/generate",
                  {"ingredients": ["garlic"], "max_new_tokens": 16})
        finally:
            app.admission.release(60)
        payload = _body(_get(app, "/api/resilience"))
        assert payload["enabled"] is True
        assert payload["admission"]["shed_total"] == 1
        assert payload["supervisor"] is None  # not supervised


class TestDeadlineHttpMapping:
    @pytest.fixture(scope="class")
    def app(self, pipeline):
        app = create_backend(
            pipeline, registry=MetricsRegistry(),
            resilience=ResilienceConfig(default_deadline_ms=60_000.0))
        yield app
        app.engine.stop()

    def test_expiry_with_no_tokens_is_504(self, app, monkeypatch):
        def expired(*args, **kwargs):
            raise DeadlineExceededError(0, 25.0, [])

        monkeypatch.setattr(app.engine, "generate", expired)
        response = _post(app, "/api/generate",
                         {"ingredients": ["garlic"], "partial": True})
        assert response.status == 504
        assert "deadline" in _body(response)["error"]

    def test_expiry_without_opt_in_is_504_even_with_tokens(self, app,
                                                           monkeypatch):
        def expired(*args, **kwargs):
            raise DeadlineExceededError(0, 25.0, [2, 3, 4])

        monkeypatch.setattr(app.engine, "generate", expired)
        response = _post(app, "/api/generate", {"ingredients": ["garlic"]})
        assert response.status == 504

    def test_partial_opt_in_returns_200_with_flag(self, app, monkeypatch):
        def expired(*args, **kwargs):
            raise DeadlineExceededError(0, 25.0, [2, 3, 4])

        monkeypatch.setattr(app.engine, "generate", expired)
        response = _post(app, "/api/generate",
                         {"ingredients": ["garlic"], "partial": True})
        assert response.status == 200
        payload = _body(response)
        assert payload["partial"] is True
        assert payload["deadline_ms"] == 25.0
        assert "title" in payload  # whatever decoded from the prefix

    def test_server_default_deadline_is_forwarded(self, app, monkeypatch):
        seen = {}
        original = app.engine.generate

        def spy(*args, **kwargs):
            seen["deadline_ms"] = kwargs.get("deadline_ms")
            return original(*args, **kwargs)

        monkeypatch.setattr(app.engine, "generate", spy)
        payload = {"ingredients": ["garlic"], "max_new_tokens": 8, "seed": 1}
        assert _post(app, "/api/generate", payload).status == 200
        assert seen["deadline_ms"] == 60_000.0  # the configured default
        payload["deadline_ms"] = 250.0
        _post(app, "/api/generate", payload)
        assert seen["deadline_ms"] == 250.0  # the client's value wins

    @pytest.mark.parametrize("bad", [0, -5, "soon"])
    def test_bad_deadline_is_400(self, app, bad):
        response = _post(app, "/api/generate",
                         {"ingredients": ["garlic"], "deadline_ms": bad})
        assert response.status == 400
        assert "deadline_ms" in _body(response)["error"]


class TestDegradedMode:
    def test_crash_past_budget_serves_degraded(self, pipeline):
        registry = MetricsRegistry()
        app = create_backend(
            pipeline, registry=registry,
            resilience=ResilienceConfig(supervise=True, max_restarts=0,
                                        degraded_fallback=True))
        try:
            injector = FaultInjector(
                {"prefix_cache.get": FaultSpec(rate=1.0)})
            payload = {"ingredients": ["garlic"], "max_new_tokens": 8,
                       "seed": 2}
            with inject_faults(injector):
                # The engine crashes on admission; the supervisor falls
                # back to the sequential decoder and says so.
                response = _post(app, "/api/generate", payload)
            assert response.status == 200
            assert _body(response)["degraded"] is True
            assert "title" in _body(response)
            deadline = time.monotonic() + 10
            while app.engine.state != "failed" and time.monotonic() < deadline:
                time.sleep(0.01)
            block = _body(_get(app, "/api/resilience"))["supervisor"]
            assert block["state"] == "failed"
            assert block["degraded_available"] is True
            # Degraded requests keep working after the budget is gone.
            after = _post(app, "/api/generate", payload)
            assert after.status == 200
            assert _body(after)["degraded"] is True
        finally:
            app.engine.stop()


class TestResilienceEndpointDisabled:
    def test_defaults_report_disabled(self, pipeline):
        app = create_backend(pipeline, registry=MetricsRegistry(),
                             use_engine=False)
        payload = _body(_get(app, "/api/resilience"))
        assert payload == {"enabled": False, "default_deadline_ms": None,
                           "admission": None, "supervisor": None}
