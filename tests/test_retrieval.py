"""Unit tests for repro.retrieval: embeddings, ANN, index, novelty,
persistence (docs/RETRIEVAL.md)."""

import json

import numpy as np
import pytest

from repro.obs import MetricsRegistry
from repro.recipedb import generate_corpus
from repro.retrieval import (LAYOUT_VERSION, MEMORIZED_NOVELTY_THRESHOLD,
                             BruteForceIndex, EmbeddingConfig, LSHConfig,
                             LSHIndex, RecipeIndex, TextEmbedder,
                             exists_on_disk, query_from_ingredients,
                             recall_at_k, recipe_document, summarize_novelty)

pytestmark = pytest.mark.retrieval


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(400, seed=11)


@pytest.fixture(scope="module")
def index(corpus):
    return RecipeIndex.from_recipes(corpus[:360],
                                    registry=MetricsRegistry())


@pytest.fixture(scope="module")
def held_out(corpus):
    return corpus[360:]


class TestEmbedder:
    def test_unit_norm(self):
        embedder = TextEmbedder()
        vector = embedder.embed("butter garlic chicken with rice")
        assert vector.dtype == np.float32
        assert np.isclose(np.linalg.norm(vector), 1.0, atol=1e-5)

    def test_deterministic_same_seed(self):
        a = TextEmbedder(EmbeddingConfig(seed=3))
        b = TextEmbedder(EmbeddingConfig(seed=3))
        text = "spicy paneer tikka with naan"
        assert np.array_equal(a.embed(text), b.embed(text))

    def test_seed_changes_embedding(self):
        text = "spicy paneer tikka with naan"
        a = TextEmbedder(EmbeddingConfig(seed=0)).embed(text)
        b = TextEmbedder(EmbeddingConfig(seed=1)).embed(text)
        assert not np.array_equal(a, b)

    def test_empty_text_is_zero_vector(self):
        vector = TextEmbedder().embed("   ")
        assert np.allclose(vector, 0.0)

    def test_batch_matches_single(self):
        embedder = TextEmbedder()
        texts = ["chicken and rice", "chocolate cake", "miso soup"]
        batch = embedder.embed_batch(texts)
        for row, text in zip(batch, texts):
            assert np.array_equal(row, embedder.embed(text))

    def test_similar_texts_score_higher(self):
        embedder = TextEmbedder()
        base = embedder.embed("grilled chicken with garlic butter")
        near = embedder.embed("grilled chicken with garlic sauce")
        far = embedder.embed("chocolate raspberry layer cake")
        assert float(base @ near) > float(base @ far)

    def test_fingerprint_stable(self):
        texts = ["one recipe", "another recipe"]
        a = TextEmbedder().fingerprint(texts)
        b = TextEmbedder().fingerprint(texts)
        assert a == b

    def test_config_validation(self):
        with pytest.raises(ValueError):
            EmbeddingConfig(dim=0).validate()
        with pytest.raises(ValueError):
            EmbeddingConfig(char_ngrams=(5, 3)).validate()


class TestANN:
    def test_lsh_config_validation(self):
        with pytest.raises(ValueError):
            LSHConfig(tables=0).validate()
        with pytest.raises(ValueError):
            LSHConfig(probes=-1).validate()
        with pytest.raises(ValueError):
            LSHConfig(bits=31).validate()

    def test_brute_force_is_exact(self):
        rng = np.random.default_rng(0)
        vectors = rng.standard_normal((50, 16)).astype(np.float32)
        vectors /= np.linalg.norm(vectors, axis=1, keepdims=True)
        query = vectors[7]
        result = BruteForceIndex(vectors).query(query, 3)
        assert result.indices[0] == 7
        assert np.isclose(result.scores[0], 1.0, atol=1e-5)
        assert list(result.scores) == sorted(result.scores, reverse=True)

    def test_tiny_corpus_falls_back_to_exact(self):
        rng = np.random.default_rng(1)
        vectors = rng.standard_normal((5, 8)).astype(np.float32)
        vectors /= np.linalg.norm(vectors, axis=1, keepdims=True)
        result = LSHIndex(vectors).query(vectors[2], 5)
        assert result.candidates_examined == 5
        assert set(result.indices.tolist()) == set(range(5))

    def test_self_query_finds_itself(self, index):
        row = 42
        result = index.ann.query(index.vectors[row], 1)
        assert result.indices[0] == row

    def test_recall_against_oracle(self, index, held_out):
        """The acceptance-criteria recall gate, miniature edition."""
        queries = [recipe_document(r) for r in held_out[:25]]
        strict = eps = 0.0
        for query in queries:
            vector = index.embedder.embed(query)
            approx = index.ann.query(vector, 10)
            exact = index.exact.query(vector, 10)
            strict += recall_at_k(approx, exact)
            eps += recall_at_k(approx, exact, eps=1e-3)
        assert eps / len(queries) >= 0.95
        assert strict / len(queries) >= 0.85

    def test_candidates_grow_sublinearly(self):
        """4x the corpus must cost well under 4x the candidates."""
        rng = np.random.default_rng(5)
        medians = []
        for n in (2000, 8000):
            vectors = rng.standard_normal((n, 64)).astype(np.float32)
            vectors /= np.linalg.norm(vectors, axis=1, keepdims=True)
            ann = LSHIndex(vectors)
            counts = [ann.query(vectors[i], 10).candidates_examined
                      for i in range(0, n, n // 20)]
            medians.append(float(np.median(counts)))
        assert medians[1] < medians[0] * 2.0

    def test_bucket_spread(self, index):
        assert index.ann.stats()["max_bucket"] < len(index) // 2

    def test_eps_recall_counts_near_ties(self):
        exact = BruteForceIndex(np.eye(4, dtype=np.float32))
        a = exact.query(np.eye(4, dtype=np.float32)[0], 2)
        # A fake "approximate" answer with the same scores but other
        # indices: strict recall penalizes it, eps recall does not.
        fake = type(a)(indices=np.array([2, 3]), scores=a.scores.copy(),
                       candidates_examined=4)
        assert recall_at_k(fake, a) == 0.0
        assert recall_at_k(fake, a, eps=1e-3) == 1.0


class TestRecipeIndex:
    def test_search_returns_ranked_hits(self, index):
        hits = index.search("chicken garlic rice", k=5)
        assert len(hits) == 5
        scores = [hit.score for hit in hits]
        assert scores == sorted(scores, reverse=True)
        assert [hit.rank for hit in hits] == list(range(5))

    def test_corpus_document_retrieves_itself(self, index):
        text = index.texts[17]
        for exact in (False, True):
            hits = index.search(text, k=1, exact=exact)
            assert hits[0].doc_id == index.doc_ids[17]
            assert hits[0].score > 0.999

    def test_search_validation(self, index):
        with pytest.raises(ValueError):
            index.search("   ")
        with pytest.raises(ValueError):
            index.search("chicken", k=0)

    def test_query_from_ingredients_deterministic(self):
        names = ["Chicken Breast", "garlic", " rice "]
        assert (query_from_ingredients(names)
                == query_from_ingredients(list(names)))
        assert query_from_ingredients(["", "  "]) == ""

    def test_search_ingredients(self, index):
        hits = index.search_ingredients(["chicken", "garlic"], k=3)
        assert len(hits) == 3

    def test_novelty_of_corpus_text_is_memorized(self, index):
        report = index.novelty(index.texts[5])
        assert report.novelty < MEMORIZED_NOVELTY_THRESHOLD
        assert report.memorized
        assert report.nearest_id == index.doc_ids[5]

    def test_novelty_of_unrelated_text(self, index):
        report = index.novelty("xylophone quantum blockchain zamboni")
        assert report.novelty > 0.3
        assert not report.memorized

    def test_novelty_summary(self, index, held_out):
        reports = index.novelty_batch(
            [recipe_document(r) for r in held_out[:5]])
        summary = summarize_novelty(reports)
        assert summary.count == 5
        assert summary.min_novelty <= summary.mean_novelty <= summary.max_novelty
        assert summarize_novelty([]).count == 0

    def test_metrics_recorded(self, index):
        index.search("paneer tikka", k=2)
        index.novelty("paneer tikka masala")
        names = {family.name for family in index.registry.families()}
        assert "retrieval_searches_total" in names
        assert "retrieval_search_seconds" in names
        assert "novelty_score" in names

    def test_measure_recall(self, index):
        value = index.measure_recall(["chicken rice", "chocolate cake"], k=5)
        assert 0.0 <= value <= 1.0

    def test_stats(self, index):
        stats = index.stats()
        assert stats["documents"] == len(index)
        assert stats["dim"] == index.vectors.shape[1]
        assert "ann" in stats


class TestPersistence:
    def test_round_trip_bit_identical(self, index, tmp_path):
        directory = tmp_path / "idx"
        index.save(directory)
        assert exists_on_disk(directory)
        loaded = RecipeIndex.load(directory, registry=MetricsRegistry())
        assert np.array_equal(np.asarray(loaded.vectors), index.vectors)
        assert np.array_equal(loaded.ann.codes, index.ann.codes)
        assert np.array_equal(loaded.ann.center, index.ann.center)
        assert loaded.doc_ids == index.doc_ids
        assert loaded.texts == index.texts
        query = "garlic chicken with rice"
        before = [(h.doc_id, round(h.score, 6))
                  for h in index.search(query, k=10)]
        after = [(h.doc_id, round(h.score, 6))
                 for h in loaded.search(query, k=10)]
        assert before == after

    def test_load_is_mmap_by_default(self, index, tmp_path):
        directory = tmp_path / "idx_mmap"
        index.save(directory)
        loaded = RecipeIndex.load(directory, registry=MetricsRegistry())
        assert isinstance(np.asarray(loaded.vectors).base, np.memmap) or \
            isinstance(loaded.vectors, np.memmap)
        assert loaded.stats()["mmap"]
        eager = RecipeIndex.load(directory, mmap=False,
                                 registry=MetricsRegistry())
        assert not eager.stats()["mmap"]

    def test_version_mismatch_rejected(self, index, tmp_path):
        directory = tmp_path / "idx_ver"
        index.save(directory)
        meta = json.loads((directory / "meta.json").read_text())
        meta["version"] = LAYOUT_VERSION + 1
        (directory / "meta.json").write_text(json.dumps(meta))
        with pytest.raises(ValueError, match="layout version"):
            RecipeIndex.load(directory, registry=MetricsRegistry())

    def test_corrupt_size_rejected(self, index, tmp_path):
        directory = tmp_path / "idx_corrupt"
        index.save(directory)
        texts = json.loads((directory / "texts.json").read_text())
        (directory / "texts.json").write_text(json.dumps(texts[:-3]))
        with pytest.raises(ValueError, match="corrupt"):
            RecipeIndex.load(directory, registry=MetricsRegistry())

    def test_exists_on_disk_partial(self, index, tmp_path):
        directory = tmp_path / "idx_partial"
        index.save(directory)
        (directory / "ann.npz").unlink()
        assert not exists_on_disk(directory)
