"""Unit + property tests for the three tokenizers (repro.tokenizers)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.preprocess import preprocess
from repro.recipedb import generate_corpus
from repro.tokenizers import (BOS, BPETokenizer, CharTokenizer, EOS, PAD,
                              Tokenizer, UNK, WordTokenizer, is_special,
                              load_any, special_tokens)


@pytest.fixture(scope="module")
def texts():
    corpus, _ = preprocess(generate_corpus(40, seed=13))
    return corpus


@pytest.fixture(scope="module", params=["char", "word", "bpe", "char-atomic"])
def tokenizer(request, texts):
    if request.param == "char":
        return CharTokenizer(texts)
    if request.param == "char-atomic":
        return CharTokenizer(texts, atomic_specials=True)
    if request.param == "word":
        return WordTokenizer(texts)
    return BPETokenizer(texts, num_merges=300)


class TestSharedBehaviour:
    def test_control_ids_fixed(self, tokenizer):
        assert tokenizer.pad_id == 0
        assert tokenizer.bos_id == 1
        assert tokenizer.eos_id == 2
        assert tokenizer.unk_id == 3

    def test_roundtrip_corpus_text(self, tokenizer, texts):
        for text in texts[:5]:
            assert tokenizer.decode(tokenizer.encode(text)) == text

    def test_bos_eos_added(self, tokenizer, texts):
        ids = tokenizer.encode(texts[0], add_bos=True, add_eos=True)
        assert ids[0] == tokenizer.bos_id
        assert ids[-1] == tokenizer.eos_id

    def test_controls_skipped_on_decode(self, tokenizer, texts):
        plain = tokenizer.encode(texts[0])
        wrapped = tokenizer.encode(texts[0], add_bos=True, add_eos=True)
        assert tokenizer.decode(wrapped) == tokenizer.decode(plain)

    def test_id_range_validation(self, tokenizer):
        with pytest.raises(IndexError):
            tokenizer.id_to_token(tokenizer.vocab_size)
        with pytest.raises(IndexError):
            tokenizer.id_to_token(-1)

    def test_save_load_roundtrip(self, tokenizer, texts, tmp_path):
        path = tmp_path / "tok.json"
        tokenizer.save(path)
        restored = load_any(path)
        assert restored.vocab_size == tokenizer.vocab_size
        assert restored.encode(texts[0]) == tokenizer.encode(texts[0])
        assert restored.decode(restored.encode(texts[1])) == texts[1]

    def test_contains(self, tokenizer):
        assert PAD in tokenizer
        assert "token-that-does-not-exist" not in tokenizer


class TestCharTokenizer:
    def test_plain_mode_splits_tags(self, texts):
        tok = CharTokenizer(texts)
        ids = tok.encode("<RECIPE_START>")
        assert len(ids) == len("<RECIPE_START>")

    def test_atomic_mode_keeps_tags(self, texts):
        tok = CharTokenizer(texts, atomic_specials=True)
        ids = tok.encode("<RECIPE_START> ab")
        # tag + space + a + b
        assert len(ids) == 4

    def test_atomic_flag_survives_save(self, texts, tmp_path):
        tok = CharTokenizer(texts, atomic_specials=True)
        tok.save(tmp_path / "t.json")
        restored = CharTokenizer.load(tmp_path / "t.json")
        assert restored.atomic_specials

    def test_unknown_char_maps_to_unk(self, texts):
        tok = CharTokenizer(texts)
        ids = tok.encode("é")  # not in corpus
        assert ids == [tok.unk_id]


class TestWordTokenizer:
    def test_special_tokens_single_ids(self, texts):
        tok = WordTokenizer(texts)
        ids = tok.encode("<RECIPE_START> <QTY_1/2> cup")
        assert len(ids) == 3

    def test_min_freq_prunes(self, texts):
        full = WordTokenizer(texts, min_freq=1)
        pruned = WordTokenizer(texts, min_freq=5)
        assert pruned.vocab_size < full.vocab_size

    def test_max_vocab_caps(self, texts):
        capped = WordTokenizer(texts, max_vocab=50)
        # 50 words + controls + specials found in corpus
        assert capped.vocab_size < WordTokenizer(texts).vocab_size

    def test_unknown_word_to_unk(self, texts):
        tok = WordTokenizer(texts)
        assert tok.encode("quasar") == [tok.unk_id]

    def test_frequency_ordering(self, texts):
        """More frequent words get smaller ids (after specials)."""
        tok = WordTokenizer(texts)
        the_id = tok.token_to_id("the")
        rare = max(tok.encode(texts[0]))
        assert the_id < rare


class TestBPETokenizer:
    def test_merges_learned(self, texts):
        tok = BPETokenizer(texts, num_merges=100)
        assert len(tok.merges) == 100

    def test_zero_merges_is_char_like(self, texts):
        tok = BPETokenizer(texts, num_merges=0)
        pieces = tok._tokenize("hello")
        assert len(pieces) == 5

    def test_more_merges_shorter_sequences(self, texts):
        small = BPETokenizer(texts, num_merges=50)
        large = BPETokenizer(texts, num_merges=500)
        assert len(large.encode(texts[0])) < len(small.encode(texts[0]))

    def test_specials_never_merged(self, texts):
        tok = BPETokenizer(texts, num_merges=300)
        ids = tok.encode("<RECIPE_START> <NEXT_INGR>")
        assert len(ids) == 2

    def test_unseen_word_roundtrip(self, texts):
        """BPE gracefully decomposes words never seen in training."""
        tok = BPETokenizer(texts, num_merges=300)
        text = "the zanzibar speciality"
        decoded = tok.decode(tok.encode(text))
        assert decoded == text

    def test_merges_survive_save(self, texts, tmp_path):
        tok = BPETokenizer(texts, num_merges=120)
        tok.save(tmp_path / "bpe.json")
        restored = BPETokenizer.load(tmp_path / "bpe.json")
        assert restored.merges == tok.merges
        assert restored.encode(texts[0]) == tok.encode(texts[0])

    def test_negative_merges_rejected(self, texts):
        with pytest.raises(ValueError):
            BPETokenizer(texts, num_merges=-1)


class TestSpecialRegistry:
    def test_canonical_order(self):
        tokens = special_tokens()
        assert tokens[:4] == [PAD, BOS, EOS, UNK]

    def test_is_special(self):
        assert is_special("<RECIPE_START>")
        assert is_special("<QTY_1/2>")
        assert not is_special("hello")
        assert not is_special("<>")
        assert not is_special("a<b>")


class TestKindMismatch:
    def test_wrong_kind_load_raises(self, texts, tmp_path):
        WordTokenizer(texts).save(tmp_path / "w.json")
        with pytest.raises(ValueError):
            BPETokenizer.load(tmp_path / "w.json")


@given(st.lists(st.sampled_from("abc <RECIPE_START> <NUM_2> xyz".split()),
                min_size=1, max_size=12))
@settings(max_examples=40, deadline=None)
def test_word_tokenizer_roundtrip_property(words):
    text = " ".join(words)
    tok = WordTokenizer([text])
    assert tok.decode(tok.encode(text)) == text
