"""Throughput gate for the serving engine (slow tier).

Runs ``benchmarks/run_serving_throughput.py`` — the engine must beat
sequential decoding by the configured factor at concurrency 8 while
producing bit-identical output.  Excluded from the tier-1 default run;
invoke with ``pytest -m slow``.
"""

import pathlib
import sys

import pytest

pytestmark = pytest.mark.slow

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent
                       / "benchmarks"))

import run_serving_throughput  # noqa: E402


def test_engine_clears_throughput_gate():
    assert run_serving_throughput.main(["--rounds", "3"]) == 0
