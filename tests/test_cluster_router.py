"""Router unit tests: placement, admission, rolling operations.

Failure-injection coverage (mid-decode replica kills, bit-identical
failover) lives in ``tests/test_cluster_chaos.py`` under the chaos
tier; this file covers the router's deterministic behaviour.
"""

import threading

import pytest

from repro.models import GenerationConfig, generate
from repro.models.lstm import LSTMConfig, LSTMLanguageModel
from repro.obs import MetricsRegistry, NullRegistry, NullTracer
from repro.resilience import FaultInjector, FaultSpec, OverloadShedError, \
    inject_faults
from repro.cluster import ClusterAdmissionController, ClusterConfig, Router
from repro.serving import EngineConfig, EngineStoppedError, InferenceEngine

pytestmark = pytest.mark.cluster

CONFIG = GenerationConfig(max_new_tokens=4, seed=0)


def _model():
    return LSTMLanguageModel(LSTMConfig(vocab_size=16, d_embed=4, d_hidden=8,
                                        num_layers=1, dropout=0.0))


def _router(model, registry, replicas=2, **overrides):
    defaults = dict(replicas=replicas, restart_backoff_seconds=0.01,
                    heartbeat_seconds=0.01)
    defaults.update(overrides)

    def factory(name):
        return InferenceEngine(model, EngineConfig(max_batch_size=2),
                               registry=registry, tracer=NullTracer(),
                               name=name)

    return Router(factory, ClusterConfig(**defaults), registry=registry)


@pytest.fixture()
def model():
    return _model()


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestPlacement:
    def test_same_prefix_same_replica(self, model, registry):
        with _router(model, registry, replicas=3) as router:
            # Only the first affinity_tokens (32) ids key placement:
            # prompts agreeing on that head land together no matter how
            # their tails differ.
            head = list(range(1, 36))
            homes = {router.affinity_replica(head + [i]) for i in range(8)}
            assert len(homes) == 1

    def test_distinct_prefixes_spread(self, model, registry):
        with _router(model, registry, replicas=3) as router:
            homes = {router.affinity_replica([seed, seed + 1, seed + 2])
                     for seed in range(40)}
            assert len(homes) >= 2  # consistent hashing actually spreads

    def test_affinity_is_stable_across_routers(self, model, registry):
        # blake2b, not the salted builtin hash: two router instances
        # (e.g. across a restart) place the same prefix identically.
        with _router(model, registry, replicas=3) as first:
            expected = [first.affinity_replica([s, 2, 3]) for s in range(10)]
        with _router(model, MetricsRegistry(), replicas=3) as second:
            assert [second.affinity_replica([s, 2, 3])
                    for s in range(10)] == expected

    def test_output_matches_sequential(self, model, registry):
        expected = generate(model, [1, 2, 3], CONFIG,
                            registry=NullRegistry(), tracer=NullTracer())
        with _router(model, registry) as router:
            assert router.generate([1, 2, 3], CONFIG) == expected
            assert router.submit([1, 2, 3], CONFIG).result(
                timeout=10) == expected

    def test_beam_routes_through_fleet(self, model, registry):
        beam = GenerationConfig(max_new_tokens=4, strategy="beam",
                                beam_size=2, seed=0)
        expected = generate(model, [1, 2, 3], beam,
                            registry=NullRegistry(), tracer=NullTracer())
        with _router(model, registry) as router:
            assert router.generate([1, 2, 3], beam) == expected
            with pytest.raises(ValueError):
                router.submit([1, 2, 3], beam)

    def test_saturated_affinity_spills_to_least_queued(self, model, registry):
        # saturation_tokens=0: any outstanding work on the home replica
        # spills the next same-prefix request balance-of-two style.  A
        # forward delay pins the first request in flight deterministically.
        with _router(model, registry, saturation_tokens=0) as router:
            prompt = [1, 2, 3]
            home = router.affinity_replica(prompt)
            injector = FaultInjector(
                {"model.forward": FaultSpec(delay_seconds=0.02)})
            with inject_faults(injector):
                first = router.submit(prompt, CONFIG)
                second = router.submit(prompt, CONFIG)
                assert first.replica == home
                assert second.replica != home
                assert first.result(timeout=30) == second.result(timeout=30)
            stats = router.stats()
            assert stats["affinity"]["spills"] >= 1
            assert 0.0 < stats["affinity"]["hit_rate"] < 1.0


class TestAdmission:
    def test_sheds_only_when_all_replicas_past_watermark(self, model,
                                                         registry):
        # Watermark of one request's cost: each replica can hold one.
        with _router(model, registry, saturation_tokens=0,
                     watermark_tokens=CONFIG.max_new_tokens) as router:
            injector = FaultInjector(
                {"model.forward": FaultSpec(delay_seconds=0.02)})
            with inject_faults(injector):
                first = router.submit([1, 2, 3], CONFIG)
                second = router.submit([1, 2, 3], CONFIG)  # spills, admitted
                assert {first.replica, second.replica} == {"r0", "r1"}
                with pytest.raises(OverloadShedError) as excinfo:
                    router.submit([1, 2, 3], CONFIG)
                assert excinfo.value.retry_after >= 1
                with pytest.raises(OverloadShedError):
                    router.check_admission(CONFIG.max_new_tokens)
                first.result(timeout=30)
                second.result(timeout=30)
            # Backlog drained: the fleet admits again.
            assert len(router.generate([1, 2, 3], CONFIG)) == 4
            assert router.stats()["admission"]["shed_total"] >= 1

    def test_controller_idle_oversized_escape_hatch(self, registry):
        gate = ClusterAdmissionController(watermark_tokens=10,
                                          registry=registry)
        # Oversized cost, but r1 is idle: admit there.
        assert gate.eligible({"r0": 5, "r1": 0}, 100) == ["r1"]
        with pytest.raises(OverloadShedError):
            gate.eligible({"r0": 5, "r1": 7}, 100)

    def test_controller_disabled_watermark_admits_everything(self, registry):
        gate = ClusterAdmissionController(watermark_tokens=None,
                                          registry=registry)
        assert sorted(gate.eligible({"r0": 10**9, "r1": 10**9}, 100)) == \
            ["r0", "r1"]


class TestRollingOperations:
    def test_drain_swap_readmit_drops_nothing(self, model, registry):
        with _router(model, registry, saturation_tokens=10**6) as router:
            prompt = [1, 2, 3]
            home = router.affinity_replica(prompt)
            other = next(n for n in router.replica_names() if n != home)
            expected = generate(model, prompt, CONFIG,
                                registry=NullRegistry(), tracer=NullTracer())
            injector = FaultInjector(
                {"model.forward": FaultSpec(delay_seconds=0.01)})
            with inject_faults(injector):
                inflight = router.submit(prompt, CONFIG)
                assert inflight.replica == home
                drained = {}

                def drain():
                    drained["seconds"] = router.drain(home, timeout=30)

                thread = threading.Thread(target=drain)
                thread.start()
                # While draining, same-prefix traffic routes elsewhere
                # and completes; the in-flight request finishes whole.
                rerouted = router.submit(prompt, CONFIG)
                assert rerouted.replica == other
                assert rerouted.result(timeout=30) == expected
                thread.join(timeout=30)
                assert not thread.is_alive()
            assert inflight.result(timeout=30) == expected  # zero dropped
            assert drained["seconds"] >= 0.0
            old_engine = router._replicas[home].supervisor.engine
            router.swap(home)
            assert router._replicas[home].supervisor.engine is not old_engine
            # Still draining until readmitted.
            assert router.stats()["replicas"][home]["state"] == "draining"
            assert router.fleet_health()["status"] == "draining"
            router.readmit(home)
            assert router.fleet_health() == {
                "replicas": 2, "healthy": 2, "draining": 0, "status": "ok"}
            # The rerouted traffic cached the prefix on the survivor and
            # published it to the fleet index, so cache-aware placement
            # now prefers the warm survivor over the cold swapped home —
            # identically either way.
            landed = router.submit(prompt, CONFIG)
            assert landed.replica == other
            assert landed.result(timeout=30) == expected
            # With the fleet tier disabled, the ring would send the
            # prefix back to its readmitted home.
            assert router.affinity_replica(prompt) == home
            # The drain was observed on the metrics histogram.
            assert registry.histogram(
                "cluster_drain_seconds").labels().count == 1

    def test_swap_requires_drain(self, model, registry):
        with _router(model, registry) as router:
            with pytest.raises(RuntimeError, match="drain"):
                router.swap("r0")

    def test_swap_can_replace_the_factory(self, model, registry):
        replacement = _model()
        with _router(model, registry) as router:
            router.drain("r0", timeout=10)

            def new_factory(name):
                return InferenceEngine(replacement, registry=registry,
                                       name=name)

            router.swap("r0", engine_factory=new_factory)
            router.readmit("r0")
            assert router._replicas["r0"].supervisor.engine.model \
                is replacement

    def test_unknown_replica_is_a_keyerror(self, model, registry):
        with _router(model, registry) as router:
            with pytest.raises(KeyError, match="r9"):
                router.drain("r9")


class TestLifecycle:
    def test_stopped_router_refuses_submits(self, model, registry):
        router = _router(model, registry)
        router.stop()
        assert not router.running
        with pytest.raises(EngineStoppedError):
            router.submit([1, 2, 3], CONFIG)

    def test_stats_shape(self, model, registry):
        with _router(model, registry) as router:
            router.generate([1, 2, 3], CONFIG)
            stats = router.stats()
            assert set(stats["replicas"]) == {"r0", "r1"}
            for replica in stats["replicas"].values():
                assert replica["state"] == "healthy"
                assert "hit_rate" in replica["prefix_cache"]
                assert replica["supervisor"]["restarts"] == 0
            assert stats["fleet"]["status"] == "ok"
            assert stats["affinity"]["affinity_tokens"] == 32
            assert sum(r["dispatches"]
                       for r in stats["replicas"].values()) == 1

    def test_per_replica_metric_labels(self, model, registry):
        with _router(model, registry) as router:
            router.generate([1, 2, 3], CONFIG)
        # The serving replica's engine + cache series carry its name.
        served = [name for name, replica
                  in router.stats()["replicas"].items()
                  if replica["dispatches"]]
        assert len(served) == 1
        tokens = registry.counter("engine_tokens_total")
        assert tokens.labels(engine=served[0], strategy="plain").value == 4
        hits = registry.counter("engine_prefix_cache_misses_total")
        assert hits.labels(cache=served[0]).value >= 1
        dispatches = registry.counter("cluster_dispatches_total")
        assert dispatches.labels(replica=served[0]).value == 1


class TestSharedWeightFleet:
    """N replicas over ONE frozen weight copy (``docs/KERNELS.md``).

    The factory closes over a single kernel-enabled transformer, so
    every replica's engine decodes through the same read-only
    :class:`~repro.nn.WeightStore` — the fleet costs ~1x model weights
    instead of ~Nx, with per-thread kernel workspaces keeping the
    replicas' concurrent decodes isolated.
    """

    @staticmethod
    def _gpt(seed=0):
        from repro.models import distilgpt2
        return distilgpt2(vocab_size=16, seed=seed, context_length=64)

    @staticmethod
    def _shared_factory(shared, registry):
        def factory(name):
            return InferenceEngine(shared, EngineConfig(max_batch_size=2),
                                   registry=registry, tracer=NullTracer(),
                                   name=name)
        return factory

    def test_shared_fleet_bit_identical_to_isolated_replicas(self, registry):
        prompts = [[1, 2, 3], [7, 6, 5, 4], [2] * 34, [9, 9, 1]]
        reference = self._gpt()
        reference.eval()
        expected = [generate(reference, p, CONFIG, registry=NullRegistry(),
                             tracer=NullTracer()) for p in prompts]

        shared = self._gpt()
        shared.enable_kernels("fp32", freeze=True)
        config = ClusterConfig(replicas=3, restart_backoff_seconds=0.01,
                               heartbeat_seconds=0.01)
        with Router(self._shared_factory(shared, registry), config,
                    registry=registry) as router:
            handles = [router.submit(p, CONFIG) for p in prompts]
            assert [h.result(timeout=30) for h in handles] == expected

    def test_fleet_weight_bytes_one_copy_when_shared(self, registry):
        single = sum(p.data.nbytes for p in self._gpt().parameters())
        shared = self._gpt()
        shared.enable_kernels("fp32", freeze=True)
        config = ClusterConfig(replicas=3, restart_backoff_seconds=0.01,
                               heartbeat_seconds=0.01)
        with Router(self._shared_factory(shared, registry), config,
                    registry=registry) as router:
            accounting = router.weight_bytes()
            assert accounting["replicas"] == 3
            assert accounting["model_copies"] == 1
            # ~1x: the kernel store references the model's own arrays.
            assert accounting["unique_bytes"] <= 1.1 * single
            assert router.stats()["weights"] == accounting

    def test_fleet_weight_bytes_n_copies_when_isolated(self, registry):
        single = sum(p.data.nbytes for p in self._gpt().parameters())

        def factory(name):
            model = self._gpt()
            model.eval()
            return InferenceEngine(model, EngineConfig(max_batch_size=2),
                                   registry=registry, tracer=NullTracer(),
                                   name=name)

        config = ClusterConfig(replicas=3, restart_backoff_seconds=0.01,
                               heartbeat_seconds=0.01)
        with Router(factory, config, registry=registry) as router:
            accounting = router.weight_bytes()
            assert accounting["model_copies"] == 3
            assert accounting["unique_bytes"] >= 3 * single

    @pytest.mark.chaos
    def test_replica_crash_reattaches_to_shared_weights(self, registry):
        # Crash a replica's engine thread mid-request: the supervisor
        # restarts it via the factory, re-attaching to the SAME shared
        # model, and the request fails over bit-identically.  The
        # frozen store guarantees the crash couldn't have corrupted
        # weights, and survivors plus the restarted replica must stay
        # bit-identical to the unfailed sequential run.
        prompt = [1, 2, 3]
        reference = self._gpt()
        reference.eval()
        expected = generate(reference, prompt, CONFIG,
                            registry=NullRegistry(), tracer=NullTracer())

        shared = self._gpt()
        kernels = shared.enable_kernels("fp32", freeze=True)
        snapshot = shared.wte.weight.data.copy()
        injector = FaultInjector(
            {"prefix_cache.get": FaultSpec(schedule={0}, max_faults=1)})
        config = ClusterConfig(replicas=2, restart_backoff_seconds=0.01,
                               heartbeat_seconds=0.01)
        with Router(self._shared_factory(shared, registry), config,
                    registry=registry) as router:
            with inject_faults(injector):
                handle = router.submit(prompt, CONFIG)
                assert handle.result(timeout=30) == expected
            assert handle.failovers >= 1
            # The fleet still shares the one frozen copy after restart.
            accounting = router.weight_bytes()
            assert accounting["model_copies"] == 1
            assert kernels.store.frozen
            assert not shared.wte.weight.data.flags.writeable
            assert (shared.wte.weight.data == snapshot).all()
            # And the restarted fleet keeps serving identically.
            assert router.generate(prompt, CONFIG) == expected
