"""Unit tests for ROUGE (repro.evaluate.rouge) with hand-computed values."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluate import corpus_rouge, rouge_l, rouge_n
from repro.evaluate.rouge import _lcs_length


class TestRougeN:
    def test_perfect_match(self):
        tokens = "the cat sat".split()
        score = rouge_n(tokens, tokens, n=1)
        assert score.precision == score.recall == score.f1 == 1.0

    def test_hand_computed_unigram(self):
        # cand: "the cat", ref: "the cat sat down"
        # overlap 2; precision 2/2; recall 2/4
        score = rouge_n("the cat".split(), "the cat sat down".split(), n=1)
        assert score.precision == pytest.approx(1.0)
        assert score.recall == pytest.approx(0.5)
        assert score.f1 == pytest.approx(2 * 1.0 * 0.5 / 1.5)

    def test_clipping(self):
        # "the the the" vs "the cat": clipped overlap = 1
        score = rouge_n("the the the".split(), "the cat".split(), n=1)
        assert score.precision == pytest.approx(1 / 3)
        assert score.recall == pytest.approx(1 / 2)

    def test_bigram(self):
        score = rouge_n("a b c".split(), "a b d".split(), n=2)
        assert score.precision == pytest.approx(1 / 2)
        assert score.recall == pytest.approx(1 / 2)

    def test_empty_candidate(self):
        score = rouge_n([], "a b".split(), n=1)
        assert score.precision == 0.0
        assert score.f1 == 0.0


class TestLcs:
    def test_known_lcs(self):
        assert _lcs_length("abcde", "ace") == 3
        assert _lcs_length("abc", "def") == 0
        assert _lcs_length("", "abc") == 0

    def test_lcs_tokens(self):
        a = "mix the flour then bake".split()
        b = "mix flour and bake well".split()
        assert _lcs_length(a, b) == 3  # mix, flour, bake


class TestRougeL:
    def test_perfect(self):
        tokens = "one two three".split()
        assert rouge_l(tokens, tokens).f1 == pytest.approx(1.0)

    def test_hand_computed(self):
        # LCS("a b c d", "a c d e") = "a c d" (3)
        score = rouge_l("a b c d".split(), "a c d e".split())
        assert score.precision == pytest.approx(3 / 4)
        assert score.recall == pytest.approx(3 / 4)

    def test_order_sensitivity(self):
        """ROUGE-L (unlike ROUGE-1) cares about order."""
        ref = "a b c d".split()
        in_order = rouge_l("a b c d".split(), ref)
        shuffled = rouge_l("d c b a".split(), ref)
        assert in_order.f1 > shuffled.f1
        # but unigram overlap is identical
        assert rouge_n("d c b a".split(), ref, 1).f1 == \
               rouge_n("a b c d".split(), ref, 1).f1


class TestCorpusRouge:
    def test_mean_over_segments(self):
        perfect = "x y z".split()
        score = corpus_rouge([perfect, "a".split()],
                             [perfect, "b".split()], variant="l")
        assert score.f1 == pytest.approx(0.5)

    def test_variants(self):
        cand = ["a b c".split()]
        ref = ["a b d".split()]
        assert corpus_rouge(cand, ref, "1").f1 > 0
        assert corpus_rouge(cand, ref, "2").f1 > 0
        assert corpus_rouge(cand, ref, "l").f1 > 0
        with pytest.raises(ValueError):
            corpus_rouge(cand, ref, "3")

    def test_validation(self):
        with pytest.raises(ValueError):
            corpus_rouge([], [])
        with pytest.raises(ValueError):
            corpus_rouge([["a"]], [])


@given(st.lists(st.sampled_from("abcd"), min_size=1, max_size=12),
       st.lists(st.sampled_from("abcd"), min_size=1, max_size=12))
@settings(max_examples=60, deadline=None)
def test_rouge_bounds_and_symmetry_property(a, b):
    score = rouge_l(a, b)
    assert 0.0 <= score.f1 <= 1.0
    # swapping candidate/reference swaps precision and recall
    swapped = rouge_l(b, a)
    assert score.precision == pytest.approx(swapped.recall)
    assert score.recall == pytest.approx(swapped.precision)
