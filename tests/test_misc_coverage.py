"""Coverage for smaller public surfaces: serve parser, report columns,
generator internals, deploy validation, CLI parser errors."""

import argparse

import numpy as np
import pytest

from repro.cli import build_parser as cli_parser
from repro.evaluate import EvaluationReport, ModelEvaluation
from repro.recipedb.generator import (DISH_BY_LIQUID, DISH_TYPES,
                                      LIQUIDS_BY_DISH, RecipeGenerator)
from repro.webapp.serve import build_parser as serve_parser


class TestDishGrammar:
    def test_liquids_are_disjoint_across_dishes(self):
        """Each liquid signals exactly one dish — the inferability
        property Table I's BLEU range rests on (DESIGN.md)."""
        seen = {}
        for dish, liquids in LIQUIDS_BY_DISH.items():
            for liquid in liquids:
                assert liquid not in seen, \
                    f"{liquid} used by both {seen.get(liquid)} and {dish}"
                seen[liquid] = dish
        assert DISH_BY_LIQUID == seen

    def test_every_dish_has_liquids_and_skeleton(self):
        for dish in DISH_TYPES:
            assert dish.name in LIQUIDS_BY_DISH
            assert len(dish.skeleton) >= 5
            assert dish.main_categories

    def test_all_liquids_exist_in_catalog(self):
        from repro.recipedb import default_catalog
        catalog = default_catalog()
        for liquids in LIQUIDS_BY_DISH.values():
            for liquid in liquids:
                assert liquid in catalog, liquid

    def test_slot_hash_stable(self):
        a = RecipeGenerator._slot_hash("curry", "chicken", "onion")
        b = RecipeGenerator._slot_hash("curry", "chicken", "onion")
        c = RecipeGenerator._slot_hash("curry", "chicken", "garlic")
        assert a == b
        assert a != c

    def test_same_ingredients_same_instructions(self):
        """Two corpora, same seed: recipes with identical ingredient
        draws get identical instruction text (determinism of slots)."""
        from repro.recipedb import generate_corpus
        a = generate_corpus(20, seed=123)
        b = generate_corpus(20, seed=123)
        for recipe_a, recipe_b in zip(a, b):
            assert [s.text for s in recipe_a.instructions] == \
                   [s.text for s in recipe_b.instructions]


class TestReportColumns:
    def test_empty_report_table(self):
        report = EvaluationReport(title="empty")
        table = report.to_table()
        assert "empty" in table

    def test_integer_and_float_formatting(self):
        report = EvaluationReport(title="fmt")
        report.add(ModelEvaluation(model_name="m", bleu=0.123456,
                                   params=12345))
        table = report.to_table(columns=("bleu", "params"))
        assert "0.123" in table
        assert "12345" in table


class TestArgumentParsers:
    def test_cli_requires_command(self):
        with pytest.raises(SystemExit):
            cli_parser().parse_args([])

    def test_cli_rejects_unknown_model(self):
        with pytest.raises(SystemExit):
            cli_parser().parse_args(["train", "--texts", "x", "--out", "y",
                                     "--model", "gpt7"])

    def test_cli_all_subcommands_parse(self):
        parser = cli_parser()
        assert parser.parse_args(["corpus", "--out", "x"]).command == "corpus"
        assert parser.parse_args(["info"]).command == "info"
        args = parser.parse_args(["generate", "--checkpoint", "c",
                                  "--ingredients", "a,b", "--greedy"])
        assert args.greedy

    def test_serve_parser_defaults(self):
        args = serve_parser().parse_args(["backend"])
        assert args.port == 8000
        args = serve_parser().parse_args(["frontend"])
        assert args.port == 8080
        assert args.backend_url.startswith("http://")

    def test_serve_requires_service(self):
        with pytest.raises(SystemExit):
            serve_parser().parse_args([])


class TestGeneratorCorruptionShares:
    def test_duplicate_content_identical(self):
        from repro.recipedb import generate_corpus
        from repro.preprocess import content_fingerprint
        corpus = generate_corpus(10, seed=7, duplicate_rate=1.0)
        clean, dupes = corpus[:10], corpus[10:]
        clean_prints = {content_fingerprint(r) for r in clean}
        for dupe in dupes:
            assert content_fingerprint(dupe) in clean_prints

    def test_incomplete_variants_cover_all_modes(self):
        from repro.recipedb import generate_corpus
        corpus = generate_corpus(60, seed=7, incomplete_rate=1.0)
        broken = [r for r in corpus if not r.is_complete()]
        missing_title = sum(1 for r in broken if not r.title)
        missing_ingredients = sum(1 for r in broken if not r.ingredients)
        missing_instructions = sum(1 for r in broken if not r.instructions)
        assert missing_title and missing_ingredients and missing_instructions
