"""End-to-end integration tests: corpus → training → generation → eval.

These mirror the paper's full flow at miniature scale, crossing every
package boundary in the library.
"""

import numpy as np
import pytest

from repro.core import PipelineConfig, Ratatouille
from repro.evaluate import distinct_n, perplexity, score_structure
from repro.models import GenerationConfig
from repro.preprocess import (PreprocessConfig, decode_numbers, parse_recipe,
                              preprocess)
from repro.recipedb import RecipeDatabase, generate_corpus
from repro.training import LMDataset, TrainingConfig


@pytest.fixture(scope="module")
def app():
    """One adequately-trained small pipeline shared by the module."""
    config = PipelineConfig(
        model_name="distilgpt2",
        num_recipes=60,
        preprocess=PreprocessConfig(),
        training=TrainingConfig(max_steps=120, batch_size=8, warmup_steps=10,
                                eval_every=60))
    return Ratatouille.quickstart(model_name="distilgpt2", num_recipes=60,
                                  seed=5, config=config)


class TestEndToEnd:
    def test_training_converged_below_initial(self, app):
        result = app.training_result
        assert result.final_train_loss < result.train_losses[0] / 2

    def test_generation_produces_recipe_text(self, app):
        out = app.generate(["chicken breast", "garlic", "basmati rice"],
                           GenerationConfig(max_new_tokens=120, top_k=10,
                                            temperature=0.7, seed=2))
        # The model has learned the format scaffold by now.
        assert "<INSTR_START>" in out.raw_text
        assert out.instructions or out.ingredients

    def test_generated_numbers_decode(self, app):
        out = app.generate(["2 cup rice", "1 1/2 pound chicken breast"],
                           GenerationConfig(max_new_tokens=60, seed=3))
        for line in out.ingredients:
            assert "<QTY_" not in line and "<NUM_" not in line

    def test_perplexity_on_heldout_reasonable(self, app):
        held_out, _ = preprocess(generate_corpus(10, seed=91))
        dataset = LMDataset(held_out, app.tokenizer, seq_len=64)
        ppl = perplexity(app.model, dataset, max_batches=4)
        # trained model should beat the uniform baseline by a wide margin
        assert ppl < app.tokenizer.vocab_size / 4

    def test_bleu_beats_untrained(self, app):
        from repro.core.registry import get_spec
        held_out, _ = preprocess(generate_corpus(10, seed=92))
        greedy = GenerationConfig(strategy="greedy", max_new_tokens=1)
        trained_bleu, _ = app.evaluate_bleu(held_out, max_samples=4,
                                            generation=greedy, seed=1)
        spec = get_spec("distilgpt2")
        fresh = Ratatouille(spec.build_model(app.tokenizer.vocab_size, 1),
                            app.tokenizer)
        fresh_bleu, _ = fresh.evaluate_bleu(held_out, max_samples=4,
                                            generation=greedy, seed=1)
        assert trained_bleu > fresh_bleu

    def test_diverse_generations_from_different_seeds(self, app):
        outs = [app.generate(["onion", "garlic"],
                             GenerationConfig(max_new_tokens=60,
                                              temperature=1.0, seed=s))
                for s in range(3)]
        texts = [o.raw_text.split() for o in outs]
        assert distinct_n(texts, 2) > 0.1
        assert len({o.raw_text for o in outs}) > 1


class TestDataFlowConsistency:
    def test_db_roundtrip_preprocess_train(self, tmp_path):
        """JSONL persistence composes with the rest of the pipeline."""
        from repro.recipedb import load_jsonl, save_jsonl
        recipes = generate_corpus(20, seed=41)
        path = tmp_path / "corpus.jsonl"
        save_jsonl(recipes, path)
        texts, report = preprocess(load_jsonl(path))
        assert report.cleaning.kept == 20
        db = RecipeDatabase(recipes)
        assert db.stats().num_recipes == 20

    def test_generated_recipe_parses_back(self, app):
        out = app.generate(["salt", "black pepper"],
                           GenerationConfig(max_new_tokens=100, seed=7))
        parsed = parse_recipe(out.raw_text)
        score = score_structure(out.raw_text)
        assert parsed.ingredients  # prompt section always present
        assert isinstance(score.is_valid, bool)

    def test_prompt_ingredients_preserved_in_output(self, app):
        ingredients = ["2 cup basmati rice", "1 piece onion"]
        out = app.generate(ingredients,
                           GenerationConfig(max_new_tokens=30, seed=8))
        assert decode_numbers(out.raw_text).count("basmati rice") >= 1
        assert [decode_numbers(i) for i in out.ingredients[:2]] == \
               ["2 cup basmati rice", "1 piece onion"]
