"""Regression tests: RateLimiter memory stays bounded (stale-bucket
pruning + hard client cap) without changing limiting behaviour."""

import pytest

from repro.webapp import App, RateLimiter, Request, Response


def _app():
    app = App()

    @app.route("/ping")
    def ping(request):
        return Response.json({"ok": True})

    return app


def _request(client=None):
    headers = {RateLimiter.CLIENT_HEADER: client} if client else {}
    return Request(method="GET", path="/ping", query={}, headers=headers)


class TestStaleBucketPruning:
    def test_unique_clients_do_not_grow_forever(self):
        fake_time = [0.0]
        app = _app()
        limiter = RateLimiter(app, rate=10.0, burst=10,
                              clock=lambda: fake_time[0])
        # 10k distinct clients, each advancing time past the refill
        # horizon (burst/rate = 1s) so earlier buckets go stale.
        for i in range(10_000):
            fake_time[0] += 2.0
            assert app.dispatch(_request(f"client-{i}")).status == 200
        # Periodic pruning keeps the table to at most one prune window.
        assert limiter.tracked_clients <= 256

    def test_active_client_survives_pruning(self):
        fake_time = [0.0]
        app = _app()
        limiter = RateLimiter(app, rate=1.0, burst=2,
                              clock=lambda: fake_time[0])
        # Exhaust the active client's budget.
        assert app.dispatch(_request("active")).status == 200
        assert app.dispatch(_request("active")).status == 200
        assert app.dispatch(_request("active")).status == 429
        # A pile of one-shot clients triggers pruning passes; the
        # active client's (non-stale) bucket must keep its state.
        for i in range(600):
            fake_time[0] += 0.001
            app.dispatch(_request(f"drive-by-{i}"))
        assert app.dispatch(_request("active")).status == 429
        assert limiter.tracked_clients > 0

    def test_stale_drop_is_behaviour_preserving(self):
        fake_time = [0.0]
        app = _app()
        RateLimiter(app, rate=1.0, burst=2, clock=lambda: fake_time[0])
        app.dispatch(_request("c"))
        app.dispatch(_request("c"))
        assert app.dispatch(_request("c")).status == 429
        # After a full refill (burst/rate = 2s) the bucket is
        # indistinguishable from a fresh client whether or not it was
        # pruned in between.
        fake_time[0] += 2.0
        assert app.dispatch(_request("c")).status == 200


class TestHardCap:
    def test_max_clients_enforced_within_refill_window(self):
        fake_time = [0.0]
        app = _app()
        limiter = RateLimiter(app, rate=0.001, burst=1000,
                              clock=lambda: fake_time[0],
                              max_clients=100)
        # Refill horizon is 10^6 seconds: nothing ever goes stale, so
        # only the hard cap bounds the table.
        for i in range(5_000):
            fake_time[0] += 0.01
            app.dispatch(_request(f"adversary-{i}"))
        assert limiter.tracked_clients <= 100

    def test_eviction_drops_least_recently_seen(self):
        fake_time = [0.0]
        app = _app()
        limiter = RateLimiter(app, rate=0.001, burst=10,
                              clock=lambda: fake_time[0], max_clients=5)
        for i in range(20):
            fake_time[0] += 1.0
            app.dispatch(_request(f"c{i}"))
        with limiter._lock:
            survivors = set(limiter._buckets)
        assert f"c{19}" in survivors  # newest always kept

    def test_invalid_max_clients(self):
        with pytest.raises(ValueError):
            RateLimiter(_app(), max_clients=0)
