"""Lint: every benchmark gate is wired into the slow pytest tier.

A ``benchmarks/run_*.py`` gate that no test invokes is a regression
detector nobody runs — its thresholds rot silently.  This test greps
``tests/`` so every gate stays reachable via ``pytest -m slow``
(mirroring ``test_fault_registry_lint.py``, which does the same for
fault points).  A benchmark may opt out only by appearing in
``NON_GATES`` with a reason: scripts that *report* rather than
pass/fail have no exit status worth asserting.
"""

import pathlib
import re

import pytest

pytestmark = pytest.mark.durability

REPO = pathlib.Path(__file__).resolve().parent.parent
BENCHMARKS = REPO / "benchmarks"
TESTS = REPO / "tests"

#: Benchmarks that are reports, not gates: main() returns nothing and
#: there is no pass/fail threshold to wire into CI.
NON_GATES = {
    "run_table1": "reproduces the paper's Table 1; reporting only",
}


def _slow_test_sources():
    sources = {}
    for path in sorted(TESTS.glob("test_*.py")):
        text = path.read_text("utf-8")
        if re.search(r"pytest\.mark\.slow", text):
            sources[path.name] = text
    return sources


def _benchmarks():
    return sorted(path.stem for path in BENCHMARKS.glob("run_*.py"))


def test_every_benchmark_gate_has_a_slow_tier_test():
    sources = _slow_test_sources()
    unwired = [
        name for name in _benchmarks()
        if name not in NON_GATES
        and not any(re.search(rf"\b{name}\b", text)
                    for text in sources.values())]
    assert not unwired, (
        f"benchmark gate(s) with no slow-tier pytest wiring: {unwired} — "
        f"add a tests/test_*_slow.py that imports the module and asserts "
        f"main([]) == 0 (or register a reason in NON_GATES)")


def test_every_slow_wrapper_asserts_the_gate():
    # A wrapper that imports the benchmark but never checks main()'s
    # exit status would green-light a failing gate.
    for name, text in _slow_test_sources().items():
        for bench in _benchmarks():
            if re.search(rf"\bimport {bench}\b", text):
                assert re.search(rf"{bench}\.main\(", text), (
                    f"{name} imports {bench} but never calls "
                    f"{bench}.main() — the gate is not actually asserted")


def test_non_gates_exist_and_are_reasoned():
    names = set(_benchmarks())
    for name, reason in NON_GATES.items():
        assert name in names, f"NON_GATES entry {name!r} is stale"
        assert reason.strip(), f"NON_GATES entry {name!r} needs a reason"
