"""Lint: every fault point in the code is registered and documented.

A `fault_check("...")` call site that is not in ``FAULT_POINTS`` is
dead chaos coverage (the injector refuses to arm unknown names), and
one missing from ``docs/RESILIENCE.md`` is a failure mode nobody can
reason about during an incident.  This test greps ``src/`` so the
registry, the call sites and the docs can never drift apart silently.
"""

import pathlib
import re

import pytest

from repro.resilience import FAULT_POINTS

pytestmark = pytest.mark.durability

REPO = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO / "src"
DOC = REPO / "docs" / "RESILIENCE.md"

#: Matches the literal-name call form, including a name on the next
#: line after a black-style wrap.
_CALL = re.compile(r'fault_check\(\s*"(?P<name>[^"]+)"')


def _call_sites():
    sites = {}
    for path in sorted(SRC.rglob("*.py")):
        for match in _CALL.finditer(path.read_text("utf-8")):
            sites.setdefault(match.group("name"), []).append(
                str(path.relative_to(REPO)))
    return sites


def test_every_call_site_is_registered():
    unknown = {name: paths for name, paths in _call_sites().items()
               if name not in FAULT_POINTS}
    assert not unknown, (
        f"fault_check() names not in FAULT_POINTS: {unknown} — add them "
        f"to repro.resilience.faults.FAULT_POINTS")


def test_every_registered_point_has_a_call_site():
    sites = _call_sites()
    orphaned = [name for name in FAULT_POINTS if name not in sites]
    assert not orphaned, (
        f"FAULT_POINTS entries with no fault_check() call site in src/: "
        f"{orphaned} — stale registration?")


def test_every_registered_point_is_documented():
    doc = DOC.read_text("utf-8")
    undocumented = [name for name in FAULT_POINTS
                    if f"`{name}`" not in doc]
    assert not undocumented, (
        f"FAULT_POINTS missing from docs/RESILIENCE.md: {undocumented} — "
        f"add a row to the fault-point table")


def test_fault_points_are_unique_and_sorted_by_subsystem():
    assert len(FAULT_POINTS) == len(set(FAULT_POINTS))
