"""Unit tests for the region and process taxonomies (repro.recipedb)."""

import pytest

from repro.recipedb import (CONTINENTS, COUNTRIES, PROCESSES, PROCESS_KIND,
                            REGIONS, REGION_TABLE, continent_of, countries_of,
                            locate_country, processes_of_kind,
                            validate_processes, validate_taxonomy)
from repro.recipedb.processes import BASE_PROCESSES


class TestRegionTaxonomy:
    def test_paper_cardinalities(self):
        """RecipeDB: 6 continents, 26 regions, 74 countries (Sec. III)."""
        assert len(CONTINENTS) == 6
        assert len(REGIONS) == 26
        assert len(COUNTRIES) == 74

    def test_validate_passes(self):
        validate_taxonomy()

    def test_no_duplicate_countries(self):
        assert len(COUNTRIES) == len(set(COUNTRIES))

    def test_every_region_has_countries(self):
        for region, (continent, countries) in REGION_TABLE.items():
            assert countries, f"region {region} has no countries"
            assert continent in CONTINENTS

    def test_continent_of(self):
        assert continent_of("Italian") == "Europe"
        assert continent_of("Japanese") == "Asia"
        with pytest.raises(KeyError):
            continent_of("Atlantis")

    def test_countries_of_returns_copy(self):
        countries = countries_of("French")
        countries.append("Mars")
        assert "Mars" not in countries_of("French")

    def test_locate_country_roundtrip(self):
        for region, (continent, countries) in REGION_TABLE.items():
            for country in countries:
                assert locate_country(country) == (continent, region)


class TestProcessTaxonomy:
    def test_paper_cardinality(self):
        """RecipeDB: 268 cooking processes (Sec. III)."""
        assert len(PROCESSES) == 268

    def test_validate_passes(self):
        validate_processes()

    def test_no_duplicates(self):
        assert len(PROCESSES) == len(set(PROCESSES))

    def test_paper_examples_present(self):
        # the paper names these explicitly: "heat, cook, boil, simmer, bake"
        for process in ["heat", "cook", "boil", "simmer", "bake"]:
            assert process in PROCESSES

    def test_every_process_has_kind(self):
        kinds = {"heat", "prepare", "season", "combine", "rest"}
        for process in PROCESSES:
            assert PROCESS_KIND[process] in kinds

    def test_modifier_variants_inherit_kind(self):
        assert PROCESS_KIND["slow-roast"] == PROCESS_KIND["roast"]
        assert PROCESS_KIND["finely-chop"] == PROCESS_KIND["chop"]

    def test_processes_of_kind_partition(self):
        total = sum(len(processes_of_kind(kind))
                    for kind in ("heat", "prepare", "season", "combine", "rest"))
        assert total == len(PROCESSES)

    def test_base_processes_subset(self):
        for verbs in BASE_PROCESSES.values():
            for verb in verbs:
                assert verb in PROCESSES
