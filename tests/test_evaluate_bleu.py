"""Unit tests for BLEU (repro.evaluate.bleu) against hand-computed values."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluate import brevity_penalty, corpus_bleu, ngrams, sentence_bleu


class TestNgrams:
    def test_counts(self):
        grams = ngrams("a b a b".split(), 2)
        assert grams[("a", "b")] == 2
        assert grams[("b", "a")] == 1

    def test_short_sequence_empty(self):
        assert not ngrams(["a"], 2)

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            ngrams(["a"], 0)


class TestBrevityPenalty:
    def test_no_penalty_when_longer(self):
        assert brevity_penalty(10, 8) == 1.0

    def test_penalty_when_shorter(self):
        assert brevity_penalty(8, 10) == pytest.approx(math.exp(1 - 10 / 8))

    def test_zero_candidate(self):
        assert brevity_penalty(0, 10) == 0.0


class TestSentenceBleu:
    def test_perfect_match_is_one(self):
        tokens = "the cat sat on the mat".split()
        result = sentence_bleu(tokens, [tokens], smoothing=0)
        assert result.bleu == pytest.approx(1.0)
        assert result.brevity_penalty == 1.0
        assert all(p == 1.0 for p in result.precisions)

    def test_no_overlap_is_zero(self):
        result = sentence_bleu("a b c d e".split(), ["v w x y z".split()],
                               smoothing=0)
        assert result.bleu == 0.0

    def test_hand_computed_unigram(self):
        # candidate: "the the cat", reference: "the cat sat"
        # clipped unigram matches: the(1) + cat(1) = 2 of 3
        result = sentence_bleu("the the cat".split(), ["the cat sat".split()],
                               max_n=1, smoothing=0)
        assert result.precisions[0] == pytest.approx(2 / 3)

    def test_clipping_limits_repeats(self):
        # the classic degenerate candidate: "the the the ..."
        candidate = ["the"] * 7
        reference = "the cat is on the mat".split()  # 'the' appears twice
        result = sentence_bleu(candidate, [reference], max_n=1, smoothing=0)
        assert result.precisions[0] == pytest.approx(2 / 7)

    def test_multiple_references_take_best(self):
        candidate = "the cat".split()
        refs = ["a dog".split(), "the cat".split()]
        assert sentence_bleu(candidate, refs, max_n=2,
                             smoothing=0).bleu == pytest.approx(1.0)

    def test_closest_reference_length_used(self):
        candidate = ["a"] * 5
        refs = [["a"] * 5, ["a"] * 20]
        result = sentence_bleu(candidate, refs, max_n=1, smoothing=0)
        assert result.reference_length == 5
        assert result.brevity_penalty == 1.0

    def test_float_conversion(self):
        tokens = "a b c d".split()
        assert float(sentence_bleu(tokens, [tokens])) == pytest.approx(1.0)


class TestSmoothing:
    CAND = "the cat sat".split()     # no 4-gram possible matches
    REF = ["the cat slept well today".split()]

    def test_method0_zero_on_missing_order(self):
        assert sentence_bleu(self.CAND, self.REF, smoothing=0).bleu == 0.0

    def test_method1_positive(self):
        assert sentence_bleu(self.CAND, self.REF, smoothing=1).bleu > 0.0

    def test_method2_positive(self):
        assert sentence_bleu(self.CAND, self.REF, smoothing=2).bleu > 0.0

    def test_method3_positive(self):
        assert sentence_bleu(self.CAND, self.REF, smoothing=3).bleu > 0.0

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            sentence_bleu(self.CAND, self.REF, smoothing=9)

    def test_smoothing_only_affects_zero_counts(self):
        tokens = "a b c d e f".split()
        exact0 = sentence_bleu(tokens, [tokens], smoothing=0).bleu
        exact1 = sentence_bleu(tokens, [tokens], smoothing=1).bleu
        assert exact0 == pytest.approx(exact1)


class TestCorpusBleu:
    def test_not_mean_of_sentence_bleu(self):
        """Corpus BLEU pools counts; differs from averaging sentences."""
        c1, r1 = "a b c d".split(), ["a b c d".split()]
        c2, r2 = "x y".split(), ["p q".split()]
        corpus = corpus_bleu([c1, c2], [r1, r2], smoothing=1).bleu
        mean_sent = (sentence_bleu(c1, r1, smoothing=1).bleu
                     + sentence_bleu(c2, r2, smoothing=1).bleu) / 2
        assert corpus != pytest.approx(mean_sent)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            corpus_bleu([["a"]], [])

    def test_empty_corpus_raises(self):
        with pytest.raises(ValueError):
            corpus_bleu([], [])

    def test_missing_reference_raises(self):
        with pytest.raises(ValueError):
            corpus_bleu([["a"]], [[]])

    def test_weights_length_checked(self):
        with pytest.raises(ValueError):
            corpus_bleu([["a", "b"]], [[["a", "b"]]], max_n=4,
                        weights=(0.5, 0.5))

    def test_bleu1_weights(self):
        result = corpus_bleu(["the cat".split()], [["the dog".split()]],
                             max_n=1, smoothing=0)
        assert result.bleu == pytest.approx(0.5)

    def test_result_lengths_accumulate(self):
        result = corpus_bleu([["a"] * 3, ["b"] * 4],
                             [[["a"] * 3], [["b"] * 5]], smoothing=1)
        assert result.candidate_length == 7
        assert result.reference_length == 8


class TestBleuProperties:
    @given(st.lists(st.sampled_from("abcdef"), min_size=4, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_self_bleu_is_one(self, tokens):
        assert sentence_bleu(tokens, [tokens],
                             smoothing=0).bleu == pytest.approx(1.0)

    @given(st.lists(st.sampled_from("ab"), min_size=4, max_size=15),
           st.lists(st.sampled_from("ab"), min_size=4, max_size=15))
    @settings(max_examples=40, deadline=None)
    def test_bounded(self, cand, ref):
        bleu = sentence_bleu(cand, [ref], smoothing=1).bleu
        assert 0.0 <= bleu <= 1.0 + 1e-9

    @given(st.lists(st.sampled_from("abcd"), min_size=5, max_size=15))
    @settings(max_examples=30, deadline=None)
    def test_truncation_reduces_or_equals(self, tokens):
        """A truncated candidate never beats the full self-match."""
        full = sentence_bleu(tokens, [tokens], smoothing=1).bleu
        cut = sentence_bleu(tokens[:-2] if len(tokens) > 6 else tokens,
                            [tokens], smoothing=1).bleu
        assert cut <= full + 1e-9
