"""Unit tests for span tracing (repro.obs.trace)."""

import threading

import pytest

from repro.obs import ManualClock, NullTracer, Tracer, get_tracer, set_tracer


@pytest.fixture
def clock():
    return ManualClock()


@pytest.fixture
def tracer(clock):
    return Tracer(clock=clock)


class TestSpans:
    def test_durations_from_injected_clock(self, tracer, clock):
        with tracer.span("outer"):
            clock.advance(1.0)
            with tracer.span("inner"):
                clock.advance(0.25)
            clock.advance(0.5)
        (root,) = tracer.roots()
        assert root.name == "outer"
        assert root.duration == pytest.approx(1.75)
        assert root.children[0].name == "inner"
        assert root.children[0].duration == pytest.approx(0.25)

    def test_attrs_recorded(self, tracer):
        with tracer.span("generate", strategy="beam") as span:
            assert span.attrs == {"strategy": "beam"}

    def test_open_span_duration_zero(self, tracer, clock):
        with tracer.span("open") as span:
            clock.advance(9.0)
            assert span.duration == 0.0

    def test_siblings_not_nested(self, tracer):
        with tracer.span("root"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        (root,) = tracer.roots()
        assert [c.name for c in root.children] == ["a", "b"]
        assert root.children[0].children == []

    def test_current(self, tracer):
        assert tracer.current() is None
        with tracer.span("x") as span:
            assert tracer.current() is span
        assert tracer.current() is None

    def test_exception_recorded_and_propagates(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("kaput")
        (root,) = tracer.roots()
        assert root.error == "RuntimeError: kaput"
        assert root.end is not None

    def test_find(self, tracer):
        with tracer.span("generate"):
            with tracer.span("decode"):
                for _ in range(3):
                    with tracer.span("token"):
                        pass
        (root,) = tracer.roots()
        assert len(root.find("token")) == 3
        assert root.find("generate") == [root]

    def test_to_dict_and_tree(self, tracer, clock):
        with tracer.span("outer", k="v"):
            clock.advance(0.5)
            with tracer.span("inner"):
                pass
        payload = tracer.to_dict()
        assert payload["dropped"] == 0
        (span,) = payload["spans"]
        assert span["name"] == "outer"
        assert span["attrs"] == {"k": "v"}
        assert span["duration_seconds"] == pytest.approx(0.5)
        assert span["children"][0]["name"] == "inner"
        text = tracer.roots()[0].tree()
        assert "outer (0.500000s)" in text
        assert "  inner" in text


class TestTracerBounds:
    def test_ring_bound(self, clock):
        tracer = Tracer(clock=clock, max_roots=5)
        for i in range(12):
            with tracer.span(f"s{i}"):
                pass
        roots = tracer.roots()
        assert len(roots) == 5
        assert [r.name for r in roots] == [f"s{i}" for i in range(7, 12)]
        assert tracer.dropped == 7

    def test_invalid_max_roots(self):
        with pytest.raises(ValueError):
            Tracer(max_roots=0)

    def test_reset(self, tracer):
        with tracer.span("x"):
            pass
        tracer.reset()
        assert tracer.roots() == []
        assert tracer.dropped == 0

    def test_threads_get_independent_stacks(self, tracer):
        errors = []

        def worker(name):
            try:
                with tracer.span(name):
                    with tracer.span(f"{name}-child"):
                        pass
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(f"t{i}",))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        roots = tracer.roots()
        assert len(roots) == 4
        for root in roots:
            assert len(root.children) == 1


class TestDefaultTracer:
    def test_swap_and_restore(self):
        fresh = Tracer()
        previous = set_tracer(fresh)
        try:
            assert get_tracer() is fresh
        finally:
            set_tracer(previous)
        assert get_tracer() is previous


class TestNullTracer:
    def test_keeps_nothing(self):
        tracer = NullTracer()
        with tracer.span("x", a=1):
            with tracer.span("y"):
                pass
        assert tracer.roots() == []
        assert tracer.to_dict()["spans"] == []
