"""Chaos: supervisor restart with int8 kernels + retrieval together.

The recovery path each subsystem tests alone composes: when the
supervised engine crashes under a backend running ``--kernels int8``
AND ``--retrieval`` at once, the replacement engine must re-attach the
frozen quantized weights (the fleet-shared model object), the retrieval
surface must keep serving, and post-recovery generation must be
bit-identical to pre-crash output — plus the warm spill/journal paths
must still engage on the eventual clean stop.
"""

import json
import time

import pytest

from repro.core import PipelineConfig, Ratatouille
from repro.obs import MetricsRegistry
from repro.resilience import (FaultInjector, FaultSpec, ResilienceConfig,
                              inject_faults)
from repro.training import TrainingConfig
from repro.webapp import Request, create_backend

pytestmark = [pytest.mark.chaos, pytest.mark.durability]

PAYLOAD = {"ingredients": ["garlic", "chicken"], "strategy": "greedy",
           "max_new_tokens": 8, "seed": 0}


@pytest.fixture(scope="module")
def pipeline():
    # Own pipeline: create_backend(kernels=...) freezes this model's
    # weights, which must not leak into other test modules' fixtures.
    config = PipelineConfig(
        model_name="distilgpt2",
        training=TrainingConfig(max_steps=20, batch_size=4,
                                eval_every=10**9))
    return Ratatouille.quickstart(model_name="distilgpt2", num_recipes=30,
                                  seed=0, config=config)


def _post(app, path, payload):
    return app.dispatch(Request(method="POST", path=path, query={},
                                headers={},
                                body=json.dumps(payload).encode("utf-8")))


def _body(response):
    return json.loads(response.body.decode("utf-8"))


def _wait_for(predicate, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return predicate()


def test_supervised_restart_with_kernels_and_retrieval(pipeline, tmp_path):
    registry = MetricsRegistry()
    index = pipeline.build_retrieval_index(registry=registry)
    app = create_backend(
        pipeline, registry=registry,
        resilience=ResilienceConfig(supervise=True, max_restarts=3,
                                    restart_backoff_seconds=0.01),
        kernels="int8", retrieval_index=index,
        journal_dir=tmp_path / "journal", spill_dir=tmp_path / "spill")
    try:
        assert pipeline.model.kernels is not None  # int8 path attached

        baseline = _body(_post(app, "/api/generate", PAYLOAD))
        search = _body(_post(app, "/api/search",
                             {"query": "garlic chicken", "k": 3}))
        assert len(search["hits"]) == 3

        crashed_engine = app.engine.engine
        injector = FaultInjector(
            {"prefix_cache.get": FaultSpec(schedule={0})})
        with inject_faults(injector):
            response = _post(app, "/api/generate", PAYLOAD)
            assert response.status >= 500  # the crash resolved, loudly
            assert _wait_for(lambda: app.engine.restarts == 1)
        assert _wait_for(lambda: app.engine.state == "serving")
        assert app.engine.engine is not crashed_engine

        # The replacement engine serves the same frozen int8 weights:
        # recovered output is bit-identical to pre-crash output.
        recovered = _body(_post(app, "/api/generate", PAYLOAD))
        for field in ("title", "ingredients", "instructions"):
            assert recovered[field] == baseline[field]
        assert pipeline.model.kernels is not None

        # The retrieval index survived the engine bounce.
        again = _body(_post(app, "/api/search",
                            {"query": "garlic chicken", "k": 3}))
        assert ([hit["doc_id"] for hit in again["hits"]]
                == [hit["doc_id"] for hit in search["hits"]])

        # Async + journal still function after the restart.
        job = _body(_post(app, "/api/generate_async", PAYLOAD))
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            status = _body(app.dispatch(Request(
                method="GET", path="/api/job",
                query={"id": [job["job_id"]]}, headers={}, body=b"")))
            if status.get("status") in ("done", "failed"):
                break
            time.sleep(0.02)
        assert status["status"] == "done"
    finally:
        summary = app.shutdown_gracefully(deadline_seconds=30.0)
    # The clean stop of the *replacement* engine still spilled warm
    # state and compacted the journal.
    assert summary["spilled"] is True
    assert summary["journal"]["rotations"] == 1


def test_restart_preserves_quantized_weight_sharing(pipeline, tmp_path):
    registry = MetricsRegistry()
    app = create_backend(
        pipeline, registry=registry,
        resilience=ResilienceConfig(supervise=True, max_restarts=2,
                                    restart_backoff_seconds=0.01),
        kernels="int8", journal_dir=tmp_path / "journal")
    try:
        store_before = pipeline.model.kernels.store
        injector = FaultInjector(
            {"prefix_cache.get": FaultSpec(schedule={0})})
        with inject_faults(injector):
            _post(app, "/api/generate", PAYLOAD)
            assert _wait_for(lambda: app.engine.restarts == 1)
        assert _wait_for(lambda: app.engine.state == "serving")
        # The replacement did not re-quantize: one shared weight store.
        assert pipeline.model.kernels.store is store_before
    finally:
        app.shutdown_gracefully()
