"""Unit tests for the tagged format (repro.preprocess.formatting)."""

import pytest

from repro.preprocess import (INGR_END, INGR_START, INSTR_END, INSTR_START,
                              NEXT_INGR, NEXT_INSTR, RECIPE_END, RECIPE_START,
                              TITLE_END, TITLE_START, format_prompt,
                              format_recipe, normalize_text, parse_recipe,
                              structure_errors)
from repro.recipedb import generate_corpus


@pytest.fixture(scope="module")
def recipe():
    return generate_corpus(1, seed=42)[0]


class TestNormalize:
    def test_lowercases(self):
        assert normalize_text("Mix WELL") == "mix well"

    def test_collapses_whitespace(self):
        assert normalize_text("a   b\t c\n d") == "a b c d"

    def test_strips(self):
        assert normalize_text("  x  ") == "x"


class TestFormatRecipe:
    def test_section_order_ingredients_first(self, recipe):
        text = format_recipe(recipe)
        assert text.index(INGR_START) < text.index(INSTR_START) \
               < text.index(TITLE_START)
        assert text.startswith(RECIPE_START)
        assert text.endswith(RECIPE_END)

    def test_single_line(self, recipe):
        assert "\n" not in format_recipe(recipe)

    def test_lowercase(self, recipe):
        text = format_recipe(recipe)
        # only the tags contain uppercase
        stripped = text
        for tag in [RECIPE_START, RECIPE_END, TITLE_START, TITLE_END,
                    INGR_START, INGR_END, NEXT_INGR, INSTR_START, INSTR_END,
                    NEXT_INSTR]:
            stripped = stripped.replace(tag, "")
        assert stripped == stripped.lower()

    def test_separator_counts(self, recipe):
        text = format_recipe(recipe)
        assert text.count(NEXT_INGR) == len(recipe.ingredients) - 1
        assert text.count(NEXT_INSTR) == len(recipe.instructions) - 1

    def test_no_structure_errors(self, recipe):
        assert structure_errors(format_recipe(recipe)) == []


class TestParseRoundtrip:
    def test_sections_recovered(self, recipe):
        parsed = parse_recipe(format_recipe(recipe))
        assert parsed.title == normalize_text(recipe.title)
        assert len(parsed.ingredients) == len(recipe.ingredients)
        assert len(parsed.instructions) == len(recipe.instructions)
        assert parsed.is_valid()

    def test_ingredient_content_preserved(self, recipe):
        parsed = parse_recipe(format_recipe(recipe))
        for line, item in zip(parsed.ingredients, recipe.ingredients):
            assert item.ingredient.name in line

    def test_empty_text(self):
        parsed = parse_recipe("")
        assert not parsed.is_valid()
        assert parsed.title == ""
        assert parsed.ingredients == []

    def test_truncated_instructions_salvaged(self):
        text = (f"{RECIPE_START} {INGR_START} salt {INGR_END} "
                f"{INSTR_START} mix well . {NEXT_INSTR} bake until done")
        parsed = parse_recipe(text)
        assert parsed.instructions == ["mix well .", "bake until done"]

    def test_salvage_stops_at_recipe_end(self):
        text = (f"{INSTR_START} step one . {RECIPE_END} garbage after")
        parsed = parse_recipe(text)
        assert parsed.instructions == ["step one ."]


class TestFormatPrompt:
    def test_basic_prompt(self):
        prompt = format_prompt(["2 cup flour", "1 egg"])
        assert prompt.startswith(RECIPE_START)
        assert prompt.endswith(INSTR_START)
        assert NEXT_INGR in prompt
        assert TITLE_START not in prompt

    def test_prompt_is_training_prefix(self, recipe):
        """A prompt built from a recipe's own ingredients must be a prefix
        of its serialized training text (modulo the ingredient lines)."""
        text = format_recipe(recipe)
        ingredient_lines = [normalize_text(ri.display())
                            for ri in recipe.ingredients]
        prompt = format_prompt(ingredient_lines)
        assert text.startswith(prompt[:prompt.rfind(INSTR_START)])

    def test_with_title(self):
        prompt = format_prompt(["salt"], title="My Dish")
        assert TITLE_START in prompt
        assert "my dish" in prompt

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            format_prompt([])
        with pytest.raises(ValueError):
            format_prompt(["   "])

    def test_normalizes(self):
        prompt = format_prompt(["  2 Cup   FLOUR "])
        assert "2 cup flour" in prompt


class TestStructureErrors:
    def test_valid_has_none(self, recipe):
        assert structure_errors(format_recipe(recipe)) == []

    def test_missing_sections_reported(self):
        errors = structure_errors(f"{RECIPE_START} {RECIPE_END}")
        assert any("TITLE" in e for e in errors)
        assert any("INGR" in e for e in errors)
        assert "no ingredients" in errors

    def test_unbalanced_tags_reported(self):
        text = (f"{RECIPE_START} {INGR_START} salt {INGR_END} "
                f"{INSTR_START} mix . {INSTR_END} "
                f"{TITLE_START} dish {TITLE_END} {RECIPE_END} {RECIPE_START}")
        errors = structure_errors(text)
        assert any("unbalanced" in e for e in errors)
