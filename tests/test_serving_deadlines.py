"""Request deadlines in the serving engine.

The acceptance contract: a deadline-expired request retires mid-batch
through the same path as a stop token, so the *surviving* requests'
outputs stay bit-identical to a sequential run — and the expired
request's partial tokens are a strict prefix of what it would have
produced.
"""

import threading
import time

import numpy as np
import pytest

from repro.models import GenerationConfig, distilgpt2, generate
from repro.models.lstm import LSTMConfig, LSTMLanguageModel
from repro.obs import ManualClock, MetricsRegistry, NullRegistry, NullTracer
from repro.serving import (DeadlineExceededError, EngineConfig,
                           InferenceEngine)
from repro.serving.engine import EngineRequest

VOCAB = 32


@pytest.fixture(scope="module")
def model():
    return distilgpt2(vocab_size=VOCAB, context_length=128)


def _prompt(seed, length):
    rng = np.random.default_rng(seed)
    return [int(t) for t in rng.integers(0, VOCAB, size=length)]


def _sequential(model, prompt, config):
    return generate(model, prompt, config,
                    registry=NullRegistry(), tracer=NullTracer())


class _GatedModel(LSTMLanguageModel):
    """LSTM whose forward blocks until the test opens the gate."""

    def __init__(self):
        super().__init__(LSTMConfig(vocab_size=16, d_embed=4, d_hidden=8,
                                    num_layers=1, dropout=0.0))
        self.gate = threading.Event()
        self.entered = threading.Event()

    def next_logits(self, ids, state):
        self.entered.set()
        self.gate.wait(timeout=10)
        return super().next_logits(ids, state)


class TestQueuedExpiry:
    def test_expired_in_queue_fails_with_zero_tokens(self):
        # The engine clock is the registry's — a ManualClock makes the
        # expiry deterministic: the request is already past its budget
        # when the admission loop first sees it.
        registry = MetricsRegistry(clock=ManualClock())
        gated = _GatedModel()
        engine = InferenceEngine(gated, EngineConfig(max_batch_size=1),
                                 registry=registry)
        try:
            config = GenerationConfig(max_new_tokens=4, seed=0)
            blocker = engine.submit([1, 2], config)  # occupies the batch
            assert gated.entered.wait(timeout=10)
            doomed = engine.submit([3, 4], config, deadline_ms=50.0)
            registry.clock.advance(1.0)  # budget long gone
            gated.gate.set()
            with pytest.raises(DeadlineExceededError) as excinfo:
                doomed.result(timeout=30)
            assert excinfo.value.tokens == []
            assert excinfo.value.deadline_ms == 50.0
            assert len(blocker.result(timeout=30)) == 4
        finally:
            gated.gate.set()
            engine.stop()
        outcome = registry.counter("engine_requests_total").labels(
            outcome="deadline", strategy="plain")
        assert outcome.value == 1

    def test_submit_validates_deadline(self, model):
        with InferenceEngine(model) as engine:
            with pytest.raises(ValueError, match="deadline_ms"):
                engine.submit([1, 2], GenerationConfig(max_new_tokens=2),
                              deadline_ms=0)


class TestMidBatchRetirement:
    def test_survivors_bit_identical_and_partial_is_prefix(self, model):
        # The acceptance test: one doomed request expires mid-decode,
        # two survivors share its batch.  Whatever step the deadline
        # fires at, the survivors must equal a sequential run exactly
        # and the doomed request's tokens must be a prefix of its own
        # full decode.
        registry = MetricsRegistry(clock=ManualClock())
        survivors = [
            (_prompt(1, 5), GenerationConfig(max_new_tokens=12,
                                             strategy="sample", top_k=8,
                                             seed=3)),
            (_prompt(2, 7), GenerationConfig(max_new_tokens=10,
                                             strategy="greedy", seed=0)),
        ]
        doomed_prompt = _prompt(3, 6)
        doomed_config = GenerationConfig(max_new_tokens=200, seed=7)
        expected = [_sequential(model, p, c) for p, c in survivors]
        full_doomed = _sequential(model, doomed_prompt, doomed_config)
        with InferenceEngine(model, registry=registry) as engine:
            handles = [engine.submit(p, c) for p, c in survivors]
            doomed = engine.submit(doomed_prompt, doomed_config,
                                   deadline_ms=1000.0)
            # Let it produce at least one real token, then expire it.
            first = next(doomed.tokens(timeout=30))
            registry.clock.advance(2.0)
            with pytest.raises(DeadlineExceededError) as excinfo:
                doomed.result(timeout=30)
            partial = excinfo.value.tokens
            assert partial and partial[0] == first
            assert len(partial) < len(full_doomed)
            assert partial == full_doomed[:len(partial)]
            assert [h.result(timeout=60) for h in handles] == expected
            # The slot is free again: the engine keeps serving.
            after = engine.generate(_prompt(4, 4),
                                    GenerationConfig(max_new_tokens=3,
                                                     seed=1))
            assert len(after) == 3

    def test_no_deadline_requests_unaffected(self, model):
        prompt = _prompt(5, 8)
        config = GenerationConfig(max_new_tokens=8, seed=2)
        expected = _sequential(model, prompt, config)
        registry = MetricsRegistry(clock=ManualClock())
        with InferenceEngine(model, registry=registry) as engine:
            handle = engine.submit(prompt, config)
            registry.clock.advance(10_000.0)
            assert handle.result(timeout=60) == expected

    def test_generous_deadline_completes_normally(self, model):
        prompt = _prompt(6, 8)
        config = GenerationConfig(max_new_tokens=6, seed=4)
        expected = _sequential(model, prompt, config)
        with InferenceEngine(model) as engine:
            assert engine.generate(prompt, config,
                                   deadline_ms=600_000.0) == expected


class TestTokensTimeout:
    def test_spurious_wakeups_do_not_extend_the_wait(self):
        # Regression: tokens(timeout) used to restart its full wait on
        # every condition notify, so a stream of spurious wakeups kept
        # a caller blocked indefinitely.  The budget is now measured
        # against a monotonic deadline.
        request = EngineRequest(request_id=0, prompt_ids=[1],
                                config=GenerationConfig(max_new_tokens=4),
                                processors=(), submitted_at=0.0)
        stop = threading.Event()

        def heckle():
            while not stop.is_set():
                with request._cond:
                    request._cond.notify_all()
                time.sleep(0.02)

        thread = threading.Thread(target=heckle, daemon=True)
        thread.start()
        try:
            start = time.monotonic()
            with pytest.raises(TimeoutError):
                next(request.tokens(timeout=0.2))
            elapsed = time.monotonic() - start
            # Well under the heckler's ability to keep resetting a
            # restarted 0.2 s wait forever; generous upper bound for CI.
            assert elapsed < 2.0
        finally:
            stop.set()
            thread.join(timeout=5)

    def test_result_timeout_still_enforced(self):
        request = EngineRequest(request_id=1, prompt_ids=[1],
                                config=GenerationConfig(max_new_tokens=4),
                                processors=(), submitted_at=0.0)
        with pytest.raises(TimeoutError):
            request.result(timeout=0.05)
