"""Unit tests for the autograd engine (repro.nn.tensor)."""

import numpy as np
import pytest

from repro.nn import Tensor, no_grad, ones, zeros
from repro.nn.tensor import DEFAULT_DTYPE, _unbroadcast


def numeric_grad(f, x0, eps=1e-3):
    """Central-difference gradient of scalar-valued f at x0."""
    grad = np.zeros_like(x0, dtype=np.float64)
    for index in np.ndindex(*x0.shape):
        plus = x0.copy()
        plus[index] += eps
        minus = x0.copy()
        minus[index] -= eps
        grad[index] = (float(f(Tensor(plus)).data)
                       - float(f(Tensor(minus)).data)) / (2 * eps)
    return grad


def assert_grad_close(f, x0, atol=2e-2):
    x = Tensor(x0, requires_grad=True)
    f(x).backward()
    assert x.grad is not None
    np.testing.assert_allclose(x.grad, numeric_grad(f, x0), atol=atol)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestConstruction:
    def test_float64_downcast(self):
        t = Tensor(np.zeros(3, dtype=np.float64))
        assert t.dtype == DEFAULT_DTYPE

    def test_int_preserved(self):
        t = Tensor(np.arange(3))
        assert t.dtype.kind == "i"

    def test_shape_properties(self):
        t = Tensor(np.zeros((2, 3)))
        assert t.shape == (2, 3)
        assert t.ndim == 2
        assert t.size == 6
        assert len(t) == 2

    def test_item_scalar(self):
        assert Tensor(np.float32(2.5)).item() == pytest.approx(2.5)

    def test_zeros_ones_helpers(self):
        assert zeros((2, 2)).data.sum() == 0
        assert ones((2, 2)).data.sum() == 4

    def test_detach_breaks_graph(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = (x * 2).detach()
        assert not y.requires_grad
        assert y._backward is None


class TestArithmetic:
    def test_add(self, rng):
        a = rng.standard_normal((3, 4)).astype(np.float32)
        assert_grad_close(lambda x: (x + 2.0).sum(), a)

    def test_radd(self):
        x = Tensor([1.0], requires_grad=True)
        y = 3.0 + x
        y.backward(np.array([1.0], dtype=np.float32))
        assert x.grad[0] == pytest.approx(1.0)

    def test_sub_and_rsub(self):
        x = Tensor([2.0], requires_grad=True)
        (5.0 - x).backward(np.array([1.0], dtype=np.float32))
        assert x.grad[0] == pytest.approx(-1.0)

    def test_mul_grad(self, rng):
        a = rng.standard_normal((2, 3)).astype(np.float32)
        b = Tensor(rng.standard_normal((2, 3)).astype(np.float32))
        assert_grad_close(lambda x: (x * b).sum(), a)

    def test_div_grad(self, rng):
        a = rng.standard_normal((2, 3)).astype(np.float32) + 3.0
        b = Tensor(rng.standard_normal((2, 3)).astype(np.float32) + 3.0)
        assert_grad_close(lambda x: (x / b).sum(), a)
        assert_grad_close(lambda x: (b / x).sum(), a)

    def test_neg(self):
        x = Tensor([1.0, -2.0], requires_grad=True)
        (-x).sum().backward()
        np.testing.assert_allclose(x.grad, [-1.0, -1.0])

    def test_pow(self, rng):
        a = np.abs(rng.standard_normal((3,))).astype(np.float32) + 0.5
        assert_grad_close(lambda x: (x ** 3).sum(), a)

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_broadcast_add_grad_shape(self):
        x = Tensor(np.ones((3, 4), dtype=np.float32), requires_grad=True)
        b = Tensor(np.ones(4, dtype=np.float32), requires_grad=True)
        (x + b).sum().backward()
        assert x.grad.shape == (3, 4)
        assert b.grad.shape == (4,)
        np.testing.assert_allclose(b.grad, [3.0] * 4)

    def test_broadcast_keepdim_axis(self):
        x = Tensor(np.ones((3, 1), dtype=np.float32), requires_grad=True)
        y = Tensor(np.ones((3, 5), dtype=np.float32))
        (x * y).sum().backward()
        np.testing.assert_allclose(x.grad, [[5.0]] * 3)


class TestMatmul:
    def test_2d_grads(self, rng):
        a = rng.standard_normal((3, 4)).astype(np.float32)
        b = Tensor(rng.standard_normal((4, 5)).astype(np.float32))
        assert_grad_close(lambda x: (x @ b).sum(), a)

    def test_batched_matmul(self, rng):
        a = Tensor(rng.standard_normal((2, 3, 4)).astype(np.float32),
                   requires_grad=True)
        b = Tensor(rng.standard_normal((2, 4, 5)).astype(np.float32),
                   requires_grad=True)
        (a @ b).sum().backward()
        assert a.grad.shape == (2, 3, 4)
        assert b.grad.shape == (2, 4, 5)

    def test_broadcast_batched_matmul(self, rng):
        # (2, 3, 4) @ (4, 5): the RHS is broadcast over the batch.
        a = Tensor(rng.standard_normal((2, 3, 4)).astype(np.float32))
        b = Tensor(rng.standard_normal((4, 5)).astype(np.float32),
                   requires_grad=True)
        (a @ b).sum().backward()
        assert b.grad.shape == (4, 5)


class TestShapeOps:
    def test_reshape_roundtrip_grad(self, rng):
        a = rng.standard_normal((2, 6)).astype(np.float32)
        assert_grad_close(lambda x: (x.reshape(3, 4) * 2).sum(), a)

    def test_reshape_tuple_arg(self):
        x = Tensor(np.zeros((2, 6), dtype=np.float32))
        assert x.reshape((3, 4)).shape == (3, 4)

    def test_transpose_default_reverses(self):
        x = Tensor(np.zeros((2, 3, 4), dtype=np.float32))
        assert x.transpose().shape == (4, 3, 2)

    def test_transpose_grad(self, rng):
        a = rng.standard_normal((2, 3)).astype(np.float32)
        w = Tensor(rng.standard_normal((2, 3)).astype(np.float32))
        assert_grad_close(lambda x: (x.transpose(1, 0) * w.transpose(1, 0)).sum(), a)

    def test_swapaxes_grad(self):
        x = Tensor(np.arange(6, dtype=np.float32).reshape(2, 3),
                   requires_grad=True)
        x.swapaxes(0, 1).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3)))

    def test_getitem_slice_grad(self):
        x = Tensor(np.arange(10, dtype=np.float32), requires_grad=True)
        x[2:5].sum().backward()
        expected = np.zeros(10)
        expected[2:5] = 1.0
        np.testing.assert_allclose(x.grad, expected)

    def test_getitem_repeated_index_accumulates(self):
        x = Tensor(np.ones(4, dtype=np.float32), requires_grad=True)
        idx = np.array([1, 1, 2])
        x[idx].sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 2.0, 1.0, 0.0])


class TestReductions:
    def test_sum_axis_keepdims(self, rng):
        a = rng.standard_normal((3, 4)).astype(np.float32)
        assert_grad_close(lambda x: (x.sum(axis=1, keepdims=True) ** 2).sum(), a)

    def test_mean_matches_manual(self):
        x = Tensor(np.arange(6, dtype=np.float32).reshape(2, 3),
                   requires_grad=True)
        x.mean().backward()
        np.testing.assert_allclose(x.grad, np.full((2, 3), 1 / 6), rtol=1e-6)

    def test_mean_axis(self):
        x = Tensor(np.ones((2, 4), dtype=np.float32), requires_grad=True)
        x.mean(axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, np.full((2, 4), 0.25))

    def test_max_grad_unique(self):
        x = Tensor(np.array([[1.0, 5.0, 2.0]], dtype=np.float32),
                   requires_grad=True)
        x.max(axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.0, 1.0, 0.0]])

    def test_max_grad_ties_split(self):
        x = Tensor(np.array([[3.0, 3.0]], dtype=np.float32), requires_grad=True)
        x.max(axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.5, 0.5]])


class TestNonlinearities:
    @pytest.mark.parametrize("op", ["exp", "log", "sqrt", "tanh", "sigmoid",
                                    "relu", "gelu"])
    def test_gradient_matches_numeric(self, op, rng):
        a = np.abs(rng.standard_normal((3, 3))).astype(np.float32) + 0.5
        assert_grad_close(lambda x: getattr(x, op)().sum(), a)

    def test_relu_zero_region(self):
        x = Tensor(np.array([-1.0, 2.0], dtype=np.float32), requires_grad=True)
        x.relu().sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0])

    def test_sigmoid_range(self, rng):
        x = Tensor(rng.standard_normal(100).astype(np.float32) * 10)
        out = x.sigmoid().data
        assert out.min() >= 0.0 and out.max() <= 1.0


class TestBackward:
    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_nonscalar_needs_grad_arg(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_grad_accumulates_across_backwards(self):
        x = Tensor([1.0], requires_grad=True)
        y = x * 3
        y.backward(np.array([1.0], dtype=np.float32))
        y2 = x * 3
        y2.backward(np.array([1.0], dtype=np.float32))
        assert x.grad[0] == pytest.approx(6.0)

    def test_diamond_graph(self):
        # x feeds two paths that rejoin: grads must sum.
        x = Tensor([2.0], requires_grad=True)
        y = x * 3
        z = y + y * y
        z.backward(np.array([1.0], dtype=np.float32))
        # dz/dx = 3 + 2*(3x)*3 = 3 + 18x = 39 at x=2
        assert x.grad[0] == pytest.approx(39.0)

    def test_deep_chain_no_recursion_error(self):
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 0.001
        y.backward(np.array([1.0], dtype=np.float32))
        assert x.grad[0] == pytest.approx(1.0)

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).backward(np.array([1.0], dtype=np.float32))
        x.zero_grad()
        assert x.grad is None


class TestNoGrad:
    def test_no_graph_built(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad
        assert y._backward is None

    def test_restored_after_exception(self):
        from repro.nn import is_grad_enabled
        try:
            with no_grad():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert is_grad_enabled()

    def test_nested(self):
        from repro.nn import is_grad_enabled
        with no_grad():
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_thread_local_isolation(self):
        """Regression: concurrent no_grad in server threads must not
        disable autograd for the training thread (the flag is
        thread-local, not process-global)."""
        import threading
        from repro.nn import is_grad_enabled

        barrier = threading.Barrier(5)
        failures = []

        def worker():
            try:
                barrier.wait(timeout=5)
                for _ in range(300):
                    with no_grad():
                        x = Tensor([1.0], requires_grad=True)
                        y = x * 2
                        assert not y.requires_grad
            except Exception as exc:  # pragma: no cover
                failures.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        barrier.wait(timeout=5)
        # main thread keeps training while workers toggle the flag
        for _ in range(300):
            x = Tensor([1.0], requires_grad=True)
            y = x * 3
            assert y.requires_grad, "autograd disabled by another thread"
        for thread in threads:
            thread.join()
        assert not failures
        assert is_grad_enabled()


class TestUnbroadcast:
    def test_identity(self):
        g = np.ones((2, 3))
        assert _unbroadcast(g, (2, 3)) is g

    def test_leading_axes_summed(self):
        g = np.ones((5, 2, 3))
        assert _unbroadcast(g, (2, 3)).shape == (2, 3)
        np.testing.assert_allclose(_unbroadcast(g, (2, 3)), np.full((2, 3), 5.0))

    def test_size_one_axes_summed(self):
        g = np.ones((2, 3))
        np.testing.assert_allclose(_unbroadcast(g, (2, 1)), [[3.0], [3.0]])

    def test_scalar_target(self):
        g = np.ones((4, 4))
        assert _unbroadcast(g, ()) == pytest.approx(16.0)
