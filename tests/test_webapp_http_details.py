"""HTTP-level details of the web framework: CORS, preflight, errors.

The decoupled frontend lives on a different origin than the backend
(the paper's microservice split), so CORS must actually work at the
wire level — these tests check raw headers, not just handler logic.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.webapp import App, Request, Response, Server


@pytest.fixture(scope="module")
def server():
    app = App(name="cors-test")

    @app.route("/echo", methods=("GET", "POST"))
    def echo(request: Request) -> Response:
        if request.method == "POST":
            return Response.json({"got": request.json()})
        return Response.json({"query": {k: v for k, v in request.query.items()}})

    with Server(app) as running:
        yield running


def _request(url, method="GET", data=None):
    payload = json.dumps(data).encode() if data is not None else None
    req = urllib.request.Request(
        url, data=payload, method=method,
        headers={"Content-Type": "application/json"} if payload else {})
    return urllib.request.urlopen(req, timeout=5)


class TestCors:
    def test_cors_header_on_get(self, server):
        with _request(f"{server.url}/echo") as response:
            assert response.headers["Access-Control-Allow-Origin"] == "*"

    def test_preflight_options(self, server):
        req = urllib.request.Request(f"{server.url}/echo", method="OPTIONS")
        with urllib.request.urlopen(req, timeout=5) as response:
            assert response.status == 204
            allow = response.headers["Access-Control-Allow-Methods"]
            assert "POST" in allow

    def test_cors_header_on_error_responses(self, server):
        try:
            _request(f"{server.url}/missing")
        except urllib.error.HTTPError as exc:
            assert exc.headers["Access-Control-Allow-Origin"] == "*"
            assert exc.code == 404
        else:  # pragma: no cover
            pytest.fail("expected 404")


class TestWire:
    def test_query_string_parsing(self, server):
        with _request(f"{server.url}/echo?a=1&a=2&b=x") as response:
            payload = json.loads(response.read())
        assert payload["query"]["a"] == ["1", "2"]
        assert payload["query"]["b"] == ["x"]

    def test_post_body_roundtrip(self, server):
        with _request(f"{server.url}/echo", method="POST",
                      data={"n": 42, "text": "déjà vu"}) as response:
            payload = json.loads(response.read())
        assert payload["got"] == {"n": 42, "text": "déjà vu"}

    def test_content_length_and_type(self, server):
        with _request(f"{server.url}/echo") as response:
            body = response.read()
            assert int(response.headers["Content-Length"]) == len(body)
            assert response.headers["Content-Type"] == "application/json"

    def test_invalid_json_body_is_400(self, server):
        req = urllib.request.Request(
            f"{server.url}/echo", data=b"{not json", method="POST",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(req, timeout=5)
        assert exc.value.code == 400

    def test_port_zero_assigns_free_port(self):
        a = Server(App()).start()
        b = Server(App()).start()
        try:
            assert a.port != b.port
            assert a.port > 0
        finally:
            a.stop()
            b.stop()
