"""Observability overhead gate (slow tier).

Runs ``benchmarks/run_obs_overhead.py`` — the fully instrumented
decode path (metrics + tracing) must stay within the overhead budget
of the uninstrumented one, best-of-N with GC paused.  Excluded from
the tier-1 default run; invoke with ``pytest -m slow``.
"""

import pathlib
import sys

import pytest

pytestmark = pytest.mark.slow

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent
                       / "benchmarks"))

import run_obs_overhead  # noqa: E402


def test_obs_overhead_within_budget():
    assert run_obs_overhead.main([]) == 0
