"""Unit tests for perplexity, diversity, structure, report (repro.evaluate)."""

import math

import numpy as np
import pytest

from repro.evaluate import (EvaluationReport, ModelEvaluation, bits_per_token,
                            content_words, corpus_novelty, distinct_n,
                            novelty, perplexity, score_structure, self_bleu,
                            validity_rate)
from repro.models.lstm import LSTMConfig, LSTMLanguageModel
from repro.preprocess import format_prompt, format_recipe, preprocess
from repro.recipedb import generate_corpus
from repro.tokenizers import WordTokenizer
from repro.training import LMDataset


@pytest.fixture(scope="module")
def setup():
    texts, _ = preprocess(generate_corpus(15, seed=19))
    tokenizer = WordTokenizer(texts)
    dataset = LMDataset(texts, tokenizer, seq_len=32)
    model = LSTMLanguageModel(LSTMConfig(vocab_size=tokenizer.vocab_size,
                                         d_embed=8, d_hidden=16,
                                         num_layers=1, dropout=0.0))
    return model, dataset, tokenizer


class TestPerplexity:
    def test_untrained_near_uniform(self, setup):
        model, dataset, tokenizer = setup
        ppl = perplexity(model, dataset, max_batches=3)
        # untrained model ~ uniform over vocab
        assert 0.2 * tokenizer.vocab_size < ppl < 5 * tokenizer.vocab_size

    def test_bits_per_token_is_log2(self, setup):
        model, dataset, _ = setup
        ppl = perplexity(model, dataset, max_batches=2)
        bits = bits_per_token(model, dataset, max_batches=2)
        assert bits == pytest.approx(math.log2(ppl), rel=1e-6)

    def test_positive(self, setup):
        model, dataset, _ = setup
        assert perplexity(model, dataset, max_batches=1) > 1.0


class TestDistinctN:
    def test_all_unique(self):
        gens = [["a", "b", "c", "d"]]
        assert distinct_n(gens, 2) == 1.0

    def test_fully_repetitive(self):
        gens = [["a"] * 20]
        assert distinct_n(gens, 2) == pytest.approx(1 / 19)

    def test_pools_across_generations(self):
        gens = [["a", "b"], ["a", "b"]]
        assert distinct_n(gens, 2) == pytest.approx(0.5)

    def test_empty(self):
        assert distinct_n([[]], 2) == 0.0


class TestSelfBleu:
    def test_identical_generations_high(self):
        gens = [["the", "cat", "sat", "down"]] * 3
        assert self_bleu(gens) == pytest.approx(1.0)

    def test_disjoint_generations_low(self):
        gens = [list("abcde"), list("fghij"), list("klmno")]
        assert self_bleu(gens) < 0.2

    def test_single_generation_zero(self):
        assert self_bleu([["a", "b"]]) == 0.0


class TestNovelty:
    def test_copy_has_zero_novelty(self):
        recipe = ["mix", "the", "flour", "and", "bake", "well"]
        assert novelty(recipe, [recipe]) == 0.0

    def test_unseen_has_full_novelty(self):
        gen = ["x1", "x2", "x3", "x4", "x5"]
        corpus = [["a", "b", "c", "d", "e"]]
        assert novelty(gen, corpus) == 1.0

    def test_short_generation_neutral(self):
        assert novelty(["a"], [["a", "b", "c", "d"]], n=4) == 1.0

    def test_worst_case_over_corpus(self):
        gen = list("abcdef")
        corpus = [list("zzzzzz"), list("abcdef")]  # second is exact copy
        assert novelty(gen, corpus) == 0.0

    def test_corpus_novelty_mean(self):
        gens = [list("abcde"), list("vwxyz")]
        corpus = [list("abcde")]
        assert corpus_novelty(gens, corpus) == pytest.approx(0.5)

    def test_corpus_novelty_empty_raises(self):
        with pytest.raises(ValueError):
            corpus_novelty([], [["a"]])


class TestStructureScore:
    def test_valid_generated_recipe(self):
        recipe = generate_corpus(1, seed=23)[0]
        score = score_structure(format_recipe(recipe))
        assert score.is_valid
        assert score.num_ingredients == len(recipe.ingredients)
        assert score.num_instructions == len(recipe.instructions)

    def test_prompt_only_invalid(self):
        prompt = format_prompt(["2 cup flour"])
        score = score_structure(prompt)
        assert not score.is_valid
        assert score.errors

    def test_ingredient_coverage(self):
        recipe = generate_corpus(1, seed=23)[0]
        text = format_recipe(recipe)
        # prompt ingredient that IS used in instructions
        used = recipe.instructions[0].text.split()[-3]
        score = score_structure(text, prompt_ingredients=[recipe.ingredients[0].ingredient.name])
        assert 0.0 <= score.ingredient_coverage <= 1.0

    def test_coverage_zero_for_unused(self):
        recipe = generate_corpus(1, seed=23)[0]
        score = score_structure(format_recipe(recipe),
                                prompt_ingredients=["plutonium rods"])
        assert score.ingredient_coverage == 0.0

    def test_content_words_strips_stopwords_and_variants(self):
        words = content_words("2 cups of the Fresh Basil, chopped")
        assert "basil" in words
        assert "the" not in words
        assert "fresh" not in words
        assert "2" not in words

    def test_validity_rate(self):
        recipe = generate_corpus(1, seed=23)[0]
        good = format_recipe(recipe)
        assert validity_rate([good, "garbage"]) == 0.5
        with pytest.raises(ValueError):
            validity_rate([])


class TestReport:
    def test_table_rendering(self):
        report = EvaluationReport(title="Table I")
        report.add(ModelEvaluation(model_name="Char-level LSTM", bleu=0.347))
        report.add(ModelEvaluation(model_name="GPT-2 medium", bleu=0.806))
        table = report.to_table()
        assert "Table I" in table
        assert "0.347" in table
        assert "0.806" in table

    def test_ranking(self):
        report = EvaluationReport(title="t")
        report.add(ModelEvaluation(model_name="a", bleu=0.2))
        report.add(ModelEvaluation(model_name="b", bleu=0.9))
        assert report.ranking() == ["b", "a"]

    def test_get(self):
        report = EvaluationReport(title="t")
        report.add(ModelEvaluation(model_name="a", bleu=0.2))
        assert report.get("a").bleu == 0.2
        with pytest.raises(KeyError):
            report.get("zzz")

    def test_extra_columns_and_missing(self):
        report = EvaluationReport(title="t")
        report.add(ModelEvaluation(model_name="a", bleu=0.5, params=1000,
                                   extra={"speed": 2.5}))
        table = report.to_table(columns=("bleu", "params", "speed", "novelty"))
        assert "1000" in table
        assert "2.500" in table
        assert "-" in table  # novelty missing
