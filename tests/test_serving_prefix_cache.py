"""Prefix KV-cache trie: unit tests + Hypothesis LRU/byte invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serving import PrefixCache


class TestLookupSemantics:
    def test_exact_roundtrip(self):
        cache = PrefixCache(max_bytes=1000)
        assert cache.insert([1, 2, 3], "abc", nbytes=10)
        assert cache.lookup([1, 2, 3]) == (3, "abc")

    def test_deepest_prefix_wins(self):
        cache = PrefixCache(max_bytes=1000)
        cache.insert([1], "a", nbytes=1)
        cache.insert([1, 2], "ab", nbytes=1)
        cache.insert([1, 2, 3], "abc", nbytes=1)
        assert cache.lookup([1, 2, 3, 4, 5]) == (3, "abc")
        assert cache.lookup([1, 2, 9]) == (2, "ab")
        assert cache.lookup([1, 9]) == (1, "a")

    def test_miss_on_divergent_first_token(self):
        cache = PrefixCache(max_bytes=1000)
        cache.insert([1, 2], "ab", nbytes=1)
        assert cache.lookup([2, 1]) == (0, None)
        assert cache.stats.misses == 1

    def test_chunk_eligibility_gates_partial_depths(self):
        # Snapshots stored off the chunk grid are only usable for an
        # exact whole-query match — resuming prefill from them would
        # chunk at different absolute boundaries than a cold run.
        cache = PrefixCache(max_bytes=1000, chunk_size=4)
        cache.insert([1, 2, 3, 4, 5, 6], "depth6", nbytes=1)
        cache.insert([1, 2, 3, 4], "depth4", nbytes=1)
        assert cache.lookup([1, 2, 3, 4, 5, 6]) == (6, "depth6")
        assert cache.lookup([1, 2, 3, 4, 5, 6, 7]) == (4, "depth4")
        assert cache.lookup([1, 2, 3, 4, 5]) == (4, "depth4")

    def test_update_existing_key_replaces_value_and_bytes(self):
        cache = PrefixCache(max_bytes=100)
        cache.insert([1, 2], "old", nbytes=60)
        cache.insert([1, 2], "new", nbytes=30)
        assert cache.lookup([1, 2]) == (2, "new")
        assert cache.stats.bytes == 30
        assert cache.stats.entries == 1


class TestBudget:
    def test_oversized_entry_rejected(self):
        cache = PrefixCache(max_bytes=10)
        assert not cache.insert([1], "big", nbytes=11)
        assert cache.lookup([1]) == (0, None)
        assert cache.stats.rejected == 1
        assert cache.stats.bytes == 0

    def test_lru_eviction_order(self):
        cache = PrefixCache(max_bytes=30)
        cache.insert([1], "a", nbytes=10)
        cache.insert([2], "b", nbytes=10)
        cache.insert([3], "c", nbytes=10)
        cache.lookup([1])  # refresh [1]; [2] becomes LRU
        cache.insert([4], "d", nbytes=10)
        assert cache.lookup([2]) == (0, None)
        assert cache.lookup([1]) == (1, "a")
        assert cache.lookup([4]) == (1, "d")
        assert cache.stats.evictions == 1

    def test_eviction_prunes_trie_nodes(self):
        cache = PrefixCache(max_bytes=10)
        cache.insert([1, 2, 3], "a", nbytes=10)
        cache.insert([4, 5], "b", nbytes=10)  # evicts [1,2,3]
        assert list(cache._root.children) == [4]

    def test_clear(self):
        cache = PrefixCache(max_bytes=100)
        cache.insert([1, 2], "a", nbytes=10)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.bytes == 0
        assert cache.lookup([1, 2]) == (0, None)

    def test_contains(self):
        cache = PrefixCache(max_bytes=100)
        cache.insert([7, 8], "x", nbytes=1)
        assert [7, 8] in cache
        assert [7] not in cache

    def test_stats_as_dict_and_locked_snapshot(self):
        cache = PrefixCache(max_bytes=100)
        cache.insert([1, 2], "a", nbytes=10)
        cache.lookup([1, 2])
        cache.lookup([9])
        expected = {"hits": 1, "misses": 1, "evictions": 0, "rejected": 0,
                    "hit_tokens": 2, "lookup_tokens": 3, "bytes": 10,
                    "entries": 1, "hit_rate": 0.5,
                    "hit_token_rate": 2 / 3}
        assert cache.stats.as_dict() == expected
        # The locked variant reads under the cache lock — same content,
        # atomic with respect to concurrent insert/lookup/evict.
        assert cache.stats_snapshot() == expected
        # Back-compat alias for callers that predate as_dict().
        assert cache.stats.snapshot() == expected

    def test_stats_snapshot_is_atomic_under_writers(self):
        import threading

        cache = PrefixCache(max_bytes=10_000)
        stop = threading.Event()

        def churn():
            i = 0
            while not stop.is_set():
                cache.insert([i % 50, 1], "v", nbytes=7)
                cache.lookup([i % 50, 1])
                i += 1

        writer = threading.Thread(target=churn)
        writer.start()
        try:
            for _ in range(200):
                snap = cache.stats_snapshot()
                # Entries each cost 7 bytes: an atomic read can never
                # observe a bytes total mid-update (torn between the
                # decrement and increment of an entry replacement).
                assert snap["bytes"] == snap["entries"] * 7
        finally:
            stop.set()
            writer.join(timeout=10)

    def test_validation(self):
        with pytest.raises(ValueError):
            PrefixCache(max_bytes=-1)
        with pytest.raises(ValueError):
            PrefixCache(max_bytes=10, chunk_size=0)
        cache = PrefixCache(max_bytes=10)
        with pytest.raises(ValueError):
            cache.insert([], "empty", nbytes=1)
        with pytest.raises(ValueError):
            cache.insert([1], "neg", nbytes=-1)


_key = st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=6)
_op = st.one_of(
    st.tuples(st.just("insert"), _key, st.integers(min_value=0, max_value=40)),
    st.tuples(st.just("lookup"), _key, st.just(0)),
)


@pytest.mark.property
class TestInvariants:
    @given(budget=st.integers(min_value=0, max_value=100),
           ops=st.lists(_op, max_size=60))
    @settings(max_examples=120, deadline=None)
    def test_bytes_never_exceed_budget(self, budget, ops):
        cache = PrefixCache(max_bytes=budget, chunk_size=None)
        for kind, key, nbytes in ops:
            if kind == "insert":
                accepted = cache.insert(key, tuple(key), nbytes)
                assert accepted == (nbytes <= budget)
            else:
                depth, value = cache.lookup(key)
                if depth:
                    # Whatever comes back is a live stored prefix of
                    # the query, carrying the value stored for it.
                    assert value == tuple(key[:depth])
                    assert key[:depth] in cache
            assert cache.stats.bytes <= budget
            assert cache.stats.bytes == sum(
                entry.nbytes for entry in cache._entries.values())
            assert cache.stats.entries == len(cache._entries)

    @given(budget=st.integers(min_value=1, max_value=60),
           keys=st.lists(_key, min_size=1, max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_evicted_entries_never_returned(self, budget, keys):
        cache = PrefixCache(max_bytes=budget, chunk_size=None)
        for key in keys:
            cache.insert(key, tuple(key), nbytes=1)
        # Everything still stored must be retrievable at full depth;
        # everything evicted must not resolve to its own key.
        live = set(cache._entries)
        for key in keys:
            depth, value = cache.lookup(key)
            if tuple(key) in live:
                assert depth == len(key) and value == tuple(key)
            else:
                assert depth < len(key)

    @given(keys=st.lists(_key, min_size=1, max_size=20, unique_by=tuple))
    @settings(max_examples=60, deadline=None)
    def test_unbounded_budget_keeps_everything(self, keys):
        cache = PrefixCache(max_bytes=10**9, chunk_size=None)
        for key in keys:
            cache.insert(key, tuple(key), nbytes=100)
        for key in keys:
            assert cache.lookup(key) == (len(key), tuple(key))
        assert cache.stats.evictions == 0
