"""Tests for crawl rendering/parsing, significance tests, checkpoints."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluate import (bootstrap_interval, paired_permutation_test,
                            segment_bleu_scores)
from repro.preprocess import (crawl_corpus_to_texts, crawl_to_training_text,
                              normalize_text, parse_crawl_text,
                              structure_errors)
from repro.recipedb import generate_corpus, render_crawl_text
from repro.training import CheckpointCallback


@pytest.fixture(scope="module")
def recipes():
    return generate_corpus(30, seed=71)


class TestCrawlRendering:
    def test_deterministic(self, recipes):
        assert render_crawl_text(recipes[0], seed=1) == \
               render_crawl_text(recipes[0], seed=1)

    def test_contains_all_content(self, recipes):
        recipe = recipes[0]
        page = render_crawl_text(recipe).lower()
        for item in recipe.ingredients:
            assert item.ingredient.name.lower() in page
        assert recipe.title.lower() in page

    def test_multiline(self, recipes):
        page = render_crawl_text(recipes[0])
        assert page.count("\n") > len(recipes[0].ingredients)


class TestCrawlParsing:
    def test_roundtrip_section_counts(self, recipes):
        for recipe in recipes:
            page = render_crawl_text(recipe)
            parsed = parse_crawl_text(page)
            assert parsed.is_valid(), page[:200]
            assert len(parsed.ingredients) == len(recipe.ingredients)
            assert len(parsed.instructions) == len(recipe.instructions)

    def test_roundtrip_title(self, recipes):
        for recipe in recipes[:10]:
            page = render_crawl_text(recipe)
            parsed = parse_crawl_text(page)
            assert parsed.title == normalize_text(recipe.title)

    def test_bullets_and_numbering_stripped(self):
        page = ("My Dish\n\nIngredients:\n- 2 cup flour\n* 1 egg\n\n"
                "Directions\n1. mix well .\n2. bake .")
        parsed = parse_crawl_text(page)
        assert parsed.ingredients == ["2 cup flour", "1 egg"]
        assert parsed.instructions == ["mix well .", "bake ."]

    def test_metadata_and_boilerplate_dropped(self):
        page = ("Dish\nServes 4   |   30 min\n\nIngredients\nsalt\n\n"
                "Method\nmix .\n\nRecipe saved from the web — enjoy!!")
        parsed = parse_crawl_text(page)
        assert parsed.ingredients == ["salt"]
        assert parsed.instructions == ["mix ."]

    def test_unusable_page_returns_none(self):
        assert crawl_to_training_text("just some prose, no recipe") is None

    def test_crawl_to_training_text_is_valid_tagged(self, recipes):
        page = render_crawl_text(recipes[0])
        tagged = crawl_to_training_text(page)
        assert tagged is not None
        assert structure_errors(tagged) == []
        assert "<QTY_" in tagged or "<NUM_" in tagged  # numbers rewritten

    def test_corpus_conversion_counts(self, recipes):
        pages = [render_crawl_text(r) for r in recipes] + ["garbage page"]
        texts, dropped = crawl_corpus_to_texts(pages)
        assert len(texts) == len(recipes)
        assert dropped == 1


class TestBootstrap:
    def test_interval_contains_estimate(self):
        rng = np.random.default_rng(0)
        scores = rng.normal(0.4, 0.1, size=50)
        result = bootstrap_interval(scores, seed=1)
        assert result.lower <= result.estimate <= result.upper
        assert result.estimate == pytest.approx(scores.mean())

    def test_interval_narrows_with_more_data(self):
        rng = np.random.default_rng(0)
        small = bootstrap_interval(rng.normal(0.5, 0.1, 10), seed=1)
        large = bootstrap_interval(rng.normal(0.5, 0.1, 500), seed=1)
        assert (large.upper - large.lower) < (small.upper - small.lower)

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_interval([0.5])
        with pytest.raises(ValueError):
            bootstrap_interval([0.1, 0.2], confidence=1.5)
        with pytest.raises(ValueError):
            bootstrap_interval([0.1, 0.2], resamples=5)

    def test_str_rendering(self):
        text = str(bootstrap_interval([0.3, 0.4, 0.5], seed=0))
        assert "CI" in text


class TestPermutationTest:
    def test_identical_systems_not_significant(self):
        scores = np.random.default_rng(0).random(40)
        result = paired_permutation_test(scores, scores, permutations=200)
        assert result.p_value > 0.9
        assert not result.significant()

    def test_clearly_different_systems_significant(self):
        rng = np.random.default_rng(1)
        a = rng.normal(0.6, 0.05, size=40)
        b = rng.normal(0.3, 0.05, size=40)
        result = paired_permutation_test(a, b, permutations=500)
        assert result.significant(0.05)
        assert result.observed_difference == pytest.approx(
            float(a.mean() - b.mean()))

    def test_validation(self):
        with pytest.raises(ValueError):
            paired_permutation_test([1.0], [1.0])
        with pytest.raises(ValueError):
            paired_permutation_test([1, 2], [1, 2, 3])
        with pytest.raises(ValueError):
            paired_permutation_test([1, 2], [1, 2], permutations=10)

    @given(st.lists(st.floats(0, 1), min_size=5, max_size=20))
    @settings(max_examples=20, deadline=None)
    def test_p_value_bounds_property(self, scores):
        result = paired_permutation_test(scores, list(reversed(scores)),
                                         permutations=100)
        assert 0.0 < result.p_value <= 1.0


class TestSegmentBleu:
    def test_vector_shape_and_values(self):
        cands = [list("abcd"), list("wxyz")]
        refs = [[list("abcd")], [list("abcd")]]
        scores = segment_bleu_scores(cands, refs)
        assert scores.shape == (2,)
        assert scores[0] > scores[1]

    def test_alignment_check(self):
        with pytest.raises(ValueError):
            segment_bleu_scores([list("ab")], [])


class TestCheckpointCallback:
    def test_periodic_and_best_checkpoints(self, tmp_path):
        from repro.core import Ratatouille
        from repro.core.checkpoints import load_checkpoint
        from repro.preprocess import preprocess
        from repro.training import (LMDataset, Trainer, TrainingConfig)
        from repro.core.registry import get_spec

        texts, _ = preprocess(generate_corpus(15, seed=5))
        spec = get_spec("distilgpt2")
        tokenizer = spec.build_tokenizer(texts)
        model = spec.build_model(tokenizer.vocab_size, 0)
        dataset = LMDataset(texts, tokenizer, seq_len=32)
        callback = CheckpointCallback(model, tokenizer, tmp_path / "ckpts",
                                      every=10)
        trainer = Trainer(model, TrainingConfig(max_steps=25, batch_size=4,
                                                eval_every=10,
                                                eval_batches=1),
                          callbacks=[callback])
        trainer.train(dataset, val_dataset=dataset)
        assert (tmp_path / "ckpts" / "step-10").exists()
        assert (tmp_path / "ckpts" / "step-20").exists()
        assert (tmp_path / "ckpts" / "best").exists()
        restored, _ = load_checkpoint(tmp_path / "ckpts" / "step-20")
        assert restored.num_parameters() == model.num_parameters()

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointCallback(None, None, tmp_path, every=0)
