"""Cluster failover + affinity gate (slow tier).

Runs ``benchmarks/run_cluster_failover.py`` — killing one of two
replicas mid-batch at concurrency 8 must lose zero requests with
bit-identical results, and the router's prefix-affinity placement must
hold the fleet's cache hit-token rate within 10% of a single engine's.
Excluded from the tier-1 default run; invoke with ``pytest -m slow``.
"""

import pathlib
import sys

import pytest

pytestmark = [pytest.mark.slow, pytest.mark.cluster]

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent
                       / "benchmarks"))

import run_cluster_failover  # noqa: E402


def test_cluster_clears_failover_and_affinity_gates():
    assert run_cluster_failover.main([]) == 0
