"""Hypothesis property tests for the fp32 inference-kernel contract.

The kernels promise: with ``mode="fp32"``, every public entry point —
full forward, chunked prefill, stacked prefill, single-step decode,
speculative verify — is **bit-identical** to the Tensor-graph path
(``docs/KERNELS.md``).  These tests hold two weight-identical models
(same init seed), one per path, and compare raw arrays with
``np.array_equal`` — no tolerance, ever — over randomized prompts,
batch shapes, chunk boundaries and decoding configs.  One long-lived
engine runs the kernel model so the managed step-parity workspace
path (buffer reuse across engine iterations) is exercised, not just
the conservative copy-out path.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import GenerationConfig, distilgpt2, generate
from repro.obs import NullRegistry, NullTracer
from repro.serving import EngineConfig, InferenceEngine

pytestmark = [pytest.mark.property, pytest.mark.kernels]

VOCAB = 24
CONTEXT = 96
# Weight-identical twins: same seed, different forward paths.
TENSOR_MODEL = distilgpt2(vocab_size=VOCAB, seed=0, context_length=CONTEXT)
TENSOR_MODEL.eval()
KERNEL_MODEL = distilgpt2(vocab_size=VOCAB, seed=0, context_length=CONTEXT)
KERNEL_MODEL.enable_kernels("fp32")
# Shared across all examples on purpose: reused workspace arenas and
# accumulated prefix-cache state must never change outputs.
ENGINE = InferenceEngine(
    KERNEL_MODEL, EngineConfig(max_batch_size=4, prefix_cache_bytes=1 << 20),
    registry=NullRegistry(), tracer=NullTracer())

_token = st.integers(min_value=0, max_value=VOCAB - 1)
_prompt = st.lists(_token, min_size=1, max_size=40)
_config = st.builds(
    GenerationConfig,
    max_new_tokens=st.integers(min_value=1, max_value=12),
    strategy=st.sampled_from(["greedy", "sample"]),
    temperature=st.floats(min_value=0.5, max_value=1.5),
    top_k=st.integers(min_value=0, max_value=10),
    top_p=st.floats(min_value=0.5, max_value=1.0),
    repetition_penalty=st.sampled_from([1.0, 1.2]),
    stop_token_id=st.sampled_from([None, 3]),
    seed=st.integers(min_value=0, max_value=2 ** 20),
)


def _sequential(model, prompt, config):
    return generate(model, prompt, config,
                    registry=NullRegistry(), tracer=NullTracer())


class TestKernelsEqualTensorPath:
    @given(prompt=_prompt, config=_config)
    @settings(max_examples=20, deadline=None)
    def test_sequential_generate_is_bit_identical(self, prompt, config):
        # Chunked prefill + one-token decode steps, arbitrary sampling
        # config: the exact tokens must come out of both paths.
        assert (_sequential(KERNEL_MODEL, prompt, config)
                == _sequential(TENSOR_MODEL, prompt, config))

    @given(seed=st.integers(min_value=0, max_value=2 ** 20),
           batch=st.integers(min_value=1, max_value=3),
           time=st.integers(min_value=1, max_value=40))
    @settings(max_examples=20, deadline=None)
    def test_full_forward_is_bit_identical(self, seed, batch, time):
        rng = np.random.default_rng(seed)
        ids = rng.integers(0, VOCAB, size=(batch, time))
        expected = TENSOR_MODEL(ids).data
        actual = KERNEL_MODEL(ids).data
        assert expected.dtype == actual.dtype == np.float32
        assert np.array_equal(expected, actual)

    @given(seed=st.integers(min_value=0, max_value=2 ** 20),
           batch=st.integers(min_value=1, max_value=3),
           prefix=st.integers(min_value=1, max_value=30),
           steps=st.integers(min_value=1, max_value=8))
    @settings(max_examples=15, deadline=None)
    def test_verify_chunk_is_bit_identical(self, seed, batch, prefix, steps):
        rng = np.random.default_rng(seed)
        prompts = rng.integers(0, VOCAB, size=(batch, prefix))
        chunk = rng.integers(0, VOCAB, size=(batch, steps))
        accept = int(rng.integers(0, steps))
        probe = rng.integers(0, VOCAB, size=(batch,))

        results = []
        for model in (TENSOR_MODEL, KERNEL_MODEL):
            rows = []
            for row in prompts:
                logits, state = model.prefill(row, model.start_state(1))
                rows.append(state)
            state = model.stack_states(rows)
            logits, states = model.verify_chunk(chunk, state)
            # Resume from an arbitrary accepted position: the state
            # handoff must also be exact.
            resumed, _ = model.next_logits(probe, states[accept])
            results.append((logits, resumed))
        (expected, expected_resumed), (actual, actual_resumed) = results
        assert np.array_equal(expected, actual)
        assert np.array_equal(expected_resumed, actual_resumed)

    @given(requests=st.lists(st.tuples(_prompt, _config),
                             min_size=1, max_size=4))
    @settings(max_examples=15, deadline=None)
    def test_engine_over_kernels_matches_tensor_sequential(self, requests):
        # The engine path drives the managed workspaces: begin_step()
        # arena parity, stacked prefill, batched decode, prefix-cache
        # inserts.  Outputs must still equal cold Tensor-path runs.
        expected = [_sequential(TENSOR_MODEL, p, c) for p, c in requests]
        handles = [ENGINE.submit(p, c) for p, c in requests]
        actual = [h.result(timeout=120) for h in handles]
        assert actual == expected
