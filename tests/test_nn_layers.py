"""Unit tests for Linear/Embedding/Dropout layers (repro.nn.layers)."""

import numpy as np
import pytest

from repro.nn import Dropout, Embedding, Linear, Tensor
from repro.nn import init


@pytest.fixture
def rng():
    return np.random.default_rng(2)


class TestLinear:
    def test_shapes(self, rng):
        layer = Linear(4, 7, rng)
        out = layer(Tensor(np.ones((3, 4), dtype=np.float32)))
        assert out.shape == (3, 7)

    def test_3d_input(self, rng):
        layer = Linear(4, 7, rng)
        out = layer(Tensor(np.ones((2, 5, 4), dtype=np.float32)))
        assert out.shape == (2, 5, 7)

    def test_no_bias(self, rng):
        layer = Linear(4, 7, rng, bias=False)
        assert layer.bias is None
        zero = layer(Tensor(np.zeros((1, 4), dtype=np.float32)))
        np.testing.assert_allclose(zero.data, np.zeros((1, 7)))

    def test_affine_correctness(self, rng):
        layer = Linear(3, 2, rng)
        x = rng.standard_normal((4, 3)).astype(np.float32)
        expected = x @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected, rtol=1e-6)

    def test_deterministic_init(self):
        a = Linear(4, 4, np.random.default_rng(5))
        b = Linear(4, 4, np.random.default_rng(5))
        np.testing.assert_array_equal(a.weight.data, b.weight.data)

    def test_normal_init_std(self):
        layer = Linear(500, 500, np.random.default_rng(0), std=0.02)
        assert layer.weight.data.std() == pytest.approx(0.02, rel=0.1)


class TestEmbedding:
    def test_lookup_shape(self, rng):
        emb = Embedding(10, 6, rng)
        out = emb(np.array([[1, 2], [3, 4]]))
        assert out.shape == (2, 2, 6)

    def test_out_of_range_raises(self, rng):
        emb = Embedding(10, 6, rng)
        with pytest.raises(IndexError):
            emb(np.array([10]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))

    def test_gradient_flows_to_weight(self, rng):
        emb = Embedding(5, 3, rng)
        emb(np.array([0, 0, 1])).sum().backward()
        assert emb.weight.grad is not None
        np.testing.assert_allclose(emb.weight.grad[0], np.full(3, 2.0))


class TestDropout:
    def test_invalid_p(self, rng):
        with pytest.raises(ValueError):
            Dropout(1.0, rng)
        with pytest.raises(ValueError):
            Dropout(-0.1, rng)

    def test_train_drops_eval_does_not(self, rng):
        drop = Dropout(0.5, rng)
        x = Tensor(np.ones((100, 100), dtype=np.float32))
        drop.train()
        dropped = drop(x).data
        assert (dropped == 0).mean() == pytest.approx(0.5, abs=0.05)
        drop.eval()
        np.testing.assert_array_equal(drop(x).data, x.data)


class TestInit:
    def test_orthogonal_is_orthogonal(self):
        q = init.orthogonal(np.random.default_rng(0), (16, 16))
        np.testing.assert_allclose(q @ q.T, np.eye(16), atol=1e-4)

    def test_orthogonal_rectangular(self):
        q = init.orthogonal(np.random.default_rng(0), (8, 16))
        np.testing.assert_allclose(q @ q.T, np.eye(8), atol=1e-4)

    def test_orthogonal_requires_2d(self):
        with pytest.raises(ValueError):
            init.orthogonal(np.random.default_rng(0), (2, 2, 2))

    def test_xavier_bound(self):
        w = init.xavier_uniform(np.random.default_rng(0), (100, 100))
        bound = np.sqrt(6.0 / 200)
        assert np.abs(w).max() <= bound + 1e-6

    def test_zeros_ones(self):
        assert init.zeros((3,)).sum() == 0.0
        assert init.ones((3,)).sum() == 3.0
