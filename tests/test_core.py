"""Unit + integration tests for registry, checkpoints, pipeline (repro.core)."""

import numpy as np
import pytest

from repro.core import (PipelineConfig, Ratatouille, build_from_config,
                        get_spec, load_checkpoint, model_names,
                        save_checkpoint, table1_models)
from repro.models import GenerationConfig
from repro.preprocess import preprocess
from repro.recipedb import generate_corpus
from repro.training import TrainingConfig


@pytest.fixture(scope="module")
def texts():
    corpus, _ = preprocess(generate_corpus(40, seed=29))
    return corpus


@pytest.fixture(scope="module")
def trained(texts):
    """A small distilgpt2 pipeline trained just enough to be coherent."""
    config = PipelineConfig(
        model_name="distilgpt2",
        training=TrainingConfig(max_steps=40, batch_size=4, warmup_steps=5,
                                eval_every=20))
    return Ratatouille.from_texts(texts, config=config)


class TestRegistry:
    def test_table1_models_registered(self):
        for name in table1_models():
            spec = get_spec(name)
            assert spec.display_name

    def test_table1_order_matches_paper(self):
        assert table1_models() == ["char-lstm", "word-lstm", "distilgpt2",
                                   "gpt2-medium"]

    def test_paper_bleu_values(self):
        assert get_spec("char-lstm").paper_bleu == 0.347
        assert get_spec("word-lstm").paper_bleu == 0.412
        assert get_spec("distilgpt2").paper_bleu == 0.442
        assert get_spec("gpt2-medium").paper_bleu == 0.806

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            get_spec("gpt5")

    def test_model_names_includes_future_work(self):
        assert "gpt-neo" in model_names()

    def test_build_from_config_unknown_type(self):
        with pytest.raises(ValueError):
            build_from_config({"model_type": "rnn", "vocab_size": 10})

    def test_specs_build_working_models(self, texts):
        for name in model_names():
            spec = get_spec(name)
            tokenizer = spec.build_tokenizer(texts[:10])
            model = spec.build_model(tokenizer.vocab_size, 0)
            assert model.vocab_size == tokenizer.vocab_size


class TestCheckpoints:
    def test_roundtrip_bitexact(self, trained, tmp_path):
        directory = tmp_path / "ckpt"
        save_checkpoint(trained.model, trained.tokenizer, directory)
        model, tokenizer = load_checkpoint(directory)
        for (na, pa), (nb, pb) in zip(trained.model.named_parameters(),
                                      model.named_parameters()):
            assert na == nb
            np.testing.assert_array_equal(pa.data, pb.data)
        assert tokenizer.vocab_size == trained.tokenizer.vocab_size

    def test_loaded_model_same_logits(self, trained, tmp_path):
        directory = tmp_path / "ckpt"
        save_checkpoint(trained.model, trained.tokenizer, directory)
        model, _ = load_checkpoint(directory)
        ids = np.arange(12).reshape(1, 12) % trained.model.vocab_size
        np.testing.assert_allclose(trained.model(ids).data, model(ids).data,
                                   atol=1e-6)

    def test_missing_checkpoint_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(tmp_path / "nope")

    def test_pipeline_save_load(self, trained, tmp_path):
        trained.save(tmp_path / "pipe")
        restored = Ratatouille.load(tmp_path / "pipe")
        out = restored.generate(["chicken breast", "garlic"],
                                GenerationConfig(max_new_tokens=20, seed=0))
        assert out.raw_text


class TestPipeline:
    def test_training_result_attached(self, trained):
        assert trained.training_result is not None
        assert trained.training_result.steps == 40
        assert trained.training_result.val_losses

    def test_generate_structure(self, trained):
        out = trained.generate(["chicken breast", "garlic", "rice"],
                               GenerationConfig(max_new_tokens=40, seed=1))
        assert out.prompt_ingredients == ["chicken breast", "garlic", "rice"]
        assert out.raw_text.startswith("<RECIPE_START>")
        assert out.generation_seconds > 0
        assert isinstance(out.is_valid, bool)

    def test_generate_empty_raises(self, trained):
        with pytest.raises(ValueError):
            trained.generate([])

    def test_generate_deterministic_with_seed(self, trained):
        config = GenerationConfig(max_new_tokens=30, seed=9)
        a = trained.generate(["salt"], config)
        config2 = GenerationConfig(max_new_tokens=30, seed=9)
        b = trained.generate(["salt"], config2)
        assert a.raw_text == b.raw_text

    def test_generate_with_checklist(self, trained):
        out = trained.generate(["garlic", "onion"],
                               GenerationConfig(max_new_tokens=30, seed=2),
                               checklist=True)
        assert out.raw_text

    def test_pretty_rendering(self, trained):
        out = trained.generate(["salt"], GenerationConfig(max_new_tokens=30,
                                                          seed=3))
        pretty = out.pretty()
        assert "Ingredients:" in pretty
        assert "Instructions:" in pretty

    def test_evaluate_bleu_runs(self, trained, texts):
        bleu, gens = trained.evaluate_bleu(texts[:6], max_samples=3,
                                           generation=GenerationConfig(
                                               strategy="greedy",
                                               max_new_tokens=1))
        assert 0.0 <= bleu <= 1.0
        assert len(gens) == 3

    def test_evaluate_bleu_no_valid_texts(self, trained):
        with pytest.raises(ValueError):
            trained.evaluate_bleu(["no tags here"], max_samples=2)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PipelineConfig(num_recipes=1).validate()
        with pytest.raises(ValueError):
            PipelineConfig(val_fraction=0.0).validate()
