"""Systematic finite-difference gradient checks on composed modules.

The unit tests in test_nn_tensor.py check individual ops; these check
that gradients stay correct through the *composed* structures the
models actually use: attention blocks, LSTM cells over multiple steps,
the full GPT-2 trunk, and the LSTM language model, including the fused
layer-norm and cross-entropy backward paths.
"""

import numpy as np
import pytest

from repro.models.gpt2 import GPT2Config, GPT2Model
from repro.models.lstm import LSTMConfig, LSTMLanguageModel
from repro.nn import Tensor, TransformerBlock
from repro.nn import functional as F
from repro.nn.rnn import LSTMCell


def numeric_param_grad(loss_fn, param, eps=1e-2):
    """Central difference of a scalar loss wrt one parameter array."""
    grad = np.zeros_like(param.data, dtype=np.float64)
    flat = param.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    # probe a subset of coordinates to keep runtime sane
    indices = np.linspace(0, flat.size - 1, num=min(flat.size, 12), dtype=int)
    for i in indices:
        original = flat[i]
        flat[i] = original + eps
        up = loss_fn()
        flat[i] = original - eps
        down = loss_fn()
        flat[i] = original
        grad_flat[i] = (up - down) / (2 * eps)
    return grad, indices


def check_module_grads(module, loss_builder, atol=0.05):
    """Compare autograd grads with numeric grads for every parameter."""
    module.zero_grad()
    loss = loss_builder()
    loss.backward()
    for name, param in module.named_parameters():
        assert param.grad is not None, name
        numeric, indices = numeric_param_grad(
            lambda: float(loss_builder().data), param)
        auto = param.grad.reshape(-1)[indices]
        num = numeric.reshape(-1)[indices]
        scale = max(np.abs(num).max(), 1.0)
        np.testing.assert_allclose(auto, num, atol=atol * scale,
                                   err_msg=f"gradient mismatch in {name}")


class TestComposedGradients:
    def test_lstm_cell_over_three_steps(self):
        rng = np.random.default_rng(0)
        cell = LSTMCell(3, 4, rng)
        xs = [Tensor(rng.standard_normal((2, 3)).astype(np.float32))
              for _ in range(3)]
        target = Tensor(rng.standard_normal((2, 4)).astype(np.float32))

        def loss_builder():
            state = cell.initial_state(2)
            for x in xs:
                state = cell(x, state)
            return ((state.h - target) ** 2).sum()

        check_module_grads(cell, loss_builder)

    def test_transformer_block(self):
        rng = np.random.default_rng(1)
        block = TransformerBlock(8, 2, 16, 0.0, rng)
        x = Tensor(rng.standard_normal((1, 4, 8)).astype(np.float32))
        w = Tensor(rng.standard_normal((1, 4, 8)).astype(np.float32))

        def loss_builder():
            out, _ = block(x)
            return (out * w).sum()

        check_module_grads(block, loss_builder)

    def test_gpt2_full_model_cross_entropy(self):
        model = GPT2Model(GPT2Config(vocab_size=11, context_length=8,
                                     d_model=8, num_layers=1, num_heads=2,
                                     d_ff=16, dropout=0.0, seed=2))
        ids = np.random.default_rng(3).integers(0, 11, (1, 5))
        targets = np.random.default_rng(4).integers(0, 11, 5)

        def loss_builder():
            logits = model(ids)
            return F.cross_entropy(logits.reshape(-1, 11), targets)

        check_module_grads(model, loss_builder)

    def test_lstm_language_model_cross_entropy(self):
        model = LSTMLanguageModel(LSTMConfig(vocab_size=9, d_embed=4,
                                             d_hidden=6, num_layers=2,
                                             dropout=0.0, seed=5))
        ids = np.random.default_rng(6).integers(0, 9, (2, 4))
        targets = np.random.default_rng(7).integers(0, 9, 8)

        def loss_builder():
            logits = model(ids)
            return F.cross_entropy(logits.reshape(-1, 9), targets)

        check_module_grads(model, loss_builder)


class TestTrainingDynamicsSanity:
    def test_single_batch_overfits(self):
        """A tiny GPT-2 can drive the loss on one batch to ~0 — the
        classic end-to-end autograd sanity check."""
        from repro.nn import AdamW

        model = GPT2Model(GPT2Config(vocab_size=13, context_length=16,
                                     d_model=16, num_layers=2, num_heads=2,
                                     d_ff=32, dropout=0.0, seed=8))
        rng = np.random.default_rng(9)
        ids = rng.integers(0, 13, (2, 10))
        targets = rng.integers(0, 13, 20)
        optimizer = AdamW(model.parameters(), lr=5e-3, weight_decay=0.0)
        first = None
        for _ in range(150):
            optimizer.zero_grad()
            loss = F.cross_entropy(model(ids).reshape(-1, 13), targets)
            if first is None:
                first = loss.item()
            loss.backward()
            optimizer.step()
        assert loss.item() < first * 0.1

    def test_gradient_flow_through_long_context(self):
        """The first token's embedding receives gradient from the last
        position's loss (no silent causal-mask bug)."""
        model = GPT2Model(GPT2Config(vocab_size=7, context_length=32,
                                     d_model=8, num_layers=2, num_heads=2,
                                     d_ff=16, dropout=0.0, seed=10))
        ids = np.zeros((1, 20), dtype=np.int64)
        ids[0, 0] = 3  # distinctive first token
        logits = model(ids)
        # loss only at the final position
        loss = F.cross_entropy(logits[:, -1, :].reshape(1, 7),
                               np.array([1]))
        loss.backward()
        grad_row = model.wte.weight.grad[3]
        assert np.abs(grad_row).sum() > 0
