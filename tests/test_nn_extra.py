"""Additional nn coverage: mixed-op graphs, dtype behavior, edge shapes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import (Adam, SGD, Tensor, clip_grad_norm, no_grad, Parameter)
from repro.nn import functional as F


class TestMixedGraphs:
    def test_shared_subexpression_gradient(self):
        """A value used by several ops accumulates all contributions."""
        x = Tensor([2.0], requires_grad=True)
        shared = x * 3.0
        out = shared.exp() + shared * shared + shared
        out.backward(np.array([1.0], dtype=np.float32))
        # d/dx [e^(3x) + 9x^2 + 3x] = 3e^(3x) + 18x + 3 at x=2
        expected = 3 * np.exp(6.0) + 36 + 3
        assert x.grad[0] == pytest.approx(expected, rel=1e-4)

    def test_gradient_through_reductions_and_reshape(self):
        x = Tensor(np.arange(12, dtype=np.float32).reshape(3, 4),
                   requires_grad=True)
        out = (x.reshape(4, 3).sum(axis=0) ** 2).mean()
        out.backward()
        assert x.grad.shape == (3, 4)
        assert np.isfinite(x.grad).all()

    def test_concat_of_computed_values(self):
        a = Tensor(np.ones((2, 2), dtype=np.float32), requires_grad=True)
        parts = [a * 2, a.tanh(), a + 1]
        out = F.concat(parts, axis=1).sum()
        out.backward()
        expected = 2.0 + (1 - np.tanh(1.0) ** 2) + 1.0
        np.testing.assert_allclose(a.grad, np.full((2, 2), expected),
                                   rtol=1e-5)

    def test_no_grad_inside_graph_building(self):
        x = Tensor([1.0], requires_grad=True)
        y = x * 2
        with no_grad():
            frozen = y * 10  # not recorded
        z = y + frozen.detach()
        z.backward(np.array([1.0], dtype=np.float32))
        assert x.grad[0] == pytest.approx(2.0)


class TestDtypeAndShape:
    def test_scalar_tensor_ops(self):
        x = Tensor(np.float32(3.0), requires_grad=True)
        (x * x).backward()
        assert x.grad == pytest.approx(6.0)

    def test_empty_axis_sum(self):
        x = Tensor(np.ones((0, 4), dtype=np.float32), requires_grad=True)
        out = x.sum()
        assert out.item() == 0.0

    def test_float32_preserved_through_ops(self):
        x = Tensor(np.ones(3, dtype=np.float32))
        for op in (lambda t: t + 1, lambda t: t.exp(), lambda t: t * 2.5):
            assert op(x).dtype == np.float32

    def test_grad_dtype_matches_data(self):
        x = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        (x * 2).sum().backward()
        assert x.grad.dtype == np.float32


class TestOptimizerEdges:
    def test_adam_state_tracks_parameters(self):
        p = Parameter(np.zeros(4))
        opt = Adam([p], lr=0.1)
        p.grad = np.ones(4, dtype=np.float32)
        opt.step()
        opt.step()
        assert opt.step_count == 2

    def test_sgd_lr_mutation_respected(self):
        """Schedules mutate optimizer.lr between steps."""
        p = Parameter(np.zeros(1))
        opt = SGD([p], lr=1.0)
        p.grad = np.ones(1, dtype=np.float32)
        opt.step()
        first = p.data.copy()
        opt.lr = 0.1
        p.grad = np.ones(1, dtype=np.float32)
        opt.step()
        second_delta = p.data - first
        assert second_delta[0] == pytest.approx(-0.1)

    def test_clip_handles_zero_gradients(self):
        p = Parameter(np.zeros(4))
        p.grad = np.zeros(4, dtype=np.float32)
        assert clip_grad_norm([p], 1.0) == 0.0


@given(st.integers(1, 4), st.integers(1, 6), st.integers(1, 5))
@settings(max_examples=25, deadline=None)
def test_softmax_shapes_property(batch, rows, cols):
    rng = np.random.default_rng(0)
    x = Tensor(rng.standard_normal((batch, rows, cols)).astype(np.float32))
    out = F.softmax(x, axis=-1)
    assert out.shape == (batch, rows, cols)
    np.testing.assert_allclose(out.data.sum(axis=-1),
                               np.ones((batch, rows)), rtol=1e-4)


@given(st.integers(2, 50))
@settings(max_examples=25, deadline=None)
def test_cross_entropy_uniform_property(vocab):
    logits = Tensor(np.zeros((3, vocab), dtype=np.float32))
    loss = F.cross_entropy(logits, np.zeros(3, dtype=np.int64))
    assert loss.item() == pytest.approx(np.log(vocab), rel=1e-4)
