"""Unit tests for decoding strategies (repro.models.generation)."""

import numpy as np
import pytest

from repro.models import (ChecklistBonus, GenerationConfig,
                          RepetitionPenalty, generate)
from repro.models.generation import (_filter_top_k, _filter_top_p, _softmax)
from repro.models.lstm import LSTMConfig, LSTMLanguageModel

VOCAB = 20


@pytest.fixture(scope="module")
def model():
    return LSTMLanguageModel(LSTMConfig(vocab_size=VOCAB, d_embed=8,
                                        d_hidden=16, num_layers=1,
                                        dropout=0.0))


class TestConfigValidation:
    def test_defaults_valid(self):
        GenerationConfig().validate()

    @pytest.mark.parametrize("kwargs", [
        {"strategy": "quantum"},
        {"max_new_tokens": 0},
        {"temperature": 0.0},
        {"top_k": -1},
        {"top_p": 0.0},
        {"top_p": 1.5},
        {"beam_size": 0},
        {"repetition_penalty": 0.5},
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            GenerationConfig(**kwargs).validate()


class TestSampling:
    def test_length_respected(self, model):
        out = generate(model, [1, 2], GenerationConfig(max_new_tokens=15))
        assert len(out) == 15

    def test_greedy_deterministic(self, model):
        config = GenerationConfig(strategy="greedy", max_new_tokens=10)
        a = generate(model, [1, 2, 3], config)
        b = generate(model, [1, 2, 3], config)
        assert a == b

    def test_sampling_seed_reproducible(self, model):
        config = GenerationConfig(max_new_tokens=10, seed=7)
        assert generate(model, [1], config) == generate(model, [1], config)

    def test_different_seeds_differ(self, model):
        a = generate(model, [1], GenerationConfig(max_new_tokens=30, seed=1))
        b = generate(model, [1], GenerationConfig(max_new_tokens=30, seed=2))
        assert a != b

    def test_stop_token_halts(self, model):
        config = GenerationConfig(strategy="greedy", max_new_tokens=50)
        greedy_out = generate(model, [1, 2], config)
        stop = greedy_out[3]
        config_stop = GenerationConfig(strategy="greedy", max_new_tokens=50,
                                       stop_token_id=stop)
        out = generate(model, [1, 2], config_stop)
        assert out[-1] == stop
        assert len(out) <= len(greedy_out)

    def test_empty_prompt_raises(self, model):
        with pytest.raises(ValueError):
            generate(model, [], GenerationConfig(max_new_tokens=5))

    def test_tokens_in_vocab(self, model):
        out = generate(model, [0], GenerationConfig(max_new_tokens=40,
                                                    temperature=2.0))
        assert all(0 <= t < VOCAB for t in out)


class TestBeam:
    def test_beam_deterministic(self, model):
        config = GenerationConfig(strategy="beam", beam_size=3,
                                  max_new_tokens=8)
        assert generate(model, [1, 2], config) == generate(model, [1, 2], config)

    def test_beam_one_equals_greedy(self, model):
        beam = GenerationConfig(strategy="beam", beam_size=1, max_new_tokens=8)
        greedy = GenerationConfig(strategy="greedy", max_new_tokens=8)
        assert generate(model, [1, 2], beam) == generate(model, [1, 2], greedy)

    def test_beam_log_prob_at_least_greedy(self, model):
        """Beam search must find a sequence at least as likely as greedy."""
        from repro.nn import no_grad

        def log_prob(tokens):
            total = 0.0
            state = model.start_state(1)
            with no_grad():
                logits, state = model.next_logits(np.array([1]), state)
                for token in tokens:
                    probs = _softmax(logits[0].astype(np.float64))
                    total += np.log(probs[token] + 1e-12)
                    logits, state = model.next_logits(np.array([token]), state)
            return total

        greedy = generate(model, [1], GenerationConfig(strategy="greedy",
                                                       max_new_tokens=6))
        beam = generate(model, [1], GenerationConfig(strategy="beam",
                                                     beam_size=4,
                                                     max_new_tokens=6))
        assert log_prob(beam) >= log_prob(greedy) - 1e-6

    def test_beam_siblings_do_not_corrupt_shared_kv_cache(self):
        """Regression: transformer KV caches append in place, and beam
        siblings cut from the same parent share the parent's state
        object — without snapshotting, advancing one sibling used to
        overwrite the other's cache slot in the shared buffer.

        Reference run: identical search, but every ``next_logits`` call
        receives a deep-copied state, so no buffer is ever shared.
        """
        import copy

        from repro.models import distilgpt2

        # This exact model/config/prompt combination is verified to
        # produce a *different* (wrong) output under the pre-fix
        # shared-state advance — don't tweak it casually.
        gpt2 = distilgpt2(vocab_size=VOCAB, context_length=128)

        class _CopyStateModel:
            def __init__(self, inner):
                self._inner = inner

            def __getattr__(self, name):
                return getattr(self._inner, name)

            def next_logits(self, ids, state):
                return self._inner.next_logits(ids, copy.deepcopy(state))

        config = GenerationConfig(strategy="beam", beam_size=3,
                                  max_new_tokens=12)
        expected = generate(_CopyStateModel(gpt2), [1, 2, 3], config)
        assert generate(gpt2, [1, 2, 3], config) == expected


class TestFilters:
    def test_top_k_keeps_k(self):
        logits = np.array([1.0, 5.0, 3.0, 2.0, 4.0])
        filtered = _filter_top_k(logits, 2)
        kept = np.isfinite(filtered).sum()
        assert kept == 2
        assert np.isfinite(filtered[[1, 4]]).all()

    def test_top_k_zero_disables(self):
        logits = np.arange(5.0)
        np.testing.assert_array_equal(_filter_top_k(logits, 0), logits)

    def test_top_k_larger_than_vocab(self):
        logits = np.arange(5.0)
        np.testing.assert_array_equal(_filter_top_k(logits, 50), logits)

    def test_top_p_keeps_nucleus(self):
        # one dominant token -> top_p=0.5 keeps only it
        logits = np.array([10.0, 0.0, 0.0, 0.0])
        filtered = _filter_top_p(logits, 0.5)
        assert np.isfinite(filtered).sum() == 1

    def test_top_p_one_disables(self):
        logits = np.arange(4.0)
        np.testing.assert_array_equal(_filter_top_p(logits, 1.0), logits)

    def test_top_p_always_keeps_one(self):
        logits = np.zeros(4)
        filtered = _filter_top_p(logits, 0.01)
        assert np.isfinite(filtered).sum() >= 1

    def test_softmax_normalized(self):
        probs = _softmax(np.array([1.0, 2.0, 3.0]))
        assert probs.sum() == pytest.approx(1.0)


class TestProcessors:
    def test_repetition_penalty_dampens(self):
        proc = RepetitionPenalty(2.0)
        logits = np.array([2.0, -2.0, 1.0])
        out = proc(logits, [0, 1])
        assert out[0] == pytest.approx(1.0)   # positive divided
        assert out[1] == pytest.approx(-4.0)  # negative multiplied
        assert out[2] == pytest.approx(1.0)   # untouched

    def test_repetition_penalty_noop_cases(self):
        logits = np.array([1.0, 2.0])
        assert (RepetitionPenalty(1.0)(logits, [0]) == logits).all()
        assert (RepetitionPenalty(2.0)(logits, []) == logits).all()

    def test_repetition_penalty_validation(self):
        with pytest.raises(ValueError):
            RepetitionPenalty(0.9)

    def test_checklist_boosts_until_mentioned(self):
        proc = ChecklistBonus([[5], [7]], bonus=3.0)
        logits = np.zeros(10)
        out = proc(logits, [])
        assert out[5] == 3.0 and out[7] == 3.0
        assert proc.coverage == 0.0
        # after 5 is generated, only 7 keeps the boost
        out = proc(np.zeros(10), [5])
        assert out[5] == 0.0 and out[7] == 3.0
        assert proc.coverage == 0.5

    def test_checklist_empty_coverage_one(self):
        assert ChecklistBonus([]).coverage == 1.0

    def test_checklist_resets_when_history_shrinks(self):
        # A shrinking history means a new request (or a failed-over
        # replay of the same one, through the cluster router) is
        # reusing the instance: earlier check-offs must not leak into
        # the replay, or the replayed logits diverge from sequential.
        proc = ChecklistBonus([[5], [7]], bonus=3.0)
        proc(np.zeros(10), [5])          # 5 checked off
        assert proc.coverage == 0.5
        out = proc(np.zeros(10), [])     # history shrank: fresh run
        assert out[5] == 3.0 and out[7] == 3.0
        assert proc.coverage == 0.0
        # The replay re-checks items exactly as the first pass did.
        out = proc(np.zeros(10), [5])
        assert out[5] == 0.0 and out[7] == 3.0
        assert proc.coverage == 0.5

    def test_checklist_in_generation(self, model):
        out = generate(model, [1],
                       GenerationConfig(strategy="greedy", max_new_tokens=10),
                       processors=[ChecklistBonus([[9]], bonus=100.0)])
        assert 9 in out  # huge bonus forces the token out
