"""Integration tests for the web application (repro.webapp).

Spins up the real HTTP services on ephemeral ports and exercises them
through the client, reproducing the Figs. 4–5 round trip.
"""

import json

import pytest

from repro.core import PipelineConfig, Ratatouille
from repro.preprocess import preprocess
from repro.recipedb import generate_corpus
from repro.training import TrainingConfig
from repro.webapp import (ApiError, App, DeploymentConfig, RatatouilleClient,
                          Request, Response, Server, ServiceSpec,
                          create_backend, create_frontend, render_compose,
                          render_dockerfile, render_page, scale_out,
                          write_deployment)


@pytest.fixture(scope="module")
def pipeline():
    texts, _ = preprocess(generate_corpus(30, seed=31))
    config = PipelineConfig(
        model_name="distilgpt2",
        training=TrainingConfig(max_steps=30, batch_size=4, warmup_steps=5,
                                eval_every=10**9))
    return Ratatouille.from_texts(texts, config=config)


@pytest.fixture(scope="module")
def backend(pipeline):
    with Server(create_backend(pipeline)) as server:
        yield server


@pytest.fixture(scope="module")
def client(backend):
    return RatatouilleClient(backend.url)


class TestFramework:
    def test_routing_and_404(self):
        app = App()

        @app.route("/hello")
        def hello(request):
            return Response.text("hi")

        ok = app.dispatch(Request("GET", "/hello", {}, {}))
        assert ok.status == 200 and ok.body == b"hi"
        missing = app.dispatch(Request("GET", "/nope", {}, {}))
        assert missing.status == 404

    def test_method_not_allowed(self):
        app = App()

        @app.route("/only-post", methods=("POST",))
        def handler(request):
            return Response.json({})

        resp = app.dispatch(Request("GET", "/only-post", {}, {}))
        assert resp.status == 405

    def test_duplicate_route_rejected(self):
        app = App()

        @app.route("/x")
        def a(request):
            return Response.text("a")

        with pytest.raises(ValueError):
            @app.route("/x")
            def b(request):
                return Response.text("b")

    def test_value_error_becomes_400(self):
        app = App()

        @app.route("/boom")
        def boom(request):
            raise ValueError("bad input")

        resp = app.dispatch(Request("GET", "/boom", {}, {}))
        assert resp.status == 400
        assert b"bad input" in resp.body

    def test_unexpected_error_becomes_500(self):
        app = App()

        @app.route("/crash")
        def crash(request):
            raise RuntimeError("oops")

        resp = app.dispatch(Request("GET", "/crash", {}, {}))
        assert resp.status == 500

    def test_request_json_parsing(self):
        request = Request("POST", "/", {}, {}, body=b'{"a": 1}')
        assert request.json() == {"a": 1}
        with pytest.raises(ValueError):
            Request("POST", "/", {}, {}, body=b"").json()
        with pytest.raises(ValueError):
            Request("POST", "/", {}, {}, body=b"{bad").json()

    def test_server_lifecycle(self):
        app = App()

        @app.route("/ping")
        def ping(request):
            return Response.json({"pong": True})

        server = Server(app).start()
        try:
            import urllib.request
            with urllib.request.urlopen(f"{server.url}/ping", timeout=5) as r:
                assert json.loads(r.read()) == {"pong": True}
        finally:
            server.stop()

    def test_double_start_raises(self):
        server = Server(App())
        server.start()
        try:
            with pytest.raises(RuntimeError):
                server.start()
        finally:
            server.stop()


class TestBackendApi:
    def test_health(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["parameters"] > 0
        # A single engine reports as a fleet of one (same payload shape
        # as --replicas N; see docs/CLUSTER.md).
        assert health["replicas"] == 1
        assert health["healthy"] == 1
        assert health["draining"] == 0

    def test_ingredients_listing(self, client):
        items = client.ingredients(limit=10)
        assert len(items) == 10
        assert {"name", "category"} <= set(items[0])

    def test_ingredients_category_filter(self, client):
        items = client.ingredients(category="spice", limit=5)
        assert all(i["category"] == "spice" for i in items)

    def test_generate_round_trip(self, client):
        result = client.generate(["chicken breast", "garlic", "rice"],
                                 max_new_tokens=40, seed=1)
        assert "title" in result
        assert isinstance(result["instructions"], list)
        assert result["generation_seconds"] >= 0

    def test_generate_validates_input(self, client):
        with pytest.raises(ApiError) as exc:
            client.generate([])
        assert exc.value.status == 400
        with pytest.raises(ApiError):
            client.generate(["x"] * 50)  # over MAX_INGREDIENTS

    def test_generate_deterministic_seed(self, client):
        a = client.generate(["salt", "pepper"], max_new_tokens=30, seed=4)
        b = client.generate(["salt", "pepper"], max_new_tokens=30, seed=4)
        assert a["instructions"] == b["instructions"]

    def test_suggest(self, client):
        suggestions = client.suggest(["onion", "garlic"], limit=3)
        assert len(suggestions) <= 3
        for item in suggestions:
            assert item["score"] >= 0

    def test_unknown_route_404(self, backend):
        import urllib.error
        import urllib.request
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(f"{backend.url}/api/nope", timeout=5)
        assert exc.value.code == 404


class TestFrontend:
    def test_page_embeds_backend_url(self):
        page = render_page("http://localhost:9000")
        assert "http://localhost:9000" in page
        assert "<html" in page

    def test_frontend_serves_page(self, backend):
        with Server(create_frontend(backend.url)) as front:
            import urllib.request
            with urllib.request.urlopen(f"{front.url}/", timeout=5) as r:
                body = r.read().decode()
            assert backend.url in body
            with urllib.request.urlopen(f"{front.url}/health", timeout=5) as r:
                assert json.loads(r.read())["backend"] == backend.url

    def test_decoupled_ports(self, backend):
        """Frontend and backend are separate services on separate ports."""
        with Server(create_frontend(backend.url)) as front:
            assert front.port != backend.port


class TestDeploy:
    def test_compose_two_services(self):
        compose = render_compose(DeploymentConfig())
        assert "ratatouille-backend" in compose
        assert "ratatouille-frontend" in compose
        assert "depends_on" in compose

    def test_scale_out_replicas(self):
        config = scale_out(DeploymentConfig(), backend_replicas=4)
        compose = render_compose(config)
        assert "replicas: 4" in compose
        with pytest.raises(ValueError):
            scale_out(DeploymentConfig(), 0)

    def test_dockerfile_exposes_port(self):
        text = render_dockerfile(ServiceSpec(name="svc", port=8123,
                                             command="python -m x"))
        assert "EXPOSE 8123" in text

    def test_port_conflict_rejected(self):
        bad = DeploymentConfig(
            backend=ServiceSpec(name="a", port=8000),
            frontend=ServiceSpec(name="b", port=8000))
        with pytest.raises(ValueError):
            bad.validate()

    def test_write_deployment(self, tmp_path):
        artifacts = write_deployment(DeploymentConfig(), tmp_path)
        assert artifacts["compose"].exists()
        assert (tmp_path / "ratatouille-backend" / "Dockerfile").exists()
        assert (tmp_path / "ratatouille-frontend" / "Dockerfile").exists()
