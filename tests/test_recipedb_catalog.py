"""Unit tests for ingredients, flavor, nutrition, health substrates."""

import numpy as np
import pytest

from repro.recipedb import CATEGORIES, IngredientCatalog, default_catalog
from repro.recipedb.flavordb import (BRIDGE_MOLECULES, molecules_for,
                                     pairing_score, shared_molecules)
from repro.recipedb.health import aggregate as health_aggregate
from repro.recipedb.health import associations_for_category
from repro.recipedb.ingredients import BASE_INGREDIENTS, full_scale_catalog
from repro.recipedb.nutrition import (UNIT_GRAMS, aggregate, density_for,
                                      grams_of)
from repro.recipedb.schema import Ingredient, Quantity, RecipeIngredient


class TestCatalog:
    def test_default_catalog_size(self):
        catalog = default_catalog()
        base = sum(len(v) for v in BASE_INGREDIENTS.values())
        assert len(catalog) >= base
        # expansion_factor=3 adds up to 3 variants per base
        assert len(catalog) <= base * 4

    def test_full_scale_larger(self):
        assert len(full_scale_catalog()) > len(default_catalog())

    def test_get_known(self):
        catalog = default_catalog()
        onion = catalog.get("onion")
        assert onion.category == "vegetable"
        assert onion.flavor_molecules

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            default_catalog().get("unobtainium")

    def test_contains(self):
        catalog = default_catalog()
        assert "garlic" in catalog
        assert "unobtainium" not in catalog

    def test_by_category(self):
        catalog = default_catalog()
        spices = catalog.by_category("spice")
        assert all(s.category == "spice" for s in spices)
        with pytest.raises(KeyError):
            catalog.by_category("metal")

    def test_unique_ids(self):
        catalog = default_catalog()
        ids = [i.ingredient_id for i in catalog.all()]
        assert len(ids) == len(set(ids))

    def test_deterministic_from_seed(self):
        a = IngredientCatalog(expansion_factor=2, seed=3)
        b = IngredientCatalog(expansion_factor=2, seed=3)
        assert a.names() == b.names()

    def test_zipf_sampling_prefers_head(self):
        catalog = default_catalog()
        rng = np.random.default_rng(0)
        pool = catalog.by_category("vegetable")
        draws = [catalog.sample("vegetable", rng).name for _ in range(500)]
        head_share = sum(1 for d in draws if d == pool[0].name) / len(draws)
        tail_share = sum(1 for d in draws if d == pool[-1].name) / len(draws)
        assert head_share > tail_share

    def test_negative_expansion_raises(self):
        with pytest.raises(ValueError):
            IngredientCatalog(expansion_factor=-1)

    def test_all_categories_populated(self):
        catalog = default_catalog()
        for category in CATEGORIES:
            assert catalog.by_category(category)


class TestFlavorDB:
    def test_deterministic(self):
        assert molecules_for("basil", "herb") == molecules_for("basil", "herb")

    def test_category_pool_membership(self):
        from repro.recipedb.flavordb import CATEGORY_MOLECULES
        mols = molecules_for("basil", "herb")
        assert any(m in CATEGORY_MOLECULES["herb"] for m in mols)

    def test_variants_share_bridge_molecule(self):
        base = set(molecules_for("basil", "herb"))
        variant = set(molecules_for("fresh basil", "herb"))
        shared_bridges = base & variant & set(BRIDGE_MOLECULES)
        assert shared_bridges

    def test_shared_molecules_order(self):
        a = ("x", "y", "z")
        b = ("z", "x")
        assert shared_molecules(a, b) == ["x", "z"]

    def test_pairing_score_bounds(self):
        a = molecules_for("onion", "vegetable")
        b = molecules_for("garlic", "vegetable")
        score = pairing_score(a, b)
        assert 0.0 <= score <= 1.0
        assert pairing_score(a, a) == 1.0
        assert pairing_score((), a) == 0.0


class TestNutrition:
    def test_density_jitter_bounded(self):
        from repro.recipedb.nutrition import CATEGORY_DENSITY
        base_kcal = CATEGORY_DENSITY["meat"][0]
        profile = density_for("chicken breast", "meat")
        assert 0.8 * base_kcal <= profile.calories_kcal <= 1.2 * base_kcal

    def test_density_unknown_category_raises(self):
        with pytest.raises(KeyError):
            density_for("thing", "mineral")

    def test_grams_conversion(self):
        assert grams_of(2, "cup") == 2 * UNIT_GRAMS["cup"]
        assert grams_of(1, "weird-unit") == 50.0  # fallback

    def test_aggregate_scales_with_servings(self):
        item = RecipeIngredient(
            ingredient=Ingredient(0, "rice", "grain"),
            quantity=Quantity(2, "cup"))
        one = aggregate([item], servings=1)
        four = aggregate([item], servings=4)
        assert one.calories_kcal == pytest.approx(4 * four.calories_kcal,
                                                  rel=0.01)

    def test_aggregate_validates_servings(self):
        with pytest.raises(ValueError):
            aggregate([], servings=0)

    def test_oil_is_energy_dense(self):
        oil = density_for("olive oil", "oil")
        veg = density_for("spinach", "vegetable")
        assert oil.calories_kcal > 5 * veg.calories_kcal


class TestHealth:
    def test_category_associations_polarity(self):
        table = associations_for_category("vegetable")
        assert all(v in ("positive", "negative") for v in table.values())
        assert table["cardiovascular disease"] == "positive"

    def test_meat_has_risks(self):
        table = associations_for_category("meat")
        assert "negative" in table.values()

    def test_unknown_category_empty(self):
        assert associations_for_category("mineral") == {}

    def test_aggregate_majority_vote(self):
        veg = RecipeIngredient(
            ingredient=Ingredient(0, "spinach", "vegetable"),
            quantity=Quantity(1, "cup"))
        sweet = RecipeIngredient(
            ingredient=Ingredient(1, "sugar", "sweetener"),
            quantity=Quantity(1, "cup"))
        table = health_aggregate([veg, sweet])
        # vegetable protects against obesity; sweetener risks it → tie dropped
        assert "obesity" not in table
        # vegetable-only protections survive
        assert table["cardiovascular disease"] == "positive"
        # sweetener-only risk survives... type 2 diabetes: veg none, sweet risk
        assert table["type 2 diabetes"] == "negative"
