"""Unit tests for the write-ahead job journal (docs/DURABILITY.md).

The contracts pinned here are exactly the ones ``kill -9`` exposes:
fsync-before-acknowledge framing that survives torn tails, idempotent
completion records, acceptance-order replay, and rotation that can
crash at any point without losing a record.
"""

import struct
import zlib

import pytest

from repro.durability import (COMPLETION_STATUSES, JobJournal, JournalError)
from repro.durability.journal import _HEADER, _MAGIC

pytestmark = pytest.mark.durability

REQUEST = {"ingredients": ["garlic", "rice"], "max_new_tokens": 8}


def _journal(tmp_path, **kwargs):
    kwargs.setdefault("fsync", False)  # throwaway state; framing unchanged
    return JobJournal(tmp_path / "journal", **kwargs)


class TestAppendAndReplay:
    def test_accepted_then_completed_roundtrip(self, tmp_path):
        with _journal(tmp_path) as journal:
            journal.append_accepted("a", REQUEST, idempotency_key="key-a")
            journal.append_accepted("b", REQUEST)
            journal.append_accepted("c", REQUEST)
            journal.append_completed("b", "done", result={"title": "Stew"})
            state = journal.replay()
        assert set(state.accepted) == {"a", "b", "c"}
        assert state.completed["b"]["result"] == {"title": "Stew"}
        assert state.idempotency == {"key-a": "a"}
        # Incomplete jobs come back in acceptance order — replay
        # re-submits FIFO so restart preserves fairness.
        assert [job_id for job_id, _ in state.incomplete()] == ["a", "c"]

    def test_completion_is_idempotent_first_wins(self, tmp_path):
        with _journal(tmp_path) as journal:
            journal.append_accepted("a", REQUEST)
            assert journal.append_completed("a", "done", result=1) is True
            assert journal.append_completed("a", "failed", error="x") is False
            state = journal.replay()
        assert state.completed["a"]["status"] == "done"
        assert state.duplicate_completions == 0

    def test_completion_idempotency_survives_reopen(self, tmp_path):
        with _journal(tmp_path) as journal:
            journal.append_accepted("a", REQUEST)
            journal.append_completed("a", "done", result=1)
        with _journal(tmp_path) as journal:
            # A new process must also refuse to double-complete.
            assert journal.append_completed("a", "failed") is False
            assert journal.replay().completed["a"]["status"] == "done"

    def test_rejected_status_is_terminal_not_replayable(self, tmp_path):
        with _journal(tmp_path) as journal:
            journal.append_accepted("a", REQUEST)
            journal.append_completed("a", "rejected",
                                     error="queue full before 202")
            assert journal.replay().incomplete() == []

    def test_unknown_status_rejected(self, tmp_path):
        with _journal(tmp_path) as journal:
            with pytest.raises(ValueError):
                journal.append_completed("a", "exploded")
        assert "rejected" in COMPLETION_STATUSES

    def test_append_after_close_raises(self, tmp_path):
        journal = _journal(tmp_path)
        journal.close()
        with pytest.raises(JournalError):
            journal.append_accepted("a", REQUEST)


class TestTornTails:
    """``kill -9`` mid-append leaves a partial frame; nothing before
    it may be affected, and nothing after reopen may be stranded."""

    def _active_segment(self, tmp_path):
        return sorted((tmp_path / "journal").glob("wal-*.log"))[-1]

    def test_partial_frame_is_ignored_and_counted(self, tmp_path):
        with _journal(tmp_path) as journal:
            journal.append_accepted("a", REQUEST)
            journal.append_accepted("b", REQUEST)
        segment = self._active_segment(tmp_path)
        payload = b'{"type": "accepted", "job_id": "lost"}'
        frame = _HEADER.pack(_MAGIC, len(payload), zlib.crc32(payload))
        with open(segment, "ab") as handle:
            handle.write((frame + payload)[:len(frame) + 7])  # torn write
        with _journal(tmp_path) as journal:
            state = journal.replay()
        assert set(state.accepted) == {"a", "b"}
        assert "lost" not in state.accepted
        assert state.torn_records == 0  # reopen truncated it away

    def test_reopen_truncates_tail_so_new_appends_are_readable(self, tmp_path):
        with _journal(tmp_path) as journal:
            journal.append_accepted("a", REQUEST)
        segment = self._active_segment(tmp_path)
        whole = segment.stat().st_size
        with open(segment, "ab") as handle:
            handle.write(b"\xde\xad\xbe\xef")  # garbage tail
        # Without WAL-style truncation the next append would land
        # *behind* bytes replay refuses to cross — and be lost.
        with _journal(tmp_path) as journal:
            assert segment.stat().st_size == whole
            journal.append_accepted("b", REQUEST)
            assert set(journal.replay().accepted) == {"a", "b"}

    def test_crc_mismatch_stops_replay_at_last_good_record(self, tmp_path):
        with _journal(tmp_path) as journal:
            journal.append_accepted("a", REQUEST)
            good = self._active_segment(tmp_path).read_bytes()
            journal.append_accepted("b", REQUEST)
        segment = self._active_segment(tmp_path)
        blob = bytearray(segment.read_bytes())
        blob[len(good) + _HEADER.size + 3] ^= 0xFF  # flip a byte in "b"
        segment.write_bytes(bytes(blob))
        with _journal(tmp_path) as journal:
            state = journal.replay()
        assert set(state.accepted) == {"a"}

    def test_partial_header_alone_is_a_torn_tail(self, tmp_path):
        with _journal(tmp_path) as journal:
            journal.append_accepted("a", REQUEST)
        segment = self._active_segment(tmp_path)
        with open(segment, "ab") as handle:
            handle.write(struct.pack("<2s", _MAGIC))  # 2 of 10 header bytes
        with _journal(tmp_path) as journal:
            assert set(journal.replay().accepted) == {"a"}


class TestRotation:
    def test_rotate_compacts_to_live_state(self, tmp_path):
        with _journal(tmp_path, keep_completed=2) as journal:
            for index in range(6):
                journal.append_accepted(f"job-{index}", REQUEST)
            for index in range(4):
                journal.append_completed(f"job-{index}", "done", result=index)
            journal.rotate()
            state = journal.replay()
            assert state.segments == 1
            # The 2 newest completions survive; older ones compact away.
            assert set(state.completed) == {"job-2", "job-3"}
            # Every incomplete acceptance survives verbatim.
            assert ({job_id for job_id, _ in state.incomplete()}
                    == {"job-4", "job-5"})
            # Kept completions stay idempotent after the compaction.
            assert journal.append_completed("job-3", "done") is False

    def test_compacted_completions_stay_idempotent(self, tmp_path):
        # Rotation may drop a completion *record* from disk, but the
        # in-memory guard must survive: a late/stale append_completed
        # for a compacted-away job is still a no-op.
        with _journal(tmp_path, keep_completed=1) as journal:
            journal.append_accepted("old", REQUEST)
            journal.append_accepted("new", REQUEST)
            journal.append_completed("old", "done", result=1)
            journal.append_completed("new", "done", result=2)
            journal.rotate()
            assert set(journal.replay().completed) == {"new"}
            assert journal.append_completed("old", "failed") is False
            assert journal.replay().duplicate_completions == 0

    def test_crash_mid_rotation_duplicates_fold_away(self, tmp_path):
        with _journal(tmp_path) as journal:
            journal.append_accepted("a", REQUEST, idempotency_key="k")
            journal.append_completed("a", "done", result=7)
        home = tmp_path / "journal"
        segment = sorted(home.glob("wal-*.log"))[-1]
        # A crash between "new segment fsync'd" and "old unlinked"
        # leaves both on disk with the same records.
        (home / "wal-000099.log").write_bytes(segment.read_bytes())
        with _journal(tmp_path) as journal:
            state = journal.replay()
        assert list(state.accepted) == ["a"]
        assert state.completed["a"]["result"] == 7
        assert state.duplicate_completions == 1  # counted, not harmful
        assert state.idempotency == {"k": "a"}

    def test_maybe_rotate_by_size(self, tmp_path):
        with _journal(tmp_path, rotate_bytes=256) as journal:
            assert journal.maybe_rotate() is False
            for index in range(20):
                journal.append_accepted(f"job-{index}", REQUEST)
                journal.append_completed(f"job-{index}", "done")
            assert journal.maybe_rotate() is True
            assert journal.stats()["rotations"] == 1
            assert len(list((tmp_path / "journal").glob("wal-*.log"))) == 1

    def test_results_stay_fetchable_across_rotate_and_reopen(self, tmp_path):
        with _journal(tmp_path) as journal:
            journal.append_accepted("a", REQUEST)
            journal.append_completed("a", "done", result={"title": "Soup"})
            journal.rotate()
        with _journal(tmp_path) as journal:
            record = journal.replay().completed["a"]
        assert record["result"] == {"title": "Soup"}
