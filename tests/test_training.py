"""Unit tests for datasets, trainer and callbacks (repro.training)."""

import io

import numpy as np
import pytest

from repro.models.lstm import LSTMConfig, LSTMLanguageModel
from repro.preprocess import preprocess
from repro.recipedb import generate_corpus
from repro.tokenizers import WordTokenizer
from repro.training import (EarlyStopping, LMDataset, LossLogger, Trainer,
                            TrainingConfig, train_val_split)


@pytest.fixture(scope="module")
def texts():
    corpus, _ = preprocess(generate_corpus(25, seed=17))
    return corpus


@pytest.fixture(scope="module")
def tokenizer(texts):
    return WordTokenizer(texts)


@pytest.fixture(scope="module")
def dataset(texts, tokenizer):
    return LMDataset(texts, tokenizer, seq_len=32)


def small_model(vocab_size):
    return LSTMLanguageModel(LSTMConfig(vocab_size=vocab_size, d_embed=16,
                                        d_hidden=32, num_layers=1,
                                        dropout=0.0))


class TestLMDataset:
    def test_stream_contains_eos_separators(self, dataset, tokenizer, texts):
        eos_count = int((dataset.stream == tokenizer.eos_id).sum())
        assert eos_count == len(texts)

    def test_window_shapes_and_shift(self, dataset):
        inputs, targets = dataset.window(0)
        assert inputs.shape == (32,)
        assert targets.shape == (32,)
        np.testing.assert_array_equal(inputs[1:], targets[:-1])

    def test_window_bounds(self, dataset):
        with pytest.raises(IndexError):
            dataset.window(len(dataset))
        with pytest.raises(IndexError):
            dataset.window(-1)

    def test_batches_cover_windows_once(self, dataset):
        rng = np.random.default_rng(0)
        seen = 0
        for inputs, targets in dataset.batches(4, rng, drop_last=False):
            assert inputs.shape[1] == 32
            seen += inputs.shape[0]
        assert seen == len(dataset)

    def test_drop_last(self, dataset):
        rng = np.random.default_rng(0)
        batches = list(dataset.batches(7, rng, drop_last=True))
        assert all(b[0].shape[0] == 7 for b in batches)

    def test_shuffling_differs_between_epochs(self, dataset):
        rng = np.random.default_rng(0)
        first = next(iter(dataset.batches(4, rng)))[0]
        second = next(iter(dataset.batches(4, rng)))[0]
        assert not np.array_equal(first, second)

    def test_validation(self, texts, tokenizer):
        with pytest.raises(ValueError):
            LMDataset(texts, tokenizer, seq_len=1)
        with pytest.raises(ValueError):
            LMDataset([], tokenizer, seq_len=32)
        with pytest.raises(ValueError):
            LMDataset(["one two"], tokenizer, seq_len=500)


class TestTrainValSplit:
    def test_partition(self, texts):
        train, val = train_val_split(texts, 0.2, seed=0)
        assert len(train) + len(val) == len(texts)
        assert set(train).isdisjoint(set(val) - set(train))

    def test_deterministic(self, texts):
        assert train_val_split(texts, 0.2, 1) == train_val_split(texts, 0.2, 1)

    def test_at_least_one_each(self):
        train, val = train_val_split(["a", "b"], 0.01, 0)
        assert len(train) == 1 and len(val) == 1

    def test_validation(self, texts):
        with pytest.raises(ValueError):
            train_val_split(texts, 0.0)
        with pytest.raises(ValueError):
            train_val_split(["only"], 0.5)


class TestTrainer:
    def test_loss_decreases(self, dataset, tokenizer):
        model = small_model(tokenizer.vocab_size)
        trainer = Trainer(model, TrainingConfig(max_steps=120, batch_size=4,
                                                learning_rate=8e-3,
                                                warmup_steps=5,
                                                eval_every=10**9))
        result = trainer.train(dataset)
        first = np.mean(result.train_losses[:5])
        last = np.mean(result.train_losses[-5:])
        assert last < first - 1.0  # a solid drop in nats
        assert result.steps == 120
        assert result.tokens_seen == 120 * 4 * 32
        assert result.tokens_per_second > 0

    def test_eval_runs(self, dataset, tokenizer):
        model = small_model(tokenizer.vocab_size)
        trainer = Trainer(model, TrainingConfig(max_steps=20, batch_size=4,
                                                eval_every=10))
        result = trainer.train(dataset, val_dataset=dataset)
        assert len(result.val_losses) == 2

    def test_evaluate_no_grad_side_effects(self, dataset, tokenizer):
        model = small_model(tokenizer.vocab_size)
        trainer = Trainer(model, TrainingConfig(max_steps=5, batch_size=2))
        trainer.evaluate(dataset, max_batches=2)
        assert all(p.grad is None for p in model.parameters())

    def test_model_left_in_eval_mode(self, dataset, tokenizer):
        model = small_model(tokenizer.vocab_size)
        trainer = Trainer(model, TrainingConfig(max_steps=3, batch_size=2))
        trainer.train(dataset)
        assert not model.training

    def test_callbacks_invoked(self, dataset, tokenizer):
        stream = io.StringIO()
        logger = LossLogger(every=1, stream=stream)
        model = small_model(tokenizer.vocab_size)
        trainer = Trainer(model, TrainingConfig(max_steps=4, batch_size=2),
                          callbacks=[logger])
        trainer.train(dataset)
        assert len(logger.history) == 4
        assert "step" in stream.getvalue()

    def test_early_stopping(self, dataset, tokenizer):
        stopper = EarlyStopping(patience=1)
        model = small_model(tokenizer.vocab_size)
        # lr=0 so val loss never improves -> stop after 2 evals
        trainer = Trainer(model, TrainingConfig(max_steps=500, batch_size=2,
                                                learning_rate=1e-12,
                                                eval_every=5, eval_batches=1),
                          callbacks=[stopper])
        result = trainer.train(dataset, val_dataset=dataset)
        assert result.stopped_early
        assert result.steps < 500

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TrainingConfig(max_steps=0).validate()
        with pytest.raises(ValueError):
            TrainingConfig(batch_size=0).validate()
        with pytest.raises(ValueError):
            TrainingConfig(learning_rate=-1).validate()


class TestCallbacks:
    def test_loss_logger_validation(self):
        with pytest.raises(ValueError):
            LossLogger(every=0)

    def test_early_stopping_improvement_resets(self):
        stopper = EarlyStopping(patience=2)
        stopper.on_eval(1, 1.0)
        stopper.on_eval(2, 1.1)   # worse
        stopper.on_eval(3, 0.5)   # better -> reset
        stopper.on_eval(4, 0.6)
        assert not stopper.should_stop
        stopper.on_eval(5, 0.7)
        assert stopper.should_stop

    def test_early_stopping_min_delta(self):
        stopper = EarlyStopping(patience=1, min_delta=0.5)
        stopper.on_eval(1, 1.0)
        stopper.on_eval(2, 0.9)  # improvement smaller than min_delta
        assert stopper.should_stop

    def test_early_stopping_validation(self):
        with pytest.raises(ValueError):
            EarlyStopping(patience=0)
