"""Property tests for repro.retrieval (docs/RETRIEVAL.md).

Three invariants everything downstream leans on:

* **ANN vs oracle** — multi-probe LSH answers agree with the
  brute-force oracle: per-query structural invariants for arbitrary
  queries, and an aggregate recall@10 >= 0.95 gate (tie-aware, the
  ann-benchmarks definition) on held-out recipe queries;
* **embedding determinism** — the same text embeds bit-identically
  under the same config, across texts, orderings and *processes* (a
  fresh interpreter reproduces the fingerprint — CRC hashing, not
  Python's salted ``hash``);
* **RAG-off bit-identity** — ``exemplars=None`` / ``retrieve_k=0``
  generation is bit-identical to the pre-retrieval pipeline: the RAG
  prefix only exists when exemplars are actually passed.
"""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import GenerationConfig
from repro.recipedb import generate_corpus
from repro.retrieval import (EmbeddingConfig, RecipeIndex, TextEmbedder,
                             recall_at_k, recipe_document)

pytestmark = [pytest.mark.property, pytest.mark.retrieval]

_word = st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1,
                max_size=10)
_text = st.lists(_word, min_size=1, max_size=12).map(" ".join)


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(340, seed=23)


@pytest.fixture(scope="module")
def index(corpus):
    from repro.obs import MetricsRegistry
    return RecipeIndex.from_recipes(corpus[:300],
                                    registry=MetricsRegistry())


class TestANNvsOracle:
    @given(query=_text)
    @settings(max_examples=40, deadline=None)
    def test_ann_answer_is_structurally_sound(self, index, query):
        """For ANY query: sorted scores, no better-than-oracle score,
        exact fallback when candidates run short."""
        vector = index.embedder.embed(query)
        approx = index.ann.query(vector, 10)
        exact = index.exact.query(vector, 10)
        scores = approx.scores.tolist()
        assert scores == sorted(scores, reverse=True)
        # The ANN exact-ranks a candidate subset: its best score can
        # never beat the oracle's, and every returned row's score must
        # match a full-precision recompute.
        assert approx.scores[0] <= exact.scores[0] + 1e-5
        recomputed = index.vectors[approx.indices] @ vector
        assert np.allclose(recomputed, approx.scores, atol=1e-5)
        assert approx.candidates_examined <= len(index)

    def test_recall_at_10_gate(self, index, corpus):
        """The ISSUE acceptance gate, test-sized: tie-aware recall@10
        >= 0.95 on held-out recipe queries (the novelty read path)."""
        held_out = corpus[300:]
        total = 0.0
        for recipe in held_out:
            vector = index.embedder.embed(recipe_document(recipe))
            total += recall_at_k(index.ann.query(vector, 10),
                                 index.exact.query(vector, 10), eps=1e-3)
        assert total / len(held_out) >= 0.95

    @given(k=st.integers(min_value=1, max_value=30))
    @settings(max_examples=20, deadline=None)
    def test_result_size_is_min_k_n(self, index, k):
        hits = index.search("garlic chicken stew", k=k)
        assert len(hits) == min(k, len(index))


class TestEmbeddingDeterminism:
    @given(text=_text)
    @settings(max_examples=40, deadline=None)
    def test_embed_is_pure(self, text):
        a = TextEmbedder(EmbeddingConfig(seed=7))
        b = TextEmbedder(EmbeddingConfig(seed=7))
        assert np.array_equal(a.embed(text), b.embed(text))
        # Memoization must not change results: embedding other texts
        # first leaves this text's vector untouched.
        b.embed("unrelated text to warm the cache")
        assert np.array_equal(a.embed(text), b.embed(text))

    @given(texts=st.lists(_text, min_size=1, max_size=6))
    @settings(max_examples=30, deadline=None)
    def test_batch_order_independent(self, texts):
        embedder = TextEmbedder()
        batch = embedder.embed_batch(texts)
        for row, text in zip(batch, texts):
            assert np.array_equal(row, TextEmbedder().embed(text))

    def test_cross_process_fingerprint(self):
        """A fresh interpreter reproduces the exact embedding bytes."""
        texts = ["butter chicken with rice",
                 "<TITLE_START> chocolate cake <TITLE_END>",
                 "miso soup with tofu and scallions"]
        local = TextEmbedder(EmbeddingConfig(seed=5)).fingerprint(texts)
        script = (
            "from repro.retrieval import TextEmbedder, EmbeddingConfig\n"
            f"texts = {texts!r}\n"
            "print(TextEmbedder(EmbeddingConfig(seed=5))"
            ".fingerprint(texts))\n")
        import repro
        src_dir = str(Path(repro.__file__).resolve().parents[1])
        result = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True,
            check=True, env={**os.environ, "PYTHONPATH": src_dir})
        assert result.stdout.strip() == local
        # And a different seed is a different space.
        other = TextEmbedder(EmbeddingConfig(seed=6)).fingerprint(texts)
        assert other != local


@pytest.fixture(scope="module")
def pipeline():
    from repro.core import PipelineConfig, Ratatouille
    from repro.preprocess import preprocess
    from repro.training import TrainingConfig

    texts, _ = preprocess(generate_corpus(30, seed=31))
    config = PipelineConfig(
        model_name="distilgpt2",
        training=TrainingConfig(max_steps=30, batch_size=4, warmup_steps=5,
                                eval_every=10**9))
    return Ratatouille.from_texts(texts, config=config)


class TestRAGOffBitIdentity:
    def test_prepare_prompt_identical_without_exemplars(self, pipeline):
        names = ["chicken", "garlic", "rice"]
        base = pipeline.prepare_prompt(names)
        off = pipeline.prepare_prompt(names, exemplars=None)
        empty = pipeline.prepare_prompt(names, exemplars=[])
        blank = pipeline.prepare_prompt(names, exemplars=["  ", ""])
        assert base[0] == off[0] == empty[0] == blank[0]
        assert base[1] == off[1] == empty[1] == blank[1]

    def test_generation_identical_without_exemplars(self, pipeline):
        names = ["chicken", "garlic"]
        config = GenerationConfig(max_new_tokens=24, seed=9)
        baseline = pipeline.generate(names, generation=config)
        again = pipeline.generate(
            names, generation=GenerationConfig(max_new_tokens=24, seed=9),
            exemplars=None)
        assert baseline.raw_text == again.raw_text

    def test_exemplars_change_prompt_but_not_parse(self, pipeline, index):
        names = ["chicken", "garlic"]
        exemplar_texts = [hit.text for hit
                          in index.search_ingredients(names, k=2)]
        base_text, base_ids, _, _ = pipeline.prepare_prompt(names)
        rag_text, rag_ids, _, _ = pipeline.prepare_prompt(
            names, exemplars=exemplar_texts)
        # The parseable prompt text is unchanged; only the token prompt
        # grows, by a deterministic prefix (prefix-cache friendliness).
        assert rag_text == base_text
        assert len(rag_ids) > len(base_ids)
        assert rag_ids[-len(base_ids):] == base_ids
        again = pipeline.prepare_prompt(names, exemplars=exemplar_texts)
        assert again[1] == rag_ids
