"""Unit tests for LSTM cells and stacks (repro.nn.rnn)."""

import numpy as np
import pytest

from repro.nn import LSTM, LSTMCell, Tensor


@pytest.fixture
def rng():
    return np.random.default_rng(3)


class TestLSTMCell:
    def test_state_shapes(self, rng):
        cell = LSTMCell(4, 8, rng)
        state = cell.initial_state(3)
        assert state.h.shape == (3, 8)
        assert state.c.shape == (3, 8)

    def test_step_shapes(self, rng):
        cell = LSTMCell(4, 8, rng)
        state = cell.initial_state(2)
        new = cell(Tensor(np.ones((2, 4), dtype=np.float32)), state)
        assert new.h.shape == (2, 8)
        assert new.c.shape == (2, 8)

    def test_forget_bias_initialized_to_one(self, rng):
        cell = LSTMCell(4, 8, rng)
        bias = cell.bias.data
        np.testing.assert_allclose(bias[8:16], np.ones(8))
        np.testing.assert_allclose(bias[:8], np.zeros(8))
        np.testing.assert_allclose(bias[16:], np.zeros(16))

    def test_hidden_bounded_by_tanh(self, rng):
        cell = LSTMCell(4, 8, rng)
        state = cell.initial_state(2)
        x = Tensor(rng.standard_normal((2, 4)).astype(np.float32) * 100)
        for _ in range(5):
            state = cell(x, state)
        assert np.abs(state.h.data).max() <= 1.0

    def test_deterministic_from_seed(self):
        a = LSTMCell(4, 8, np.random.default_rng(7))
        b = LSTMCell(4, 8, np.random.default_rng(7))
        np.testing.assert_array_equal(a.weight_ih.data, b.weight_ih.data)
        np.testing.assert_array_equal(a.weight_hh.data, b.weight_hh.data)


class TestLSTMStack:
    def test_requires_layer(self, rng):
        with pytest.raises(ValueError):
            LSTM(4, 8, 0, rng)

    def test_forward_output_shapes(self, rng):
        lstm = LSTM(4, 8, 2, rng)
        inputs = [Tensor(np.ones((3, 4), dtype=np.float32)) for _ in range(5)]
        outputs, states = lstm(inputs)
        assert len(outputs) == 5
        assert outputs[0].shape == (3, 8)
        assert len(states) == 2

    def test_empty_inputs_raise(self, rng):
        with pytest.raises(ValueError):
            LSTM(4, 8, 1, rng)([])

    def test_wrong_state_layers_raise(self, rng):
        lstm = LSTM(4, 8, 2, rng)
        x = [Tensor(np.ones((1, 4), dtype=np.float32))]
        with pytest.raises(ValueError):
            lstm(x, state=lstm.initial_state(1)[:1])

    def test_statefulness_continuation(self, rng):
        """Processing [a, b] at once == processing a then b with state."""
        lstm = LSTM(4, 8, 2, rng)
        a = Tensor(rng.standard_normal((2, 4)).astype(np.float32))
        b = Tensor(rng.standard_normal((2, 4)).astype(np.float32))
        full_out, _ = lstm([a, b])
        out_a, state = lstm([a])
        out_b, _ = lstm([b], state=state)
        np.testing.assert_allclose(full_out[1].data, out_b[0].data, rtol=1e-5)

    def test_step_matches_forward(self, rng):
        lstm = LSTM(4, 8, 1, rng)
        x = Tensor(rng.standard_normal((1, 4)).astype(np.float32))
        out_fwd, _ = lstm([x])
        out_step, _ = lstm.step(x, lstm.initial_state(1))
        np.testing.assert_array_equal(out_fwd[0].data, out_step.data)

    def test_gradients_reach_all_parameters(self, rng):
        lstm = LSTM(4, 8, 2, rng)
        inputs = [Tensor(rng.standard_normal((2, 4)).astype(np.float32))
                  for _ in range(4)]
        outputs, _ = lstm(inputs)
        loss = outputs[-1].sum()
        loss.backward()
        for name, param in lstm.named_parameters():
            assert param.grad is not None, f"no grad for {name}"
            assert np.isfinite(param.grad).all(), f"non-finite grad for {name}"

    def test_gradient_through_time(self, rng):
        """Early inputs influence late outputs (BPTT works)."""
        lstm = LSTM(2, 4, 1, rng)
        x0 = Tensor(rng.standard_normal((1, 2)).astype(np.float32),
                    requires_grad=True)
        rest = [Tensor(rng.standard_normal((1, 2)).astype(np.float32))
                for _ in range(6)]
        outputs, _ = lstm([x0] + rest)
        outputs[-1].sum().backward()
        assert x0.grad is not None
        assert np.abs(x0.grad).sum() > 0
