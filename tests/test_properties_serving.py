"""Hypothesis property tests for the serving engine's equality contract.

The engine promises: for ANY request mix — random prompts, seeds,
stop-token placements, token budgets, co-batched neighbors, prefix-
cache hits — each request's output is bit-identical to the sequential
``models.generate`` path.  These tests throw randomized batches at one
long-lived engine (so the prefix cache stays warm across examples,
which is the hard case) and compare against fresh sequential runs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.models import GenerationConfig, distilgpt2, generate
from repro.obs import NullRegistry, NullTracer
from repro.serving import EngineConfig, InferenceEngine

pytestmark = pytest.mark.property

VOCAB = 24
MODEL = distilgpt2(vocab_size=VOCAB, seed=0, context_length=96)
# Shared across all examples on purpose: accumulated prefix-cache
# state must never change outputs.
ENGINE = InferenceEngine(
    MODEL, EngineConfig(max_batch_size=4, prefix_cache_bytes=1 << 20),
    registry=NullRegistry(), tracer=NullTracer())

# A small token alphabet makes shared prefixes (cache hits) likely.
_token = st.integers(min_value=0, max_value=VOCAB - 1)
_prompt = st.lists(_token, min_size=1, max_size=40)
_config = st.builds(
    GenerationConfig,
    max_new_tokens=st.integers(min_value=1, max_value=12),
    strategy=st.sampled_from(["greedy", "sample"]),
    temperature=st.floats(min_value=0.5, max_value=1.5),
    top_k=st.integers(min_value=0, max_value=10),
    top_p=st.floats(min_value=0.5, max_value=1.0),
    repetition_penalty=st.sampled_from([1.0, 1.2]),
    # Tiny vocab + id 3 makes mid-flight stop-token retirement common.
    stop_token_id=st.sampled_from([None, 3]),
    seed=st.integers(min_value=0, max_value=2 ** 20),
)


def _sequential(prompt, config):
    return generate(MODEL, prompt, config,
                    registry=NullRegistry(), tracer=NullTracer())


class TestEngineEqualsSequential:
    @given(requests=st.lists(st.tuples(_prompt, _config),
                             min_size=1, max_size=5))
    @settings(max_examples=25, deadline=None)
    def test_batched_output_is_bit_identical(self, requests):
        expected = [_sequential(p, c) for p, c in requests]
        handles = [ENGINE.submit(p, c) for p, c in requests]
        actual = [h.result(timeout=120) for h in handles]
        assert actual == expected

    @given(prompt=_prompt, config=_config)
    @settings(max_examples=15, deadline=None)
    def test_warm_cache_replay_is_deterministic(self, prompt, config):
        first = ENGINE.generate(prompt, config)
        second = ENGINE.generate(prompt, config)  # full-prompt cache hit
        assert first == second == _sequential(prompt, config)

    @given(shared=st.lists(_token, min_size=32, max_size=40),
           suffix_a=st.lists(_token, min_size=1, max_size=10),
           suffix_b=st.lists(_token, min_size=1, max_size=10),
           config=_config)
    @settings(max_examples=10, deadline=None)
    def test_shared_prefix_requests_match(self, shared, suffix_a,
                                          suffix_b, config):
        # Two prompts sharing a >= one-chunk prefix: the second rides
        # the first's cached chunks yet must decode identically to a
        # cold sequential run.
        for suffix in (suffix_a, suffix_b):
            prompt = shared + suffix
            assert ENGINE.generate(prompt, config) == _sequential(prompt,
                                                                  config)
