"""Speculative decoding: draft + batched verify, bit-identical greedy.

The load-bearing contracts:

* ``verify_chunk`` scores a proposed chunk in one call with *exactly*
  the logits the sequential ``next_logits`` walk produces, and every
  truncated state it returns resumes exactly like the sequential one;
* speculative greedy decoding — standalone or through the continuous-
  batching engine, alone or sharing a batch — emits the same tokens as
  plain ``models.generate``, bit for bit;
* the vectorized logits processors and the workspace-reusing sampling
  filters compute the same values as their straightforward reference
  implementations.
"""

import numpy as np
import pytest

from repro.models import (ChecklistBonus, GenerationConfig, NGramDraft,
                          RepetitionPenalty, distilgpt2, generate,
                          gpt2_medium)
from repro.models.generation import (_filter_top_k, _filter_top_p, _softmax,
                                     _workspace, prefill_prompt)
from repro.models.lstm import LSTMConfig, LSTMLanguageModel
from repro.models.ngram import NGramLanguageModel
from repro.obs import MetricsRegistry, NullRegistry, NullTracer, render_text
from repro.serving import EngineConfig, InferenceEngine
from repro.serving.engine import _state_nbytes
from repro.webapp.backend import MAX_SPECULATIVE_K, _parse_generation_request

VOCAB = 32


@pytest.fixture(scope="module")
def model():
    gpt2 = distilgpt2(vocab_size=VOCAB, context_length=128)
    gpt2.eval()
    return gpt2


@pytest.fixture(scope="module")
def draft(model):
    # Fitted on the model's own greedy rollouts so proposals actually
    # get accepted; correctness must hold at any acceptance rate.
    rollouts = []
    for seed in range(6):
        prompt = _prompt(seed + 50, 8)
        out = _sequential(model, prompt, GenerationConfig(
            max_new_tokens=40, strategy="greedy", seed=0))
        rollouts.append(prompt + out)
    return NGramDraft.fit(rollouts, VOCAB, order=3)


def _prompt(seed, length):
    rng = np.random.default_rng(seed)
    return [int(t) for t in rng.integers(0, VOCAB, size=length)]


def _sequential(model, prompt, config, processors=()):
    config = GenerationConfig(**{**config.__dict__,
                                 "speculative_k": 0, "draft": None})
    return generate(model, prompt, config, processors=processors,
                    registry=NullRegistry(), tracer=NullTracer())


def _speculative(model, prompt, config, draft, processors=(),
                 registry=None):
    return generate(model, prompt, config, processors=processors,
                    draft=draft,
                    registry=registry or NullRegistry(),
                    tracer=NullTracer())


class TestVerifyChunk:
    @pytest.mark.parametrize("preset,kwargs", [
        (distilgpt2, {"vocab_size": VOCAB, "context_length": 128}),
        (gpt2_medium, {"vocab_size": 16, "context_length": 64}),
    ])
    def test_logits_match_sequential_walk(self, preset, kwargs):
        model = preset(**kwargs)
        model.eval()
        rng = np.random.default_rng(5)
        prompt = [int(t) for t in rng.integers(0, model.vocab_size, size=8)]
        chunk = [int(t) for t in rng.integers(0, model.vocab_size, size=5)]
        _, seq_state = prefill_prompt(model, prompt)
        seq_logits = []
        walk = seq_state
        for token in chunk:
            logits, walk = model.next_logits(np.asarray([token]), walk)
            seq_logits.append(logits[0])

        _, chunk_start = prefill_prompt(model, prompt)
        chunk_logits, states = model.verify_chunk(
            np.asarray([chunk]), chunk_start)
        assert chunk_logits.shape == (1, len(chunk), model.vocab_size)
        for step in range(len(chunk)):
            np.testing.assert_array_equal(chunk_logits[0, step],
                                          seq_logits[step])

    @pytest.mark.parametrize("accepted", [0, 2, 4])
    def test_truncated_states_resume_identically(self, model, accepted):
        # states[t] must continue exactly like a sequential decode that
        # consumed only chunk[:t+1] — the resume path after a partial
        # acceptance.
        prompt = _prompt(11, 9)
        chunk = _prompt(12, 5)
        _, state = prefill_prompt(model, prompt)
        _, states = model.verify_chunk(np.asarray([chunk]), state)

        _, seq_state = prefill_prompt(model, prompt)
        for token in chunk[:accepted + 1]:
            _, seq_state = model.next_logits(np.asarray([token]), seq_state)

        follow = _prompt(13, 4)
        resumed, spec_state = None, states[accepted]
        for token in follow:
            resumed, spec_state = model.next_logits(np.asarray([token]),
                                                    spec_state)
            expected, seq_state = model.next_logits(np.asarray([token]),
                                                    seq_state)
            np.testing.assert_array_equal(resumed, expected)

    def test_default_fallback_for_models_without_fast_path(self):
        # LanguageModel.verify_chunk's default walks next_logits, so
        # any model (here: LSTM) can sit behind a speculative decoder.
        lstm = LSTMLanguageModel(LSTMConfig(vocab_size=16, d_embed=4,
                                            d_hidden=8, num_layers=1,
                                            dropout=0.0))
        prompt = [1, 2, 3]
        chunk = [4, 5, 6]
        _, state = prefill_prompt(lstm, prompt)
        chunk_logits, states = lstm.verify_chunk(np.asarray([chunk]), state)

        _, walk = prefill_prompt(lstm, prompt)
        for step, token in enumerate(chunk):
            logits, walk = lstm.next_logits(np.asarray([token]), walk)
            np.testing.assert_array_equal(chunk_logits[0, step], logits[0])

    def test_context_overflow_raises(self, model):
        prompt = _prompt(1, 126)
        _, state = prefill_prompt(model, prompt)
        with pytest.raises(ValueError):
            model.verify_chunk(np.asarray([[1, 2, 3, 4]]), state)


class TestStandaloneSpeculative:
    @pytest.mark.parametrize("k", [1, 3, 8])
    def test_greedy_bit_identical(self, model, draft, k):
        config = GenerationConfig(max_new_tokens=30, strategy="greedy",
                                  seed=0, speculative_k=k)
        for seed in range(3):
            prompt = _prompt(seed, 6)
            assert _speculative(model, prompt, config, draft) \
                == _sequential(model, prompt, config)

    def test_greedy_with_stop_token_and_penalty(self, model, draft):
        config = GenerationConfig(max_new_tokens=40, strategy="greedy",
                                  repetition_penalty=1.3, stop_token_id=2,
                                  seed=0, speculative_k=4)
        prompt = _prompt(21, 5)
        assert _speculative(model, prompt, config, draft) \
            == _sequential(model, prompt, config)

    def test_greedy_with_checklist_processor(self, model, draft):
        # Stateful processors see every emitted position exactly once,
        # in order, on both paths.
        config = GenerationConfig(max_new_tokens=25, strategy="greedy",
                                  seed=0, speculative_k=4)
        token_sets = [[3, 4], [7], [9, 10, 11]]
        spec = _speculative(model, _prompt(8, 6), config, draft,
                            processors=[ChecklistBonus(token_sets)])
        seq = _sequential(model, _prompt(8, 6), config,
                          processors=[ChecklistBonus(token_sets)])
        assert spec == seq

    def test_context_overflow_falls_back_to_sequential(self, draft):
        # Generation runs past the model's context window: speculation
        # turns itself off and the sliding-window path takes over,
        # still bit-identical.
        small = distilgpt2(vocab_size=VOCAB, context_length=32)
        config = GenerationConfig(max_new_tokens=40, strategy="greedy",
                                  seed=0, speculative_k=4)
        prompt = _prompt(4, 10)
        assert _speculative(small, prompt, config, draft) \
            == _sequential(small, prompt, config)

    def test_sampled_emits_valid_tokens_and_respects_budget(self, model,
                                                            draft):
        config = GenerationConfig(max_new_tokens=20, strategy="sample",
                                  temperature=0.9, top_k=8, seed=7,
                                  speculative_k=4)
        out = _speculative(model, _prompt(30, 6), config, draft)
        assert 0 < len(out) <= 20
        assert all(0 <= t < VOCAB for t in out)

    def test_metrics_recorded(self, model, draft):
        registry = MetricsRegistry()
        config = GenerationConfig(max_new_tokens=20, strategy="greedy",
                                  seed=0, speculative_k=4)
        _speculative(model, _prompt(2, 6), config, draft, registry=registry)
        acceptance = registry.histogram("spec_acceptance_rate").labels(
            path="generate")
        assert acceptance.count > 0
        per_forward = registry.gauge("spec_tokens_per_forward").labels(
            path="generate")
        assert per_forward.value >= 1.0
        text = render_text(registry)
        assert "spec_acceptance_rate" in text
        assert "spec_draft_tokens_total" in text


class TestEngineSpeculative:
    def test_mixed_batch_bit_identical(self, model, draft):
        # Speculative and plain requests, greedy and sampled, sharing
        # the same continuous batch: each comes out exactly as its
        # standalone counterpart; greedy also equals plain sequential.
        requests = []
        for index in range(6):
            config = GenerationConfig(
                max_new_tokens=15 + 5 * (index % 2),
                strategy="greedy" if index % 2 else "sample",
                temperature=0.8, top_k=8, seed=index,
                speculative_k=(0, 3, 5)[index % 3],
                stop_token_id=2 if index >= 4 else None)
            requests.append((_prompt(index, 4 + index), config))
        expected = [_speculative(model, p, c, draft)
                    if c.speculative_k else _sequential(model, p, c)
                    for p, c in requests]
        with InferenceEngine(model, EngineConfig(max_batch_size=4),
                             registry=MetricsRegistry(), tracer=NullTracer(),
                             draft=draft) as engine:
            handles = [engine.submit(p, c) for p, c in requests]
            actual = [h.result(timeout=120) for h in handles]
        assert actual == expected
        for (prompt, config), out in zip(requests, expected):
            if config.strategy == "greedy" and config.speculative_k:
                assert out == _sequential(model, prompt, config)

    def test_engine_metrics_exposed(self, model, draft):
        registry = MetricsRegistry()
        config = GenerationConfig(max_new_tokens=12, strategy="greedy",
                                  seed=0, speculative_k=4)
        with InferenceEngine(model, registry=registry, tracer=NullTracer(),
                             draft=draft) as engine:
            engine.generate(_prompt(1, 6), config)
        text = render_text(registry)
        assert 'spec_acceptance_rate_count{path="engine"}' in text
        assert "engine_tokens_per_forward" in text
        per_forward = registry.gauge("engine_tokens_per_forward").labels()
        assert per_forward.value >= 1.0

    def test_per_request_opt_out_on_speculative_engine(self, model, draft):
        # speculative_k=0 on an engine built with a draft must take the
        # plain path (and stay bit-identical to sequential).
        config = GenerationConfig(max_new_tokens=15, strategy="greedy",
                                  seed=0, speculative_k=0)
        prompt = _prompt(9, 7)
        registry = MetricsRegistry()
        with InferenceEngine(model, registry=registry, tracer=NullTracer(),
                             draft=draft) as engine:
            assert engine.generate(prompt, config) \
                == _sequential(model, prompt, config)
        acceptance = registry.histogram("spec_acceptance_rate").labels(
            path="engine")
        assert acceptance.count == 0


class TestStateNbytes:
    def test_shared_arrays_counted_once(self):
        array = np.zeros(1024, dtype=np.float64)
        assert _state_nbytes([array, array]) == array.nbytes
        assert _state_nbytes({"a": array, "b": [array, array]}) \
            == array.nbytes

    def test_distinct_arrays_summed(self):
        a = np.zeros(100, dtype=np.float64)
        b = np.zeros(50, dtype=np.float32)
        assert _state_nbytes([a, b]) == a.nbytes + b.nbytes

    def test_cyclic_state_terminates(self):
        array = np.ones(10)
        cyclic = [array]
        cyclic.append(cyclic)
        assert _state_nbytes(cyclic) == array.nbytes


def _reference_repetition(logits, generated, penalty):
    """The pre-vectorization implementation, kept as the oracle."""
    if penalty == 1.0 or not generated:
        return logits
    logits = logits.copy()
    seen = np.unique(np.asarray(generated, dtype=np.intp))
    values = logits[seen]
    logits[seen] = np.where(values > 0, values / penalty, values * penalty)
    return logits


def _reference_checklist(logits, generated, token_sets, bonus):
    """The pre-vectorization per-token-loop implementation."""
    logits = logits.copy()
    for token_ids in token_sets:
        if any(t in generated for t in token_ids):
            continue
        for token in token_ids:
            if 0 <= token < logits.shape[0]:
                logits[token] += bonus
    return logits


class TestProcessorEquivalence:
    def test_repetition_penalty_matches_reference(self):
        rng = np.random.default_rng(0)
        processor = RepetitionPenalty(1.4)
        generated = []
        for _ in range(40):  # one instance, monotonically growing history
            generated.append(int(rng.integers(0, 16)))
            logits = rng.normal(size=24)
            np.testing.assert_array_equal(
                processor(logits, generated),
                _reference_repetition(logits, generated, 1.4))

    def test_repetition_penalty_reset_on_shrunk_history(self):
        processor = RepetitionPenalty(2.0)
        logits = np.arange(8, dtype=np.float64) - 4
        processor(logits, [1, 2, 3])
        # A shorter history (a new request reusing the instance) must
        # not keep stale seen-tokens around.
        np.testing.assert_array_equal(
            processor(logits, [5]),
            _reference_repetition(logits, [5], 2.0))

    def test_checklist_bonus_matches_reference(self):
        rng = np.random.default_rng(1)
        token_sets = [[2, 3], [3, 7], [11], [40, 5], [-1, 9]]
        processor = ChecklistBonus(token_sets, bonus=1.5)
        generated = []
        for _ in range(30):
            logits = rng.normal(size=16)
            np.testing.assert_array_equal(
                processor(logits, generated),
                _reference_checklist(logits, generated, token_sets, 1.5))
            generated.append(int(rng.integers(0, 16)))
        assert processor.coverage == pytest.approx(
            sum(any(0 <= t < 16 and t in generated for t in ids)
                for ids in token_sets) / len(token_sets))


class TestWorkspaceFilters:
    def _logits_cases(self):
        rng = np.random.default_rng(2)
        yield rng.normal(size=50)
        yield np.zeros(20)  # all tied
        yield np.repeat(rng.normal(size=5), 8)  # duplicate-heavy

    def test_top_k_with_workspace_matches_allocating(self):
        for logits in self._logits_cases():
            for k in (1, 3, logits.shape[0] - 1):
                ws = _workspace(logits.shape[0])
                np.testing.assert_array_equal(
                    _filter_top_k(logits, k, ws=ws).copy(),
                    _filter_top_k(logits, k))

    def test_top_p_with_workspace_matches_allocating(self):
        for logits in self._logits_cases():
            for p in (0.1, 0.5, 0.95):
                ws = _workspace(logits.shape[0])
                np.testing.assert_array_equal(
                    _filter_top_p(logits, p, ws=ws).copy(),
                    _filter_top_p(logits, p))

    def test_softmax_with_out_matches_allocating(self):
        for logits in self._logits_cases():
            out = np.empty_like(logits)
            np.testing.assert_array_equal(_softmax(logits, out=out),
                                          _softmax(logits))


class TestRequestParsing:
    def test_speculative_k_default_and_override(self):
        payload = {"ingredients": ["garlic"]}
        _, config, _ = _parse_generation_request(payload,
                                                 default_speculative_k=4)
        assert config.speculative_k == 4
        payload["speculative_k"] = 0
        _, config, _ = _parse_generation_request(payload,
                                                 default_speculative_k=4)
        assert config.speculative_k == 0

    def test_speculative_k_over_cap_rejected(self):
        with pytest.raises(ValueError):
            _parse_generation_request(
                {"ingredients": ["garlic"],
                 "speculative_k": MAX_SPECULATIVE_K + 1})


class TestNGramDraft:
    def test_proposals_continue_fitted_sequences(self):
        draft = NGramDraft.fit([[1, 2, 3, 4, 5, 1, 2, 3, 4, 5]], 8, order=3)
        assert draft.propose([1, 2], 3) == [3, 4, 5]

    def test_propose_sampled_returns_distributions(self):
        draft = NGramDraft.fit([[1, 2, 3] * 5], 8, order=2)
        tokens, dists = draft.propose_sampled([1], 4,
                                              np.random.default_rng(0))
        assert len(tokens) == 4 and dists.shape == (4, 8)
        np.testing.assert_allclose(dists.sum(axis=1), 1.0)
        for step, token in enumerate(tokens):
            assert dists[step, token] > 0

    def test_next_distribution_public_api(self):
        model = NGramLanguageModel(12, order=3).fit([[1, 2, 3, 1, 2, 4]])
        dist = model.next_distribution([9, 9, 9, 1, 2])  # long context ok
        assert dist.shape == (12,)
        assert dist[3] > 0 and dist[4] > 0
