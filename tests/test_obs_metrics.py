"""Unit tests for the metrics core (repro.obs.metrics / export / clock)."""

import threading

import pytest

from repro.obs import (Counter, Gauge, Histogram, ManualClock,
                       MetricsRegistry, NullRegistry, SystemClock,
                       get_registry, render_json, render_json_text,
                       render_text, set_registry)


class TestClocks:
    def test_system_clock_monotonic(self):
        clock = SystemClock()
        a, b = clock.now(), clock.now()
        assert b >= a

    def test_manual_clock_advance(self):
        clock = ManualClock(start=10.0)
        assert clock.now() == 10.0
        assert clock.advance(2.5) == 12.5
        assert clock.now() == 12.5

    def test_manual_clock_set(self):
        clock = ManualClock()
        clock.set(5.0)
        assert clock.now() == 5.0

    def test_manual_clock_never_backwards(self):
        clock = ManualClock(start=3.0)
        with pytest.raises(ValueError):
            clock.advance(-1.0)
        with pytest.raises(ValueError):
            clock.set(1.0)


class TestCounter:
    def test_inc(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_thread_safety(self):
        c = Counter()

        def burst():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=burst) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge()
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value == 12.0


class TestHistogram:
    def test_exact_stats(self):
        h = Histogram()
        for v in [1.0, 2.0, 3.0, 4.0]:
            h.observe(v)
        s = h.summary()
        assert s["count"] == 4
        assert s["sum"] == 10.0
        assert s["mean"] == 2.5
        assert s["min"] == 1.0
        assert s["max"] == 4.0

    def test_percentiles(self):
        h = Histogram()
        for v in range(1, 101):
            h.observe(float(v))
        assert h.percentile(50) == pytest.approx(50.5)
        assert h.summary()["p99"] == pytest.approx(99.01)

    def test_empty_summary_is_nan(self):
        s = Histogram().summary()
        assert s["count"] == 0
        assert s["mean"] != s["mean"]  # nan
        assert Histogram().percentile(50) != Histogram().percentile(50)

    def test_reservoir_bounded(self):
        h = Histogram(reservoir_size=16)
        for v in range(10_000):
            h.observe(float(v))
        assert len(h._reservoir) == 16
        assert h.count == 10_000
        # Percentiles stay estimates of the true distribution.
        assert 2000 < h.percentile(50) < 8000

    def test_reservoir_deterministic(self):
        def fill():
            h = Histogram(reservoir_size=8, seed=3)
            for v in range(1000):
                h.observe(float(v))
            return list(h._reservoir)

        assert fill() == fill()

    def test_invalid_reservoir_size(self):
        with pytest.raises(ValueError):
            Histogram(reservoir_size=0)

    def test_time_context_manager(self):
        clock = ManualClock()
        h = Histogram(clock=clock)
        with h.time():
            clock.advance(1.5)
        assert h.summary()["max"] == 1.5

    def test_observe_many_exact_stats_match_scalar(self):
        values = [3.0, 1.0, 4.0, 1.5, 9.0, 2.5]
        batched, scalar = Histogram(), Histogram()
        batched.observe_many(values)
        for v in values:
            scalar.observe(v)
        for key in ("count", "sum", "mean", "min", "max"):
            assert batched.summary()[key] == scalar.summary()[key]

    def test_observe_many_empty_is_noop(self):
        h = Histogram()
        h.observe_many([])
        assert h.count == 0

    def test_observe_many_reservoir_bounded_and_uniform(self):
        h = Histogram(reservoir_size=16)
        h.observe_many([float(v) for v in range(10_000)])
        assert len(h._reservoir) == 16
        assert h.count == 10_000
        assert 2000 < h.percentile(50) < 8000

    def test_observe_many_crosses_fill_boundary(self):
        h = Histogram(reservoir_size=8)
        h.observe_many([float(v) for v in range(5)])
        assert len(h._reservoir) == 5
        h.observe_many([float(v) for v in range(5, 20)])
        assert len(h._reservoir) == 8
        assert h.count == 20

    def test_observe_many_deterministic(self):
        def fill():
            h = Histogram(reservoir_size=8, seed=3)
            h.observe_many([float(v) for v in range(500)])
            h.observe_many([float(v) for v in range(500, 1000)])
            return list(h._reservoir)

        assert fill() == fill()

    def test_observe_many_mixes_with_scalar(self):
        h = Histogram(reservoir_size=4)
        h.observe(1.0)
        h.observe_many([2.0, 3.0, 4.0, 5.0])
        h.observe(6.0)
        assert h.count == 6
        assert h.sum == 21.0
        assert len(h._reservoir) == 4

    def test_family_observe_many_delegates(self):
        r = MetricsRegistry()
        fam = r.histogram("lat")
        fam.observe_many([1.0, 2.0])
        assert fam.summary()["count"] == 2


class TestRegistry:
    def test_idempotent_families(self):
        r = MetricsRegistry()
        assert r.counter("x") is r.counter("x")

    def test_kind_conflict_rejected(self):
        r = MetricsRegistry()
        r.counter("x")
        with pytest.raises(ValueError):
            r.gauge("x")

    def test_invalid_name_rejected(self):
        r = MetricsRegistry()
        with pytest.raises(ValueError):
            r.counter("")
        with pytest.raises(ValueError):
            r.counter("bad name!")

    def test_labels_create_series(self):
        r = MetricsRegistry()
        fam = r.counter("req")
        fam.labels(route="/a").inc()
        fam.labels(route="/a").inc()
        fam.labels(route="/b").inc()
        assert fam.labels(route="/a").value == 2
        assert fam.labels(route="/b").value == 1
        assert len(fam.series()) == 2

    def test_unlabeled_shorthand(self):
        r = MetricsRegistry()
        r.counter("c").inc(3)
        r.gauge("g").set(7)
        r.histogram("h").observe(0.5)
        assert r.counter("c").value == 3
        assert r.gauge("g").value == 7
        assert r.histogram("h").summary()["count"] == 1

    def test_contains_and_families_sorted(self):
        r = MetricsRegistry()
        r.counter("b")
        r.counter("a")
        assert "a" in r and "zzz" not in r
        assert [f.name for f in r.families()] == ["a", "b"]

    def test_reset(self):
        r = MetricsRegistry()
        r.counter("x").inc()
        r.reset()
        assert "x" not in r

    def test_histogram_uses_registry_clock(self):
        clock = ManualClock()
        r = MetricsRegistry(clock=clock)
        h = r.histogram("h")
        with h.time():
            clock.advance(2.0)
        assert h.summary()["max"] == 2.0


class TestDefaultRegistry:
    def test_swap_and_restore(self):
        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            assert get_registry() is fresh
        finally:
            set_registry(previous)
        assert get_registry() is previous


class TestNullRegistry:
    def test_accepts_everything_records_nothing(self):
        r = NullRegistry()
        r.counter("x").inc()
        r.gauge("g").labels(a="b").set(5)
        h = r.histogram("h")
        h.observe(1.0)
        with h.time():
            pass
        assert r.families() == []
        assert h.summary() == {}
        assert h.percentile(50) != h.percentile(50)  # nan
        assert render_text(r) == ""


class TestExposition:
    def _registry(self):
        r = MetricsRegistry(clock=ManualClock())
        r.counter("requests_total", help="reqs").labels(
            route="/a", status="200").inc(3)
        r.gauge("depth").set(4)
        h = r.histogram("lat_seconds")
        for v in (0.1, 0.2, 0.3):
            h.observe(v)
        return r

    def test_text_format(self):
        text = render_text(self._registry())
        assert "# TYPE requests_total counter" in text
        assert '# HELP requests_total reqs' in text
        assert 'requests_total{route="/a",status="200"} 3' in text
        assert "depth 4" in text
        assert "lat_seconds_count 3" in text
        assert 'lat_seconds{quantile="0.5"} 0.2' in text

    def test_json_format(self):
        payload = render_json(self._registry())
        metrics = payload["metrics"]
        assert metrics["requests_total"]["kind"] == "counter"
        series = metrics["requests_total"]["series"][0]
        assert series["labels"] == {"route": "/a", "status": "200"}
        assert series["value"] == 3
        hist = metrics["lat_seconds"]["series"][0]
        assert hist["count"] == 3
        assert hist["p50"] == pytest.approx(0.2)

    def test_json_text_round_trips(self):
        import json
        blob = render_json_text(self._registry())
        assert json.loads(blob)["metrics"]["depth"]["series"][0]["value"] == 4

    def test_nan_renders_as_NaN(self):
        r = MetricsRegistry()
        r.histogram("empty").labels()  # child exists, zero observations
        assert "NaN" in render_text(r)
