"""Unit tests for optimizers and schedules (repro.nn.optim/schedule)."""

import numpy as np
import pytest

from repro.nn import (Adam, AdamW, ConstantLR, CosineWarmupLR, LinearWarmupLR,
                      Parameter, SGD, clip_grad_norm, schedule_from_name)


def quadratic_loss_param(start=5.0):
    """A parameter whose loss is (p - 2)^2 — minimum at p = 2."""
    return Parameter(np.array([start], dtype=np.float32))


def step_quadratic(optimizer, param, n_steps):
    for _ in range(n_steps):
        param.grad = (2.0 * (param.data - 2.0)).astype(np.float32)
        optimizer.step()
        param.grad = None


class TestSGD:
    def test_converges_on_quadratic(self):
        p = quadratic_loss_param()
        step_quadratic(SGD([p], lr=0.1), p, 100)
        assert p.data[0] == pytest.approx(2.0, abs=1e-3)

    def test_momentum_accelerates(self):
        plain = quadratic_loss_param()
        momentum = quadratic_loss_param()
        step_quadratic(SGD([plain], lr=0.01), plain, 20)
        step_quadratic(SGD([momentum], lr=0.01, momentum=0.9), momentum, 20)
        assert abs(momentum.data[0] - 2.0) < abs(plain.data[0] - 2.0)

    def test_skips_none_grads(self):
        p = Parameter(np.ones(2))
        opt = SGD([p], lr=0.1)
        opt.step()  # no grad set
        np.testing.assert_array_equal(p.data, np.ones(2))

    def test_validation(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)
        with pytest.raises(ValueError):
            SGD([Parameter(np.ones(1))], lr=0.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = quadratic_loss_param()
        step_quadratic(Adam([p], lr=0.3), p, 200)
        assert p.data[0] == pytest.approx(2.0, abs=1e-2)

    def test_first_step_size_equals_lr(self):
        # With bias correction the first Adam step is ~lr regardless of
        # gradient magnitude.
        p = Parameter(np.array([0.0], dtype=np.float32))
        opt = Adam([p], lr=0.1)
        p.grad = np.array([1000.0], dtype=np.float32)
        opt.step()
        assert p.data[0] == pytest.approx(-0.1, rel=1e-3)

    def test_l2_weight_decay_changes_update(self):
        a = Parameter(np.array([1.0], dtype=np.float32))
        b = Parameter(np.array([1.0], dtype=np.float32))
        for p, wd in ((a, 0.0), (b, 0.5)):
            opt = Adam([p], lr=0.1, weight_decay=wd)
            p.grad = np.array([0.0], dtype=np.float32)
            opt.step()
        assert a.data[0] == pytest.approx(1.0)
        assert b.data[0] < 1.0


class TestAdamW:
    def test_decay_applies_only_to_matrices(self):
        matrix = Parameter(np.ones((2, 2), dtype=np.float32))
        bias = Parameter(np.ones(2, dtype=np.float32))
        opt = AdamW([matrix, bias], lr=0.1, weight_decay=0.5)
        matrix.grad = np.zeros((2, 2), dtype=np.float32)
        bias.grad = np.zeros(2, dtype=np.float32)
        opt.step()
        assert matrix.data[0, 0] < 1.0
        assert bias.data[0] == pytest.approx(1.0)

    def test_converges(self):
        p = quadratic_loss_param()
        opt = AdamW([p], lr=0.3, weight_decay=0.0)
        step_quadratic(opt, p, 200)
        assert p.data[0] == pytest.approx(2.0, abs=5e-2)


class TestClipGradNorm:
    def test_clips_when_over(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 10.0, dtype=np.float32)
        norm = clip_grad_norm([p], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0, rel=1e-4)

    def test_no_clip_when_under(self):
        p = Parameter(np.zeros(4))
        p.grad = np.full(4, 0.1, dtype=np.float32)
        clip_grad_norm([p], max_norm=100.0)
        np.testing.assert_allclose(p.grad, np.full(4, 0.1))

    def test_empty_returns_zero(self):
        assert clip_grad_norm([Parameter(np.zeros(2))], 1.0) == 0.0


class TestSchedules:
    def test_constant(self):
        sched = ConstantLR(0.5)
        assert sched.lr_at(0) == 0.5
        assert sched.lr_at(10_000) == 0.5

    def test_linear_warmup_then_decay(self):
        sched = LinearWarmupLR(1.0, warmup_steps=10, total_steps=110)
        assert sched.lr_at(0) == pytest.approx(0.1)
        assert sched.lr_at(9) == pytest.approx(1.0)
        assert sched.lr_at(60) == pytest.approx(0.5)
        assert sched.lr_at(110) == pytest.approx(0.0)
        assert sched.lr_at(10_000) == pytest.approx(0.0)

    def test_cosine_endpoints(self):
        sched = CosineWarmupLR(1.0, warmup_steps=0, total_steps=100,
                               final_lr=0.1)
        assert sched.lr_at(0) == pytest.approx(1.0)
        assert sched.lr_at(100) == pytest.approx(0.1)
        # midpoint of cosine = average of endpoints
        assert sched.lr_at(50) == pytest.approx(0.55, abs=1e-6)

    def test_cosine_monotone_after_warmup(self):
        sched = CosineWarmupLR(1.0, warmup_steps=5, total_steps=50)
        values = [sched.lr_at(s) for s in range(5, 50)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_factory(self):
        for name, cls in [("constant", ConstantLR),
                          ("linear", LinearWarmupLR),
                          ("cosine", CosineWarmupLR)]:
            assert isinstance(schedule_from_name(name, 0.1, 5, 50), cls)
        with pytest.raises(ValueError):
            schedule_from_name("exponential", 0.1, 5, 50)

    def test_apply_writes_lr(self):
        p = Parameter(np.zeros(1))
        opt = SGD([p], lr=1.0)
        sched = LinearWarmupLR(1.0, warmup_steps=10, total_steps=20)
        sched.apply(opt, 0)
        assert opt.lr == pytest.approx(0.1)
