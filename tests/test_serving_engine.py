"""Serving engine: batching, streaming, retirement, backpressure, cache.

The load-bearing assertion throughout: whatever shares the batch,
every request's output is bit-identical to the sequential
``models.generate`` path (see ``docs/SERVING.md`` for why that holds).
"""

import threading

import numpy as np
import pytest

from repro.models import GenerationConfig, distilgpt2, generate
from repro.models.lstm import LSTMConfig, LSTMLanguageModel
from repro.obs import MetricsRegistry, NullRegistry, NullTracer, Tracer
from repro.serving import (EngineConfig, EngineQueueFullError,
                           EngineStoppedError, InferenceEngine)

VOCAB = 32


@pytest.fixture(scope="module")
def model():
    return distilgpt2(vocab_size=VOCAB, context_length=128)


def _prompt(seed, length):
    rng = np.random.default_rng(seed)
    return [int(t) for t in rng.integers(0, VOCAB, size=length)]


def _sequential(model, prompt, config):
    return generate(model, prompt, config,
                    registry=NullRegistry(), tracer=NullTracer())


class TestBatchedEqualsSequential:
    def test_concurrent_mixed_requests(self, model):
        requests = [
            (_prompt(i, 3 + 11 * i), GenerationConfig(
                max_new_tokens=8 + 4 * (i % 3),
                strategy="greedy" if i % 2 else "sample",
                temperature=0.8, top_k=8, top_p=0.9,
                seed=i, stop_token_id=2))
            for i in range(6)
        ]
        expected = [_sequential(model, p, c) for p, c in requests]
        with InferenceEngine(model, EngineConfig(max_batch_size=4)) as engine:
            handles = [engine.submit(p, c) for p, c in requests]
            actual = [h.result(timeout=60) for h in handles]
        assert actual == expected

    def test_sync_facade(self, model):
        prompt = _prompt(7, 10)
        config = GenerationConfig(max_new_tokens=10, seed=3)
        expected = _sequential(model, prompt, config)
        with InferenceEngine(model) as engine:
            assert engine.generate(prompt, config) == expected

    def test_unstackable_model_still_batches_scheduling(self):
        lstm = _GatedModel()
        prompts = [[1 + i, 2, 3] for i in range(3)]
        config = GenerationConfig(max_new_tokens=6, seed=0)
        lstm.gate.set()
        expected = [_sequential(lstm, p, config) for p in prompts]
        lstm.gate.clear()
        registry = MetricsRegistry()
        with InferenceEngine(lstm, registry=registry) as engine:
            # Gate the first prefill so all three requests are queued
            # before the first decode step runs.
            handles = [engine.submit(p, config) for p in prompts]
            assert lstm.entered.wait(timeout=10)
            lstm.gate.set()
            assert [h.result(timeout=60) for h in handles] == expected
        # All three ran in the same decode steps (continuous batching),
        # even though LSTM states cannot be stacked.
        occupancy = registry.histogram("engine_batch_occupancy").labels()
        assert occupancy.percentile(50) == 3

    def test_batched_prefill_equals_single(self, model):
        # Equal-length prompts admitted in one wave share batched
        # prefill_stacked trunk calls; outputs must still match the
        # one-at-a-time sequential path bit for bit.
        requests = [(_prompt(100 + i, 50),
                     GenerationConfig(max_new_tokens=6, seed=i))
                    for i in range(5)]
        expected = [_sequential(model, p, c) for p, c in requests]
        registry = MetricsRegistry()
        with InferenceEngine(model, registry=registry) as engine:
            handles = [engine.submit(p, c) for p, c in requests]
            assert [h.result(timeout=60) for h in handles] == expected

    def test_prefill_stacked_matches_prefill_rows(self, model):
        # The model-level contract the engine's batched prefill rests on.
        from repro.models import prefill_prompt
        prompts = [_prompt(60 + i, 48) for i in range(4)]
        singles = [prefill_prompt(model, p) for p in prompts]
        stacked_state = model.stack_states(
            [model.start_state(1) for _ in prompts])
        position = 0
        while position < 48:
            chunk_end = min(48, position + 32)
            ids = np.asarray([p[position:chunk_end] for p in prompts])
            logits, stacked_state = model.prefill_stacked(ids, stacked_state)
            position = chunk_end
        rows = model.split_states(stacked_state, len(prompts))
        for row, (single_logits, single_state) in enumerate(singles):
            np.testing.assert_array_equal(logits[row], single_logits[0])
            for a, b in zip(rows[row].caches, single_state.caches):
                np.testing.assert_array_equal(a.keys, b.keys)
                np.testing.assert_array_equal(a.values, b.values)

    def test_beam_rejected_by_submit_but_served_by_generate(self, model):
        prompt = _prompt(1, 6)
        config = GenerationConfig(strategy="beam", beam_size=2,
                                  max_new_tokens=6)
        expected = _sequential(model, prompt, config)
        with InferenceEngine(model, registry=NullRegistry(),
                             tracer=NullTracer()) as engine:
            with pytest.raises(ValueError, match="beam"):
                engine.submit(prompt, config)
            assert engine.generate(prompt, config) == expected


class TestStreaming:
    def test_tokens_stream_matches_result(self, model):
        prompt = _prompt(5, 8)
        config = GenerationConfig(max_new_tokens=12, seed=9)
        with InferenceEngine(model) as engine:
            handle = engine.submit(prompt, config)
            streamed = list(handle.tokens(timeout=30))
            assert streamed == handle.result(timeout=1)
        assert streamed == _sequential(model, prompt, config)

    def test_stop_token_retires_mid_flight(self, model):
        # One request stops early; the other keeps decoding to its
        # budget — retirement must not disturb the survivor.
        configs = [GenerationConfig(max_new_tokens=20, strategy="greedy",
                                    stop_token_id=None, seed=0),
                   GenerationConfig(max_new_tokens=20, strategy="sample",
                                    stop_token_id=1, temperature=1.5, seed=4)]
        prompts = [_prompt(11, 4), _prompt(12, 4)]
        expected = [_sequential(model, p, c)
                    for p, c in zip(prompts, configs)]
        with InferenceEngine(model) as engine:
            handles = [engine.submit(p, c)
                       for p, c in zip(prompts, configs)]
            assert [h.result(timeout=60) for h in handles] == expected


class TestPrefixCache:
    def test_warm_cache_is_bit_identical(self, model):
        shared = _prompt(42, 40)
        config = GenerationConfig(max_new_tokens=8, seed=5)
        suffixed = shared + _prompt(43, 7)
        cold = _sequential(model, suffixed, config)
        with InferenceEngine(model) as engine:
            engine.generate(shared, config)      # seeds the cache
            warm = engine.generate(suffixed, config)
            assert warm == cold
            stats = engine.prefix_cache.stats
            assert stats.hits >= 1
            assert stats.hit_tokens >= 32  # reused a chunk-aligned prefix

    def test_cache_disabled_by_zero_budget(self, model):
        prompt = _prompt(3, 40)
        config = GenerationConfig(max_new_tokens=4, seed=0)
        with InferenceEngine(model, EngineConfig(prefix_cache_bytes=0)) \
                as engine:
            first = engine.generate(prompt, config)
            second = engine.generate(prompt, config)
            assert first == second == _sequential(model, prompt, config)
            assert engine.prefix_cache.stats.hits == 0
            assert engine.prefix_cache.stats.bytes == 0

    def test_stored_snapshots_own_their_memory(self, model):
        # Regression: snapshots from batched prefill used to be row
        # views into the stacked (batch, heads, capacity, head_dim)
        # buffer, pinning the whole batch alive while the byte budget
        # accounted one row.  Every stored array must own exactly the
        # bytes the cache charged for it.
        from repro.serving.engine import _state_nbytes
        requests = [(_prompt(200 + i, 40),
                     GenerationConfig(max_new_tokens=2, seed=i))
                    for i in range(4)]
        with InferenceEngine(model) as engine:
            handles = [engine.submit(p, c) for p, c in requests]
            for handle in handles:
                handle.result(timeout=60)
            entries = list(engine.prefix_cache._entries.values())
        assert entries
        for entry in entries:
            logits, state = entry.value
            assert _state_nbytes(entry.value) == entry.nbytes
            assert logits.base is None
            for cache in state.caches:
                assert cache.k.base is None          # owns its buffer
                assert cache.k.shape[0] == 1         # one row, not a batch
                assert cache.k.shape[2] == cache.length  # no headroom


class _GatedModel(LSTMLanguageModel):
    """LSTM whose first forward blocks until the test opens the gate."""

    def __init__(self):
        super().__init__(LSTMConfig(vocab_size=16, d_embed=4, d_hidden=8,
                                    num_layers=1, dropout=0.0))
        self.gate = threading.Event()
        self.entered = threading.Event()

    def next_logits(self, ids, state):
        self.entered.set()
        self.gate.wait(timeout=10)
        return super().next_logits(ids, state)


class TestBackpressureAndShutdown:
    def test_queue_full_raises(self):
        gated = _GatedModel()
        engine = InferenceEngine(gated, EngineConfig(max_batch_size=1,
                                                     max_queue=1))
        try:
            config = GenerationConfig(max_new_tokens=2, seed=0)
            first = engine.submit([1, 2], config)   # blocks in prefill
            assert gated.entered.wait(timeout=10)
            second = engine.submit([1, 2], config)  # sits in the queue
            with pytest.raises(EngineQueueFullError):
                engine.submit([1, 2], config)
            gated.gate.set()
            assert first.result(timeout=30) == second.result(timeout=30)
        finally:
            gated.gate.set()
            engine.stop()

    def test_stop_fails_pending_requests(self):
        gated = _GatedModel()
        engine = InferenceEngine(gated, EngineConfig(max_batch_size=1,
                                                     max_queue=4))
        config = GenerationConfig(max_new_tokens=2, seed=0)
        stuck = engine.submit([1, 2], config)
        assert gated.entered.wait(timeout=10)
        queued = engine.submit([3, 4], config)
        gate_release = threading.Timer(0.2, gated.gate.set)
        gate_release.start()
        engine.stop(timeout=30)
        gate_release.cancel()
        gated.gate.set()
        with pytest.raises(EngineStoppedError):
            queued.result(timeout=5)
        with pytest.raises(EngineStoppedError):
            engine.submit([1], config)
        # The in-flight request either finished or was failed — but it
        # is definitely resolved, never left hanging.
        try:
            stuck.result(timeout=5)
        except EngineStoppedError:
            pass

    def test_context_manager_stops_thread(self, model):
        with InferenceEngine(model) as engine:
            assert engine.running
        assert not engine.running

    def test_submit_racing_stop_drain_cannot_hang(self, model):
        # Regression: if stop()'s drain ran between submit's stop check
        # and its queue put, the request was never finished and a
        # result() caller with no timeout blocked forever.  Force that
        # exact interleaving and require submit to fail the request.
        engine = InferenceEngine(model)
        real_put = engine._queue.put_nowait

        def put_after_drain(item):
            engine._queue.put_nowait = real_put  # one-shot hook
            engine.stop()                        # drain sees an empty queue
            real_put(item)                       # request lands post-drain

        engine._queue.put_nowait = put_after_drain
        with pytest.raises(EngineStoppedError):
            engine.submit([1, 2], GenerationConfig(max_new_tokens=2))


class TestCancellation:
    def test_cancel_mid_flight_returns_partial(self, model):
        config = GenerationConfig(max_new_tokens=300, seed=0)
        registry = MetricsRegistry()
        with InferenceEngine(model, registry=registry) as engine:
            handle = engine.submit(_prompt(1, 4), config)
            first = next(handle.tokens(timeout=30))
            handle.cancel()
            tokens = handle.result(timeout=30)
            assert tokens[0] == first
            assert len(tokens) < 300
            # The batch slot is free again: new requests still serve.
            out = engine.generate(_prompt(2, 4),
                                  GenerationConfig(max_new_tokens=3, seed=1))
            assert len(out) == 3
        cancelled = registry.counter("engine_requests_total").labels(
            outcome="cancelled", strategy="plain")
        assert cancelled.value == 1

    def test_cancelled_queued_request_never_decodes(self):
        gated = _GatedModel()
        engine = InferenceEngine(gated, EngineConfig(max_batch_size=1))
        try:
            config = GenerationConfig(max_new_tokens=4, seed=0)
            first = engine.submit([1, 2], config)   # blocks in prefill
            assert gated.entered.wait(timeout=10)
            queued = engine.submit([3, 4], config)
            queued.cancel()
            gated.gate.set()
            assert len(first.result(timeout=30)) == 4
            assert queued.result(timeout=30) == []
        finally:
            gated.gate.set()
            engine.stop()

    def test_cancel_after_done_is_noop(self, model):
        config = GenerationConfig(max_new_tokens=3, seed=2)
        with InferenceEngine(model) as engine:
            handle = engine.submit(_prompt(9, 4), config)
            result = handle.result(timeout=60)
            handle.cancel()
            assert handle.result(timeout=1) == result


class TestValidation:
    def test_invalid_config_rejected_at_submit(self, model):
        with InferenceEngine(model) as engine:
            with pytest.raises(ValueError):
                engine.submit([1], GenerationConfig(temperature=-1.0))
            with pytest.raises(ValueError):
                engine.submit([], GenerationConfig())

    def test_engine_config_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(max_batch_size=0).validate()
        with pytest.raises(ValueError):
            EngineConfig(prefill_chunk=0).validate()
        with pytest.raises(ValueError):
            EngineConfig(max_queue=0).validate()

    def test_stats_shape(self, model):
        with InferenceEngine(model) as engine:
            engine.generate([1, 2, 3], GenerationConfig(max_new_tokens=2))
            stats = engine.stats()
        assert stats["max_batch_size"] == EngineConfig().max_batch_size
        assert set(stats["prefix_cache"]) >= {"hits", "misses", "bytes",
                                              "hit_rate"}


class TestObservability:
    def test_metrics_and_spans_recorded(self, model):
        registry, tracer = MetricsRegistry(), Tracer()
        with InferenceEngine(model, registry=registry,
                             tracer=tracer) as engine:
            handles = [engine.submit(_prompt(i, 6),
                                     GenerationConfig(max_new_tokens=5,
                                                      seed=i))
                       for i in range(3)]
            for handle in handles:
                handle.result(timeout=60)
        completed = registry.counter("engine_requests_total").labels(
            outcome="completed", strategy="plain")
        assert completed.value == 3
        assert registry.counter("engine_tokens_total").labels(
            strategy="plain").value == 15
        assert registry.histogram("engine_ttft_seconds").labels().count == 3
        assert "engine_prefix_cache_hits_total" in registry
        prefills = [span for root in tracer.roots()
                    for span in root.find("engine.prefill")]
        assert len(prefills) == 3
