"""Unit tests for the language models (repro.models.lstm / gpt2 / gpt_neo)."""

import numpy as np
import pytest

from repro.models import (GPT2Config, GPT2Model, GPTNeoConfig, GPTNeoModel,
                          LSTMConfig, LSTMLanguageModel, char_lstm,
                          distilgpt2, gpt2_medium, gpt_neo_small, word_lstm)
from repro.nn import no_grad

VOCAB = 50


def tiny_gpt2(**overrides):
    config = dict(vocab_size=VOCAB, context_length=32, d_model=16,
                  num_layers=2, num_heads=2, d_ff=32, dropout=0.0, seed=0)
    config.update(overrides)
    return GPT2Model(GPT2Config(**config))


def tiny_neo(**overrides):
    config = dict(vocab_size=VOCAB, context_length=32, d_model=16,
                  num_layers=2, num_heads=2, d_ff=32, dropout=0.0,
                  local_window=4, seed=0)
    config.update(overrides)
    return GPTNeoModel(GPTNeoConfig(**config))


ALL_FACTORIES = [
    lambda: LSTMLanguageModel(LSTMConfig(vocab_size=VOCAB, d_embed=8,
                                         d_hidden=16, num_layers=1,
                                         dropout=0.0)),
    tiny_gpt2,
    tiny_neo,
]


@pytest.mark.parametrize("factory", ALL_FACTORIES)
class TestLanguageModelContract:
    def test_forward_shape(self, factory):
        model = factory()
        ids = np.random.default_rng(0).integers(0, VOCAB, (2, 10))
        logits = model(ids)
        assert logits.shape == (2, 10, VOCAB)

    def test_forward_rejects_1d(self, factory):
        model = factory()
        with pytest.raises(ValueError):
            model(np.zeros(5, dtype=np.int64))

    def test_incremental_matches_forward(self, factory):
        """next_logits chained over a sequence == full forward logits."""
        model = factory().eval()
        ids = np.random.default_rng(1).integers(0, VOCAB, (1, 8))
        with no_grad():
            full = model(ids).data[0]
            state = model.start_state(1)
            incremental = []
            for t in range(8):
                logits, state = model.next_logits(ids[:, t], state)
                incremental.append(logits[0])
        np.testing.assert_allclose(full, np.stack(incremental), atol=1e-4)

    def test_config_dict_roundtrip(self, factory):
        from repro.core import build_from_config
        model = factory()
        rebuilt = build_from_config(model.config_dict())
        assert type(rebuilt) is type(model)
        assert rebuilt.num_parameters() == model.num_parameters()

    def test_gradients_reach_every_parameter(self, factory):
        from repro.nn import functional as F
        model = factory().train()
        ids = np.random.default_rng(2).integers(0, VOCAB, (2, 6))
        logits = model(ids)
        loss = F.cross_entropy(logits.reshape(-1, VOCAB),
                               np.zeros(12, dtype=np.int64))
        loss.backward()
        for name, param in model.named_parameters():
            assert param.grad is not None, f"{name} got no gradient"

    def test_deterministic_construction(self, factory):
        a, b = factory(), factory()
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)


class TestGPT2Specifics:
    def test_context_overflow_forward_raises(self):
        model = tiny_gpt2()
        with pytest.raises(ValueError):
            model(np.zeros((1, 33), dtype=np.int64))

    def test_generation_past_context_slides(self):
        """next_logits works beyond context_length via cache eviction."""
        model = tiny_gpt2().eval()
        state = model.start_state(1)
        with no_grad():
            for _ in range(40):  # > context_length 32
                logits, state = model.next_logits(np.array([1]), state)
        assert np.isfinite(logits).all()
        assert state.position <= model.config.context_length

    def test_weight_tying(self):
        """Output head reuses the token embedding matrix."""
        model = tiny_gpt2()
        names = [name for name, _ in model.named_parameters()]
        assert not any("head" in n for n in names)
        # perturbing wte changes logits scale directly
        before = model(np.array([[1, 2]])).data.copy()
        model.wte.weight.data *= 2.0
        after = model(np.array([[1, 2]])).data
        assert not np.allclose(before, after)

    def test_presets_capacity_ordering(self):
        small = distilgpt2(100)
        medium = gpt2_medium(100)
        assert medium.num_parameters() > 2 * small.num_parameters()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GPT2Config(vocab_size=10, d_model=15, num_heads=4).validate()
        with pytest.raises(ValueError):
            GPT2Config(vocab_size=10, dropout=1.5).validate()


class TestGPTNeoSpecifics:
    def test_alternating_attention_types(self):
        from repro.models.gpt_neo import LocalCausalSelfAttention
        model = tiny_neo(num_layers=4)
        kinds = [isinstance(block.attn, LocalCausalSelfAttention)
                 for block in model.blocks]
        assert kinds == [False, True, False, True]

    def test_local_window_limits_attention(self):
        """Tokens beyond the window cannot influence the output."""
        model = tiny_neo(num_layers=2, local_window=2, context_length=32)
        model.eval()
        rng = np.random.default_rng(3)
        ids = rng.integers(0, VOCAB, (1, 12))
        with no_grad():
            base = model(ids).data[0, -1]
            # change a token far outside every window (position 0,
            # distance 11 > window 2) — but note layer 0 is GLOBAL, so
            # distant tokens still matter; verify instead that the model
            # differs from an all-global equivalent
            far = ids.copy()
            far[0, 0] = (far[0, 0] + 1) % VOCAB
            changed = model(far).data[0, -1]
        # global layer 0 carries the information: output should change
        assert not np.allclose(base, changed)

    def test_local_cache_bounded(self):
        model = tiny_neo(local_window=4).eval()
        state = model.start_state(1)
        with no_grad():
            for _ in range(10):
                _, state = model.next_logits(np.array([1]), state)
        local_cache = state.caches[1]  # layer 1 is local
        assert local_cache.seq_len <= 4

    def test_validation(self):
        with pytest.raises(ValueError):
            GPTNeoConfig(vocab_size=10, local_window=0).validate()


class TestPresets:
    def test_char_word_sizes(self):
        assert word_lstm(500).num_parameters() > char_lstm(100).num_parameters()

    def test_gpt_neo_preset_builds(self):
        model = gpt_neo_small(120)
        assert model.vocab_size == 120

    def test_describe_mentions_params(self):
        text = distilgpt2(64).describe()
        assert "params=" in text
