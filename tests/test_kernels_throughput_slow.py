"""Throughput gate for the inference kernels (slow tier).

Runs ``benchmarks/run_decode_kernels.py`` — the engine decoding
through the fp32 inference kernels must beat the Tensor-graph engine
by the configured factor on a greedy workload while producing
bit-identical output.  Excluded from the tier-1 default run; invoke
with ``pytest -m slow``.
"""

import pathlib
import sys

import pytest

pytestmark = [pytest.mark.slow, pytest.mark.kernels]

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent
                       / "benchmarks"))

import run_decode_kernels  # noqa: E402


def test_kernels_clear_throughput_gate():
    assert run_decode_kernels.main(["--rounds", "3"]) == 0
