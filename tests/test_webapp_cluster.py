"""HTTP surface of the replicated fleet: ``--replicas N`` end to end.

Boots the real server with a router-backed backend (two replicas) and
exercises ``/api/cluster``, the fleet-aware ``/api/health``, routed
generation + streaming, the per-replica metric labels, and the
502-on-replica-death → client-retry loop (satellite 2 of ISSUE 5).
"""

import json
from urllib.request import urlopen

import pytest

from repro.core import PipelineConfig, Ratatouille
from repro.obs import MetricsRegistry, Tracer
from repro.preprocess import preprocess
from repro.recipedb import generate_corpus
from repro.resilience import FaultInjector, FaultSpec, inject_faults
from repro.training import TrainingConfig
from repro.webapp import RatatouilleClient, Server, create_backend
from repro.webapp.serve import build_parser

pytestmark = pytest.mark.cluster


@pytest.fixture(scope="module")
def pipeline():
    texts, _ = preprocess(generate_corpus(25, seed=7))
    config = PipelineConfig(
        model_name="distilgpt2",
        training=TrainingConfig(max_steps=20, batch_size=4, warmup_steps=5,
                                eval_every=10**9))
    return Ratatouille.from_texts(texts, config=config)


@pytest.fixture(scope="module")
def registry():
    return MetricsRegistry()


@pytest.fixture(scope="module")
def backend(pipeline, registry):
    app = create_backend(pipeline, registry=registry, tracer=Tracer(),
                         replicas=2)
    with Server(app) as server:
        yield server
    app.engine.stop()


@pytest.fixture(scope="module")
def client(backend):
    return RatatouilleClient(backend.url)


class TestClusterEndpoints:
    def test_health_reports_the_fleet(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["replicas"] == 2
        assert health["healthy"] == 2
        assert health["draining"] == 0

    def test_cluster_endpoint_exposes_fleet_stats(self, client, backend):
        payload = json.loads(urlopen(backend.url + "/api/cluster",
                                     timeout=10).read())
        assert payload["enabled"] is True
        assert set(payload["replicas"]) == {"r0", "r1"}
        for replica in payload["replicas"].values():
            assert replica["state"] == "healthy"
            assert "prefix_cache" in replica
        assert payload["fleet"]["replicas"] == 2
        assert payload["affinity"]["affinity_tokens"] == 32

    def test_generate_routes_through_the_fleet(self, client, backend):
        recipe = client.generate(["garlic", "onion"], seed=5,
                                 max_new_tokens=30)
        assert "title" in recipe and "instructions" in recipe
        stats = backend.app.router.stats()
        assert sum(r["dispatches"] for r in stats["replicas"].values()) >= 1

    def test_seed_determinism_through_the_fleet(self, client):
        a = client.generate(["garlic", "onion"], seed=11, max_new_tokens=25)
        b = client.generate(["garlic", "onion"], seed=11, max_new_tokens=25)
        assert (a["title"], a["instructions"]) == (b["title"],
                                                   b["instructions"])

    def test_stream_matches_blocking_through_the_fleet(self, client):
        options = {"seed": 21, "max_new_tokens": 25}
        blocking = client.generate(["garlic", "onion"], **options)
        events = list(client.generate_stream(["garlic", "onion"], **options))
        final = events[-1]
        assert final.get("done") is True
        assert final["recipe"]["title"] == blocking["title"]
        assert final["recipe"]["instructions"] == blocking["instructions"]

    def test_cluster_metrics_exposed(self, client, backend):
        client.generate(["garlic"], seed=3, max_new_tokens=20)
        with urlopen(backend.url + "/api/metrics?format=text",
                     timeout=10) as response:
            text = response.read().decode("utf-8")
        assert "cluster_dispatches_total" in text
        assert "cluster_affinity_hit_rate" in text
        assert "cluster_replicas_healthy" in text
        assert 'replica="r0"' in text or 'replica="r1"' in text
        # Per-replica engine/cache series from the named engines.
        assert 'engine="r0"' in text or 'engine="r1"' in text
        assert 'cache="r0"' in text or 'cache="r1"' in text

    def test_replica_death_mid_request_is_one_retried_response(
            self, pipeline):
        # Satellite 2's regression: a replica dying mid-request surfaces
        # as a 502, the client RetryPolicy resends the idempotent
        # generate, and exactly one logical (deterministic) response
        # comes back — served by the survivor.
        from repro.cluster import ClusterConfig, Router
        from repro.serving import InferenceEngine

        registry = MetricsRegistry()

        def factory(name):
            return InferenceEngine(pipeline.model, registry=registry,
                                   name=name)

        # max_failovers=0: the router must NOT absorb the death — the
        # crash escapes to the HTTP layer as a 502 so the client-side
        # retry path is what gets exercised.
        router = Router(factory,
                        ClusterConfig(replicas=2, max_failovers=0,
                                      restart_backoff_seconds=0.01,
                                      heartbeat_seconds=0.01),
                        registry=registry)
        app = create_backend(pipeline, registry=registry, tracer=Tracer(),
                             engine=router)
        try:
            with Server(app) as server:
                client = RatatouilleClient(server.url)
                baseline = client.generate(["garlic", "onion"], seed=9,
                                           max_new_tokens=20)
                injector = FaultInjector(
                    {"prefix_cache.get": FaultSpec(schedule={0})})
                with inject_faults(injector):
                    retried = client.generate(["garlic", "onion"], seed=9,
                                              max_new_tokens=20)
                assert (retried["title"],
                        retried["instructions"]) == (baseline["title"],
                                                     baseline["instructions"])
            # The death really happened — the identical response came
            # from the retry, not from a fault that never fired.
            assert registry.counter("engine_crashes_total").value >= 1
        finally:
            router.stop()


class TestServeWiring:
    def test_replicas_flags_parse(self):
        args = build_parser().parse_args(
            ["backend", "--replicas", "3", "--affinity-tokens", "16"])
        assert args.replicas == 3
        assert args.affinity_tokens == 16

    def test_replicas_require_the_engine(self):
        from repro.webapp.serve import build_server
        with pytest.raises(SystemExit):
            build_server(["backend", "--replicas", "2", "--no-engine"])

    def test_backend_rejects_zero_replicas(self, pipeline):
        with pytest.raises(ValueError):
            create_backend(pipeline, replicas=0)
