"""Integration tests for the full preprocessing pipeline."""

import pytest

from repro.preprocess import (PreprocessConfig, PreprocessingPipeline,
                              number_tokens_in, preprocess, structure_errors)
from repro.recipedb import generate_corpus


class TestPipeline:
    def test_clean_corpus_passthrough_counts(self):
        recipes = generate_corpus(50, seed=4)
        texts, report = preprocess(recipes)
        assert report.cleaning.total_in == 50
        assert report.cleaning.kept == 50
        assert report.texts_out == len(texts)
        assert report.invalid_after == 0

    def test_corrupted_corpus_cleaned(self):
        recipes = generate_corpus(50, seed=4, duplicate_rate=0.3,
                                  incomplete_rate=0.2, oversize_rate=0.1)
        texts, report = preprocess(recipes)
        assert report.cleaning.kept == 50
        assert report.cleaning.duplicates_removed > 0
        assert report.cleaning.incomplete_removed > 0
        # every surviving text is structurally valid
        assert report.invalid_after == 0

    def test_cap_enforced(self):
        recipes = generate_corpus(80, seed=4)
        texts, report = preprocess(recipes,
                                   PreprocessConfig(max_chars=800,
                                                    merge_short=False))
        assert all(len(t) <= 800 for t in texts)
        assert report.truncated > 0
        assert report.notes

    def test_number_tokens_present_by_default(self):
        recipes = generate_corpus(5, seed=4)
        texts, _ = preprocess(recipes)
        assert any(number_tokens_in(t) for t in texts)

    def test_number_tokens_disabled(self):
        recipes = generate_corpus(5, seed=4)
        config = PreprocessConfig(number_special_tokens=False)
        texts, _ = preprocess(recipes, config)
        assert all(not number_tokens_in(t) for t in texts)

    def test_serialize_single(self):
        recipe = generate_corpus(1, seed=4)[0]
        pipe = PreprocessingPipeline()
        text = pipe.serialize(recipe)
        assert structure_errors(text) == []

    def test_empty_corpus_raises(self):
        with pytest.raises(ValueError):
            preprocess([])

    def test_all_removed_raises(self):
        import dataclasses
        recipe = generate_corpus(1, seed=0)[0]
        broken = dataclasses.replace(recipe, title="")
        with pytest.raises(ValueError):
            preprocess([broken])

    def test_distributions_recorded(self):
        recipes = generate_corpus(50, seed=4)
        _, report = preprocess(recipes)
        assert report.distribution_before.count == 50
        assert report.distribution_after.count <= 50
        assert report.distribution_before.mean > 0

    def test_deterministic(self):
        recipes = generate_corpus(20, seed=4)
        texts_a, _ = preprocess(recipes)
        texts_b, _ = preprocess(recipes)
        assert texts_a == texts_b
