"""Recall and scaling gate for the retrieval index (slow tier).

Runs ``benchmarks/run_retrieval.py`` — the multi-probe LSH index must
hold tie-aware recall@10 >= 0.95 against the brute-force oracle and
show sub-linear candidate growth across a 4x corpus.  Excluded from
the tier-1 default run; invoke with ``pytest -m slow``.
"""

import pathlib
import sys

import pytest

pytestmark = [pytest.mark.slow, pytest.mark.retrieval]

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent
                       / "benchmarks"))

import run_retrieval  # noqa: E402


def test_retrieval_clears_recall_and_scaling_gates():
    assert run_retrieval.main(["--rounds", "2"]) == 0
