"""HTTP-layer durability: journaled 202s, idempotency keys, restart
replay, draining and graceful shutdown (docs/DURABILITY.md).

Everything runs in-process through ``app.dispatch`` against real
journal/spill directories — the same code paths ``repro serve
--journal-dir --spill-dir`` exercises, minus the socket.
"""

import json
import time

import pytest

from repro.core import PipelineConfig, Ratatouille
from repro.durability import JobJournal
from repro.obs import MetricsRegistry
from repro.training import TrainingConfig
from repro.webapp import Request, create_backend

pytestmark = pytest.mark.durability

PAYLOAD = {"ingredients": ["garlic", "rice"], "strategy": "greedy",
           "max_new_tokens": 8, "seed": 0}


@pytest.fixture(scope="module")
def pipeline():
    config = PipelineConfig(
        model_name="word-lstm",
        training=TrainingConfig(max_steps=5, batch_size=4, eval_every=10**9))
    return Ratatouille.quickstart(model_name="word-lstm", num_recipes=30,
                                  seed=0, config=config)


def _post(app, path, payload, headers=None):
    return app.dispatch(Request(method="POST", path=path, query={},
                                headers=headers or {},
                                body=json.dumps(payload).encode("utf-8")))


def _get(app, path, query=None):
    return app.dispatch(Request(method="GET", path=path,
                                query=query or {}, headers={}, body=b""))


def _body(response):
    return json.loads(response.body.decode("utf-8"))


def _poll(app, job_id, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        body = _body(_get(app, "/api/job", {"id": [job_id]}))
        if body.get("status") in ("done", "failed"):
            return body
        time.sleep(0.02)
    raise TimeoutError(f"job {job_id} still pending after {timeout}s")


def _backend(pipeline, tmp_path, **kwargs):
    kwargs.setdefault("journal_dir", tmp_path / "journal")
    return create_backend(pipeline, registry=MetricsRegistry(), **kwargs)


def _audit(tmp_path):
    with JobJournal(tmp_path / "journal", fsync=False) as journal:
        return journal.replay()


class TestJournaledAcknowledgement:
    def test_202_means_on_disk(self, pipeline, tmp_path):
        app = _backend(pipeline, tmp_path)
        try:
            response = _post(app, "/api/generate_async", PAYLOAD)
            assert response.status == 202
            job_id = _body(response)["job_id"]
            # The acceptance hit the journal before the 202 left.
            assert job_id in _audit(tmp_path).accepted
            result = _poll(app, job_id)
            assert result["status"] == "done"
            assert _audit(tmp_path).completed[job_id]["status"] == "done"
        finally:
            app.shutdown_gracefully()

    def test_health_reports_durability(self, pipeline, tmp_path):
        app = _backend(pipeline, tmp_path, spill_dir=tmp_path / "spill")
        try:
            body = _body(_get(app, "/api/health"))
            assert body["durability"] == {"journal": True, "spill": True}
            assert body["lifecycle"] == "serving"
        finally:
            app.shutdown_gracefully()


class TestIdempotencyKeys:
    def test_retried_submit_never_double_executes(self, pipeline, tmp_path):
        app = _backend(pipeline, tmp_path)
        try:
            first = _body(_post(app, "/api/generate_async", PAYLOAD,
                                headers={"idempotency-key": "retry-1"}))
            second = _body(_post(app, "/api/generate_async", PAYLOAD,
                                 headers={"idempotency-key": "retry-1"}))
            assert second["job_id"] == first["job_id"]
            assert second["deduplicated"] is True
            _poll(app, first["job_id"])
            # Retry after completion still maps to the same job.
            third = _body(_post(app, "/api/generate_async", PAYLOAD,
                                headers={"idempotency-key": "retry-1"}))
            assert third["job_id"] == first["job_id"]
            assert third["status"] == "done"
            state = _audit(tmp_path)
            assert len(state.accepted) == 1
            assert state.duplicate_completions == 0
        finally:
            app.shutdown_gracefully()

    def test_payload_field_spells_the_key_too(self, pipeline, tmp_path):
        app = _backend(pipeline, tmp_path)
        try:
            payload = dict(PAYLOAD, idempotency_key="field-key")
            first = _body(_post(app, "/api/generate_async", payload))
            second = _body(_post(app, "/api/generate_async", payload))
            assert second["job_id"] == first["job_id"]
        finally:
            app.shutdown_gracefully()

    def test_dedup_works_without_a_journal(self, pipeline):
        app = create_backend(pipeline, registry=MetricsRegistry())
        try:
            first = _body(_post(app, "/api/generate_async", PAYLOAD,
                                headers={"idempotency-key": "mem-only"}))
            second = _body(_post(app, "/api/generate_async", PAYLOAD,
                                 headers={"idempotency-key": "mem-only"}))
            assert second["job_id"] == first["job_id"]
            assert second["deduplicated"] is True
        finally:
            app.shutdown_gracefully()

    def test_distinct_keys_are_distinct_jobs(self, pipeline, tmp_path):
        app = _backend(pipeline, tmp_path)
        try:
            first = _body(_post(app, "/api/generate_async", PAYLOAD,
                                headers={"idempotency-key": "a"}))
            second = _body(_post(app, "/api/generate_async", PAYLOAD,
                                 headers={"idempotency-key": "b"}))
            assert second["job_id"] != first["job_id"]
        finally:
            app.shutdown_gracefully()


class TestRestartReplay:
    def test_completed_results_survive_restart(self, pipeline, tmp_path):
        app = _backend(pipeline, tmp_path)
        job_id = _body(_post(app, "/api/generate_async", PAYLOAD,
                             headers={"idempotency-key": "warm"}))["job_id"]
        before = _poll(app, job_id)
        app.shutdown_gracefully()

        reborn = _backend(pipeline, tmp_path)
        try:
            assert reborn.replay_summary["restored"] >= 1
            after = _body(_get(reborn, "/api/job", {"id": [job_id]}))
            assert after["restored"] is True
            assert after["result"] == before["result"]
            # The idempotency key folded out of the journal too.
            again = _body(_post(reborn, "/api/generate_async", PAYLOAD,
                                headers={"idempotency-key": "warm"}))
            assert again["job_id"] == job_id
            assert again["deduplicated"] is True
        finally:
            reborn.shutdown_gracefully()

    def test_incomplete_job_replays_to_done(self, pipeline, tmp_path):
        # A journal a crashed process left behind: accepted, never run.
        with JobJournal(tmp_path / "journal") as journal:
            journal.append_accepted("ghost-job", PAYLOAD)
        app = _backend(pipeline, tmp_path)
        try:
            assert app.replay_summary["replayed"] == 1
            result = _poll(app, "ghost-job")
            assert result["status"] == "done"
            assert "instructions" in result["result"]
            assert (_audit(tmp_path).completed["ghost-job"]["status"]
                    == "done")
        finally:
            app.shutdown_gracefully()

    def test_replayed_output_is_bit_identical(self, pipeline, tmp_path):
        app = _backend(pipeline, tmp_path)
        job_id = _body(_post(app, "/api/generate_async", PAYLOAD))["job_id"]
        direct = _poll(app, job_id)["result"]
        app.shutdown_gracefully()

        with JobJournal(tmp_path / "replay-journal") as journal:
            journal.append_accepted("redo", PAYLOAD)
        reborn = create_backend(pipeline, registry=MetricsRegistry(),
                                journal_dir=tmp_path / "replay-journal")
        try:
            replayed = _poll(reborn, "redo")["result"]
            for field in ("title", "ingredients", "instructions"):
                assert replayed[field] == direct[field]
        finally:
            reborn.shutdown_gracefully()

    def test_malformed_journal_record_resolves_failed(self, pipeline,
                                                      tmp_path):
        with JobJournal(tmp_path / "journal") as journal:
            journal.append_accepted("bad-job", {"ingredients": []})
        app = _backend(pipeline, tmp_path)
        try:
            assert app.replay_summary["replay_failed"] == 1
            body = _body(_get(app, "/api/job", {"id": ["bad-job"]}))
            assert body["status"] == "failed"
            assert "replay rejected" in body["error"]
        finally:
            app.shutdown_gracefully()


class TestJournalFaults:
    def test_append_fault_sheds_503_nothing_acknowledged(self, pipeline,
                                                         tmp_path):
        from repro.resilience import FaultInjector, FaultSpec, inject_faults

        app = _backend(pipeline, tmp_path)
        try:
            injector = FaultInjector(
                {"journal.append": FaultSpec(schedule={0})})
            with inject_faults(injector):
                response = _post(app, "/api/generate_async", PAYLOAD,
                                 headers={"idempotency-key": "faulted"})
            assert response.status == 503
            assert response.headers.get("Retry-After") == "1"
            assert _audit(tmp_path).accepted == {}
            # The idempotency key was released with the refusal: the
            # client's retry gets a fresh job, not the dead one.
            retry = _post(app, "/api/generate_async", PAYLOAD,
                          headers={"idempotency-key": "faulted"})
            assert retry.status == 202
            assert "deduplicated" not in _body(retry)
        finally:
            app.shutdown_gracefully()

    def test_duplicate_during_inflight_submit_gets_retryable_503(
            self, pipeline, tmp_path):
        # A duplicate that lands while the original submit is still in
        # flight must NOT be handed the provisional job id — if that
        # submit then fails (here: journal fault) the duplicate's
        # client would poll a job that never exists.  It sheds 503.
        from repro.resilience import FaultInjector, FaultSpec, inject_faults

        app = _backend(pipeline, tmp_path)
        responses = {}

        def racing_duplicate(_seconds):
            # Runs mid-submit of the first request: after its
            # provisional idempotency claim, before its journal append
            # resolves — exactly the race window.
            if "dup" not in responses:
                responses["dup"] = _post(
                    app, "/api/generate_async", PAYLOAD,
                    headers={"idempotency-key": "race"})

        try:
            injector = FaultInjector(
                {"journal.append": FaultSpec(schedule={0},
                                             delay_seconds=0.001)},
                sleep=racing_duplicate)
            with inject_faults(injector):
                first = _post(app, "/api/generate_async", PAYLOAD,
                              headers={"idempotency-key": "race"})
            assert first.status == 503  # the journal fault refused it
            dup = responses["dup"]
            assert dup.status == 503
            assert dup.headers.get("Retry-After") == "1"
            assert "job_id" not in _body(dup)
            # The failed submit released the key; a clean retry works.
            retry = _post(app, "/api/generate_async", PAYLOAD,
                          headers={"idempotency-key": "race"})
            assert retry.status == 202
            assert "deduplicated" not in _body(retry)
        finally:
            app.shutdown_gracefully()


class TestDrainAndShutdown:
    def test_draining_sheds_503_with_retry_after(self, pipeline, tmp_path):
        app = _backend(pipeline, tmp_path)
        try:
            app.begin_drain()
            response = _post(app, "/api/generate_async", PAYLOAD)
            assert response.status == 503
            assert response.headers.get("Retry-After") == "1"
            sync = _post(app, "/api/generate", PAYLOAD)
            assert sync.status == 503
            assert _body(_get(app, "/api/health"))["status"] == "draining"
        finally:
            app.shutdown_gracefully()

    def test_graceful_shutdown_flushes_and_is_idempotent(self, pipeline,
                                                         tmp_path):
        app = _backend(pipeline, tmp_path, spill_dir=tmp_path / "spill")
        job_id = _body(_post(app, "/api/generate_async", PAYLOAD))["job_id"]
        summary = app.shutdown_gracefully(deadline_seconds=30.0)
        assert summary["drained"] is True
        assert summary["jobs_abandoned"] == 0
        assert summary["spilled"] is True
        assert summary["journal"]["rotations"] == 1
        # Idempotent: the SIGTERM handler racing an atexit hook is fine.
        assert app.shutdown_gracefully() is summary
        # The in-flight job completed before the engine stopped.
        assert _audit(tmp_path).completed[job_id]["status"] == "done"

    def test_shutdown_summary_reports_failed_spill_honestly(self, pipeline,
                                                            tmp_path):
        # Supervisor path: stop() attempts the spill itself.  When the
        # save fails, the summary must say so instead of claiming a
        # warm snapshot that does not exist.
        from repro.resilience import (FaultInjector, FaultSpec,
                                      ResilienceConfig, inject_faults)

        app = _backend(pipeline, tmp_path, spill_dir=tmp_path / "spill",
                       resilience=ResilienceConfig(supervise=True))
        injector = FaultInjector({"spill.save": FaultSpec(rate=1.0)})
        with inject_faults(injector):
            summary = app.shutdown_gracefully(deadline_seconds=30.0)
        assert summary["spilled"] is False
        assert not (tmp_path / "spill" / "CURRENT").exists()

    def test_warm_cache_after_restart(self, pipeline, tmp_path):
        app = _backend(pipeline, tmp_path, spill_dir=tmp_path / "spill")
        for _ in range(2):
            assert _post(app, "/api/generate", PAYLOAD).status == 200
        app.shutdown_gracefully()

        reborn = _backend(pipeline, tmp_path, spill_dir=tmp_path / "spill")
        try:
            assert reborn.engine.prefix_cache.stats.entries > 0
        finally:
            reborn.shutdown_gracefully()
