"""Resilience primitives: fault injection and admission control.

The deterministic pieces of the failure envelope — the chaos suite
(``test_chaos.py``) composes them against the full serving stack.
"""

import pytest

from repro.obs import MetricsRegistry
from repro.resilience import (FAULT_POINTS, AdmissionController,
                              FaultInjector, FaultSpec, InjectedFault,
                              OverloadShedError, ResilienceConfig,
                              fault_check, get_fault_injector,
                              inject_faults, set_fault_injector)


class TestFaultInjector:
    def test_schedule_fires_at_exact_indices(self):
        injector = FaultInjector(
            {"model.forward": FaultSpec(schedule={1, 3})})
        outcomes = []
        for _ in range(5):
            try:
                injector.check("model.forward")
                outcomes.append(None)
            except InjectedFault as exc:
                outcomes.append(exc.index)
        assert outcomes == [None, 1, None, 3, None]

    def test_rate_plan_is_deterministic_per_seed(self):
        def run(seed):
            injector = FaultInjector(
                {"jobs.worker": FaultSpec(rate=0.5)}, seed=seed)
            fired = []
            for i in range(40):
                try:
                    injector.check("jobs.worker")
                except InjectedFault:
                    fired.append(i)
            return fired

        assert run(7) == run(7)
        assert run(7) != run(8)
        assert run(7)  # a 0.5 rate over 40 calls fires at least once

    def test_points_draw_independent_streams(self):
        # Adding calls at one point must not perturb another's schedule.
        solo = FaultInjector({"model.forward": FaultSpec(rate=0.3)}, seed=1)
        mixed = FaultInjector({"model.forward": FaultSpec(rate=0.3),
                               "jobs.worker": FaultSpec(rate=0.9)}, seed=1)

        def pattern(injector, interleave):
            fired = []
            for i in range(30):
                if interleave:
                    try:
                        injector.check("jobs.worker")
                    except InjectedFault:
                        pass
                try:
                    injector.check("model.forward")
                except InjectedFault:
                    fired.append(i)
            return fired

        assert pattern(solo, False) == pattern(mixed, True)

    def test_max_faults_caps_raises(self):
        injector = FaultInjector(
            {"model.forward": FaultSpec(rate=1.0, max_faults=2)})
        raised = 0
        for _ in range(10):
            try:
                injector.check("model.forward")
            except InjectedFault:
                raised += 1
        assert raised == 2
        assert injector.snapshot()["model.forward"]["faults"] == 2

    def test_delay_uses_injected_sleeper(self):
        slept = []
        injector = FaultInjector(
            {"framework.write": FaultSpec(delay_seconds=0.25)},
            sleep=slept.append)
        injector.check("framework.write")  # delay without fault
        assert slept == [0.25]
        assert injector.snapshot()["framework.write"]["delayed"] == 1

    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError, match="unknown fault point"):
            FaultInjector({"model.fwrward": FaultSpec(rate=1.0)})

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(rate=1.5)
        with pytest.raises(ValueError):
            FaultSpec(delay_seconds=-1)
        with pytest.raises(ValueError):
            FaultSpec(max_faults=-1)

    def test_fault_check_is_noop_without_injector(self):
        assert get_fault_injector() is None
        for point in FAULT_POINTS:
            fault_check(point)  # must not raise

    def test_inject_faults_scopes_and_restores(self):
        outer = FaultInjector({})
        previous = set_fault_injector(outer)
        try:
            inner = FaultInjector(
                {"model.forward": FaultSpec(schedule={0})})
            with inject_faults(inner):
                assert get_fault_injector() is inner
                with pytest.raises(InjectedFault):
                    fault_check("model.forward")
            assert get_fault_injector() is outer
        finally:
            set_fault_injector(previous)


class TestAdmissionController:
    def test_admits_below_watermark_and_sheds_above(self):
        gate = AdmissionController(100, registry=MetricsRegistry())
        gate.try_acquire(60)
        gate.try_acquire(40)  # exactly at the watermark
        with pytest.raises(OverloadShedError):
            gate.try_acquire(1)
        assert gate.queued_tokens == 100

    def test_idle_gate_admits_an_oversized_request(self):
        # A request larger than the watermark must not starve forever.
        gate = AdmissionController(50, registry=MetricsRegistry())
        gate.try_acquire(500)
        with pytest.raises(OverloadShedError):
            gate.try_acquire(1)
        gate.release(500)
        gate.try_acquire(500)  # idle again: admitted again

    def test_release_reopens_the_gate(self):
        gate = AdmissionController(100, registry=MetricsRegistry())
        gate.try_acquire(100)
        with pytest.raises(OverloadShedError):
            gate.try_acquire(10)
        gate.release(100)
        gate.try_acquire(10)
        assert gate.queued_tokens == 10

    def test_retry_after_scales_with_backlog(self):
        gate = AdmissionController(100, tokens_per_second_hint=100.0,
                                   registry=MetricsRegistry())
        gate.try_acquire(100)
        with pytest.raises(OverloadShedError) as small:
            gate.try_acquire(10)
        gate.try_acquire(0)  # no-op cost, keeps gate busy
        with pytest.raises(OverloadShedError) as big:
            gate.try_acquire(1000)
        assert small.value.retry_after >= 1
        assert big.value.retry_after >= small.value.retry_after

    def test_would_shed_is_read_only(self):
        gate = AdmissionController(100, registry=MetricsRegistry())
        assert not gate.would_shed(1000)  # idle: one oversized admit
        gate.try_acquire(90)
        assert gate.would_shed(20)
        assert not gate.would_shed(10)
        assert gate.queued_tokens == 90  # probing changed nothing

    def test_metrics_and_stats(self):
        registry = MetricsRegistry()
        gate = AdmissionController(100, registry=registry)
        gate.try_acquire(80)
        with pytest.raises(OverloadShedError):
            gate.try_acquire(80)
        stats = gate.stats()
        assert stats["admitted_total"] == 1
        assert stats["shed_total"] == 1
        assert registry.gauge("admission_queued_tokens").labels().value == 80

    def test_release_never_goes_negative(self):
        gate = AdmissionController(100, registry=MetricsRegistry())
        gate.release(50)
        assert gate.queued_tokens == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(0, registry=MetricsRegistry())
        with pytest.raises(ValueError):
            AdmissionController(10, tokens_per_second_hint=0,
                                registry=MetricsRegistry())
        gate = AdmissionController(10, registry=MetricsRegistry())
        with pytest.raises(ValueError):
            gate.try_acquire(-1)


class TestResilienceConfig:
    def test_defaults_are_inert(self):
        config = ResilienceConfig()
        assert config.default_deadline_ms is None
        assert config.shed_watermark_tokens is None
        assert not config.supervise

    def test_validation(self):
        with pytest.raises(ValueError):
            ResilienceConfig(default_deadline_ms=0)
        with pytest.raises(ValueError):
            ResilienceConfig(shed_watermark_tokens=0)
        with pytest.raises(ValueError):
            ResilienceConfig(max_restarts=-1)
        with pytest.raises(ValueError):
            ResilienceConfig(restart_backoff_seconds=-0.1)
