"""Backend serving integration: validation 400s, streaming, engine stats.

Spins up the real HTTP server with an engine-backed backend and
exercises the serving surface the way a browser would.
"""

import json
from urllib.request import urlopen

import pytest

from repro.core import PipelineConfig, Ratatouille
from repro.models import GenerationConfig
from repro.obs import MetricsRegistry, Tracer
from repro.preprocess import preprocess
from repro.recipedb import generate_corpus
from repro.training import TrainingConfig
from repro.webapp import ApiError, RatatouilleClient, Server, create_backend
from repro.webapp.backend import MAX_NEW_TOKENS_CAP, _parse_generation_request


@pytest.fixture(scope="module")
def pipeline():
    texts, _ = preprocess(generate_corpus(25, seed=7))
    config = PipelineConfig(
        model_name="distilgpt2",
        training=TrainingConfig(max_steps=20, batch_size=4, warmup_steps=5,
                                eval_every=10**9))
    return Ratatouille.from_texts(texts, config=config)


@pytest.fixture(scope="module")
def registry():
    return MetricsRegistry()


@pytest.fixture(scope="module")
def backend(pipeline, registry):
    app = create_backend(pipeline, registry=registry, tracer=Tracer())
    with Server(app) as server:
        yield server
    app.engine.stop()


@pytest.fixture(scope="module")
def client(backend):
    return RatatouilleClient(backend.url)


class TestValidation:
    @pytest.mark.parametrize("payload", [
        {"ingredients": []},
        {"ingredients": "garlic"},
        {"ingredients": ["x"], "temperature": 0},
        {"ingredients": ["x"], "temperature": "hot"},
        {"ingredients": ["x"], "top_k": -1},
        {"ingredients": ["x"], "top_p": 0},
        {"ingredients": ["x"], "top_p": 1.5},
        {"ingredients": ["x"], "max_new_tokens": 0},
        {"ingredients": ["x"], "max_new_tokens": MAX_NEW_TOKENS_CAP + 1},
        {"ingredients": ["x"], "max_new_tokens": None},
        {"ingredients": ["x"], "strategy": "magic"},
        {"ingredients": ["x"], "length_penalty": 3.0},
        {"ingredients": ["x"], "repetition_penalty": 0.5},
        {"ingredients": ["x"], "beam_size": 0},
        {"ingredients": ["x"] * 21},
    ])
    def test_bad_payloads_are_400(self, payload):
        with pytest.raises(ValueError):
            _parse_generation_request(payload)

    def test_http_status_is_400(self, client):
        with pytest.raises(ApiError) as excinfo:
            client.generate(["garlic"], temperature=-2.0)
        assert excinfo.value.status == 400
        with pytest.raises(ApiError) as excinfo:
            client.generate(["garlic"], max_new_tokens=10**6)
        assert excinfo.value.status == 400

    def test_cap_boundary_is_accepted(self):
        names, config, _ = _parse_generation_request(
            {"ingredients": ["x"], "max_new_tokens": MAX_NEW_TOKENS_CAP})
        assert config.max_new_tokens == MAX_NEW_TOKENS_CAP

    def test_length_penalty_round_trips(self):
        _, config, _ = _parse_generation_request(
            {"ingredients": ["x"], "strategy": "beam", "beam_size": 2,
             "length_penalty": 1.1})
        assert config.length_penalty == 1.1
        config.validate()


class TestEngineBackedGeneration:
    def test_generate_round_trip(self, client):
        recipe = client.generate(["chicken breast", "garlic"],
                                 seed=5, max_new_tokens=40)
        assert "instructions" in recipe and "title" in recipe

    def test_seed_determinism_through_engine(self, client):
        a = client.generate(["garlic", "onion"], seed=11, max_new_tokens=30)
        b = client.generate(["garlic", "onion"], seed=11, max_new_tokens=30)
        assert a["title"] == b["title"]
        assert a["instructions"] == b["instructions"]

    def test_beam_request_served_via_fallback(self, client):
        recipe = client.generate(["garlic"], strategy="beam", beam_size=2,
                                 max_new_tokens=12, length_penalty=1.0)
        assert "instructions" in recipe

    def test_stream_endpoint_matches_blocking_endpoint(self, client):
        options = {"seed": 21, "max_new_tokens": 25}
        blocking = client.generate(["garlic", "onion"], **options)
        events = list(client.generate_stream(["garlic", "onion"], **options))
        tokens = [e for e in events if "token" in e]
        final = events[-1]
        assert final.get("done") is True
        assert len(tokens) >= 1
        assert "".join(e["text"] for e in tokens).strip()
        assert final["recipe"]["title"] == blocking["title"]
        assert final["recipe"]["instructions"] == blocking["instructions"]

    def test_stream_validates_payload(self, client):
        with pytest.raises(ApiError) as excinfo:
            list(client.generate_stream(["garlic"], temperature=-1))
        assert excinfo.value.status == 400

    def test_stream_rejects_beam(self, client):
        with pytest.raises(ApiError) as excinfo:
            list(client.generate_stream(["garlic"], strategy="beam"))
        assert excinfo.value.status == 400

    def test_engine_stats_endpoint(self, client):
        stats = client.engine_stats()
        assert stats["enabled"] is True
        assert stats["max_batch_size"] >= 1
        assert "prefix_cache" in stats

    def test_health_reports_fleet_of_one(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["replicas"] == 1
        assert health["healthy"] == 1
        assert health["draining"] == 0

    def test_cluster_endpoint_disabled_for_single_engine(self, backend):
        payload = json.loads(urlopen(backend.url + "/api/cluster",
                                     timeout=10).read())
        assert payload == {"enabled": False}

    def test_engine_metrics_exposed(self, backend, registry):
        with urlopen(backend.url + "/api/metrics?format=text",
                     timeout=10) as response:
            text = response.read().decode("utf-8")
        assert "engine_requests_total" in text
        assert "engine_batch_occupancy" in text
        assert "engine_prefix_cache_hit_rate" in text
        assert "engine_ttft_seconds" in text
        payload = json.loads(urlopen(backend.url + "/api/metrics",
                                     timeout=10).read())
        names = set(payload["metrics"])
        assert {"engine_tokens_total", "engine_queue_wait_seconds"} <= names


class TestStreamCancellation:
    def test_abandoned_stream_cancels_engine_request(self, pipeline):
        # Closing the response stream (what the framework does when the
        # client disconnects mid-write) must cancel the engine request,
        # not leave it decoding to max_new_tokens in an occupied slot.
        import time

        from repro.webapp.framework import Request

        registry = MetricsRegistry()
        app = create_backend(pipeline, registry=registry, tracer=Tracer())
        try:
            payload = {"ingredients": ["garlic"], "max_new_tokens": 300,
                       "seed": 0}
            response = app.dispatch(Request(
                method="POST", path="/api/generate_stream", query={},
                headers={}, body=json.dumps(payload).encode("utf-8")))
            assert response.status == 200
            stream = iter(response.stream)
            assert next(stream).startswith(b"data:")  # tokens are flowing
            response.stream.close()                   # client went away
            cancelled = registry.counter("engine_requests_total").labels(
                outcome="cancelled", strategy="plain")
            deadline = time.monotonic() + 30
            while cancelled.value < 1 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert cancelled.value == 1
        finally:
            app.engine.stop()


class TestEngineDisabled:
    @pytest.fixture(scope="class")
    def plain_backend(self, pipeline):
        with Server(create_backend(pipeline, use_engine=False)) as server:
            yield server

    def test_generate_still_works(self, plain_backend):
        client = RatatouilleClient(plain_backend.url)
        recipe = client.generate(["garlic"], seed=1, max_new_tokens=15)
        assert "instructions" in recipe

    def test_engine_endpoint_reports_disabled(self, plain_backend):
        assert RatatouilleClient(plain_backend.url).engine_stats() == {
            "enabled": False}

    def test_health_still_a_fleet_of_one(self, plain_backend):
        # No serving thread exists to die, so the in-process decoder
        # reports the same healthy fleet-of-one shape.
        health = RatatouilleClient(plain_backend.url).health()
        assert health["status"] == "ok"
        assert (health["replicas"], health["healthy"],
                health["draining"]) == (1, 1, 0)

    def test_stream_unavailable_without_engine(self, plain_backend):
        client = RatatouilleClient(plain_backend.url)
        with pytest.raises(ApiError) as excinfo:
            list(client.generate_stream(["garlic"]))
        assert excinfo.value.status == 503

    def test_engine_and_plain_agree(self, pipeline, backend):
        # Same seed through the engine-backed HTTP path and the direct
        # in-process call: identical recipe (the bit-exactness contract
        # surfaced at the API level).
        config = GenerationConfig(max_new_tokens=30, top_k=20,
                                  temperature=0.8, seed=33)
        direct = pipeline.generate(["garlic", "onion"], generation=config)
        via_engine = RatatouilleClient(backend.url).generate(
            ["garlic", "onion"], seed=33, max_new_tokens=30)
        assert via_engine["title"] == direct.title
        assert via_engine["instructions"] == direct.instructions