"""Overload-shedding gate for admission control (slow tier).

Runs ``benchmarks/run_overload_shedding.py`` — at 4x offered load the
admission gate must shed traffic while keeping the p99 latency of
admitted requests within 2x of the uncontended p99.  Excluded from the
tier-1 default run; invoke with ``pytest -m slow``.
"""

import pathlib
import sys

import pytest

pytestmark = pytest.mark.slow

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent
                       / "benchmarks"))

import run_overload_shedding  # noqa: E402


def test_admission_clears_overload_gate():
    assert run_overload_shedding.main([]) == 0
