"""Golden round-trip tests for the tagged recipe format.

Each fixture pair under ``tests/golden/`` is a tagged training string
(``<name>.txt``) and the structured recipe it must parse into
(``<name>.expected.json``).  Complete fixtures must survive the full
parse -> serialize -> parse cycle byte-for-byte; the ``truncated``
fixture pins the salvage behaviour for cut-off generations.  The
``number_tokens`` fixture locks in the fraction/number special-token
treatment (``<QTY_1_1/2>``, ``<NUM_220>``).
"""

import json
from pathlib import Path

import pytest

from repro.preprocess.formatting import (parse_recipe, serialize_sections,
                                         structure_errors)
from repro.preprocess.numbers import (decode_numbers, encode_numbers,
                                      number_tokens_in)

GOLDEN = Path(__file__).parent / "golden"
CASES = sorted(p.stem for p in GOLDEN.glob("*.txt"))
COMPLETE = [name for name in CASES if name != "truncated"]


def _load(name):
    tagged = (GOLDEN / f"{name}.txt").read_text(encoding="utf-8").rstrip("\n")
    expected = json.loads(
        (GOLDEN / f"{name}.expected.json").read_text(encoding="utf-8"))
    return tagged, expected


class TestGoldenParse:
    @pytest.mark.parametrize("name", CASES)
    def test_parse_matches_expected(self, name):
        tagged, expected = _load(name)
        parsed = parse_recipe(tagged)
        assert parsed.title == expected["title"]
        assert parsed.ingredients == expected["ingredients"]
        assert parsed.instructions == expected["instructions"]

    @pytest.mark.parametrize("name", COMPLETE)
    def test_complete_fixtures_are_structurally_valid(self, name):
        tagged, _ = _load(name)
        assert structure_errors(tagged) == []
        assert parse_recipe(tagged).is_valid()

    def test_truncated_fixture_reports_errors(self):
        tagged, _ = _load("truncated")
        errors = structure_errors(tagged)
        assert any("INSTR" in e for e in errors)
        assert "empty title" in errors
        assert not parse_recipe(tagged).is_valid()


class TestGoldenRoundTrip:
    @pytest.mark.parametrize("name", COMPLETE)
    def test_serialize_parse_is_identity(self, name):
        tagged, expected = _load(name)
        rebuilt = serialize_sections(expected["title"],
                                     expected["ingredients"],
                                     expected["instructions"])
        assert rebuilt == tagged
        reparsed = parse_recipe(rebuilt)
        assert reparsed.title == expected["title"]
        assert reparsed.ingredients == expected["ingredients"]
        assert reparsed.instructions == expected["instructions"]


class TestNumberTokenGolden:
    def test_fixture_contains_special_tokens(self):
        tagged, _ = _load("number_tokens")
        tokens = number_tokens_in(tagged)
        assert "<QTY_1_1/2>" in tokens
        assert "<NUM_220>" in tokens
        assert "<NUM_45>" in tokens

    def test_decode_restores_plain_text(self):
        tagged, _ = _load("number_tokens")
        decoded = decode_numbers(tagged)
        assert "1 1/2 kg potatoes" in decoded
        assert "heat oven to 220 ." in decoded
        assert number_tokens_in(decoded) == []

    def test_encode_decode_round_trip_through_format(self):
        tagged, expected = _load("number_tokens")
        # Decoding the whole tagged string then re-encoding each
        # section reproduces the fixture exactly.
        plain = parse_recipe(decode_numbers(tagged))
        rebuilt = serialize_sections(
            encode_numbers(plain.title) if plain.title else plain.title,
            [encode_numbers(line) for line in plain.ingredients],
            [encode_numbers(line) for line in plain.instructions])
        assert rebuilt == tagged

    def test_parse_keeps_tokens_atomic(self):
        tagged, expected = _load("number_tokens")
        parsed = parse_recipe(tagged)
        assert parsed.ingredients == expected["ingredients"]
        joined = " ".join(parsed.ingredients + parsed.instructions)
        assert number_tokens_in(joined) == number_tokens_in(
            " ".join(expected["ingredients"] + expected["instructions"]))
