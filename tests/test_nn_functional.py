"""Unit tests for fused functional ops (repro.nn.functional)."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn import functional as F
from repro.nn.layers import LayerNorm

from .test_nn_tensor import assert_grad_close, numeric_grad


@pytest.fixture
def rng():
    return np.random.default_rng(1)


class TestSoftmax:
    def test_sums_to_one(self, rng):
        x = Tensor(rng.standard_normal((4, 7)).astype(np.float32))
        out = F.softmax(x).data
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(4), rtol=1e-5)

    def test_stability_large_logits(self):
        x = Tensor(np.array([[1000.0, 1000.0]], dtype=np.float32))
        out = F.softmax(x).data
        np.testing.assert_allclose(out, [[0.5, 0.5]])

    def test_gradient(self, rng):
        a = rng.standard_normal((3, 5)).astype(np.float32)
        w = Tensor(rng.standard_normal((3, 5)).astype(np.float32))
        assert_grad_close(lambda x: (F.softmax(x) * w).sum(), a)

    def test_axis_argument(self, rng):
        x = Tensor(rng.standard_normal((3, 5)).astype(np.float32))
        out = F.softmax(x, axis=0).data
        np.testing.assert_allclose(out.sum(axis=0), np.ones(5), rtol=1e-5)


class TestLogSoftmax:
    def test_matches_log_of_softmax(self, rng):
        x = Tensor(rng.standard_normal((2, 6)).astype(np.float32))
        np.testing.assert_allclose(F.log_softmax(x).data,
                                   np.log(F.softmax(x).data), atol=1e-5)

    def test_gradient(self, rng):
        a = rng.standard_normal((2, 4)).astype(np.float32)
        w = Tensor(rng.standard_normal((2, 4)).astype(np.float32))
        assert_grad_close(lambda x: (F.log_softmax(x) * w).sum(), a)


class TestCrossEntropy:
    def test_uniform_logits_log_vocab(self):
        logits = Tensor(np.zeros((4, 8), dtype=np.float32))
        loss = F.cross_entropy(logits, np.zeros(4, dtype=np.int64))
        assert loss.item() == pytest.approx(np.log(8), rel=1e-5)

    def test_perfect_prediction_near_zero(self):
        logits = np.full((2, 5), -100.0, dtype=np.float32)
        logits[0, 1] = 100.0
        logits[1, 3] = 100.0
        loss = F.cross_entropy(Tensor(logits), np.array([1, 3]))
        assert loss.item() == pytest.approx(0.0, abs=1e-5)

    def test_gradient(self, rng):
        a = rng.standard_normal((5, 6)).astype(np.float32)
        targets = rng.integers(0, 6, 5)
        assert_grad_close(lambda x: F.cross_entropy(x, targets), a, atol=1e-2)

    def test_ignore_index_masks(self, rng):
        logits = rng.standard_normal((4, 5)).astype(np.float32)
        targets = np.array([1, 2, -1, 3])
        x = Tensor(logits, requires_grad=True)
        loss = F.cross_entropy(x, targets, ignore_index=-1)
        loss.backward()
        # Masked row contributes no gradient.
        np.testing.assert_allclose(x.grad[2], np.zeros(5), atol=1e-8)
        # And the loss equals the mean over unmasked rows.
        kept = F.cross_entropy(Tensor(logits[[0, 1, 3]]),
                               targets[[0, 1, 3]])
        assert loss.item() == pytest.approx(kept.item(), rel=1e-5)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(np.zeros((2, 3, 4), dtype=np.float32)),
                            np.zeros(2, dtype=np.int64))
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(np.zeros((2, 3), dtype=np.float32)),
                            np.zeros(5, dtype=np.int64))

    def test_gradient_sums_to_zero_per_row(self, rng):
        # softmax-minus-onehot rows each sum to zero.
        x = Tensor(rng.standard_normal((3, 7)).astype(np.float32),
                   requires_grad=True)
        F.cross_entropy(x, np.array([0, 3, 6])).backward()
        np.testing.assert_allclose(x.grad.sum(axis=1), np.zeros(3), atol=1e-6)


class TestEmbedding:
    def test_lookup_values(self):
        w = Tensor(np.arange(12, dtype=np.float32).reshape(4, 3))
        out = F.embedding(w, np.array([2, 0]))
        np.testing.assert_allclose(out.data, [[6, 7, 8], [0, 1, 2]])

    def test_scatter_add_backward(self):
        w = Tensor(np.zeros((4, 2), dtype=np.float32), requires_grad=True)
        out = F.embedding(w, np.array([1, 1, 3]))
        out.sum().backward()
        np.testing.assert_allclose(w.grad,
                                   [[0, 0], [2, 2], [0, 0], [1, 1]])

    def test_2d_indices(self):
        w = Tensor(np.arange(8, dtype=np.float32).reshape(4, 2),
                   requires_grad=True)
        out = F.embedding(w, np.array([[0, 1], [2, 3]]))
        assert out.shape == (2, 2, 2)
        out.sum().backward()
        np.testing.assert_allclose(w.grad, np.ones((4, 2)))


class TestConcatStack:
    def test_concat_values_and_grads(self, rng):
        a = Tensor(rng.standard_normal((2, 3)).astype(np.float32),
                   requires_grad=True)
        b = Tensor(rng.standard_normal((2, 2)).astype(np.float32),
                   requires_grad=True)
        out = F.concat([a, b], axis=1)
        assert out.shape == (2, 5)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 3)))
        np.testing.assert_allclose(b.grad, np.ones((2, 2)))

    def test_concat_axis0(self, rng):
        a = Tensor(rng.standard_normal((1, 3)).astype(np.float32))
        b = Tensor(rng.standard_normal((2, 3)).astype(np.float32))
        assert F.concat([a, b], axis=0).shape == (3, 3)

    def test_stack_new_axis(self, rng):
        parts = [Tensor(rng.standard_normal(4).astype(np.float32),
                        requires_grad=True) for _ in range(3)]
        out = F.stack(parts, axis=0)
        assert out.shape == (3, 4)
        out.sum().backward()
        for part in parts:
            np.testing.assert_allclose(part.grad, np.ones(4))

    def test_stack_middle_axis(self, rng):
        parts = [Tensor(rng.standard_normal((2, 4)).astype(np.float32))
                 for _ in range(5)]
        assert F.stack(parts, axis=1).shape == (2, 5, 4)


class TestDropout:
    def test_eval_mode_identity(self, rng):
        x = Tensor(rng.standard_normal((10, 10)).astype(np.float32))
        out = F.dropout(x, 0.5, training=False, rng=rng)
        assert out is x

    def test_zero_p_identity(self, rng):
        x = Tensor(np.ones((4, 4), dtype=np.float32))
        assert F.dropout(x, 0.0, training=True, rng=rng) is x

    def test_inverted_scaling_preserves_mean(self, rng):
        x = Tensor(np.ones((200, 200), dtype=np.float32))
        out = F.dropout(x, 0.3, training=True, rng=rng)
        assert out.data.mean() == pytest.approx(1.0, abs=0.05)

    def test_grad_uses_same_mask(self, rng):
        x = Tensor(np.ones((50, 50), dtype=np.float32), requires_grad=True)
        out = F.dropout(x, 0.5, training=True, rng=rng)
        out.sum().backward()
        # gradient is exactly the mask: zero where dropped, 2.0 where kept
        np.testing.assert_allclose(x.grad, out.data)


class TestLayerNorm:
    def test_output_statistics(self, rng):
        ln = LayerNorm(16)
        x = Tensor(rng.standard_normal((4, 16)).astype(np.float32) * 5 + 3)
        out = ln(x).data
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(4), atol=1e-4)
        np.testing.assert_allclose(out.std(axis=-1), np.ones(4), atol=1e-2)

    def test_gradient_x(self, rng):
        ln = LayerNorm(6)
        a = rng.standard_normal((3, 6)).astype(np.float32)
        w = Tensor(rng.standard_normal((3, 6)).astype(np.float32))
        assert_grad_close(lambda x: (ln(x) * w).sum(), a)

    def test_gradient_weight_bias(self, rng):
        ln = LayerNorm(4)
        x = Tensor(rng.standard_normal((5, 4)).astype(np.float32))
        (ln(x) ** 2).sum().backward()
        assert ln.weight.grad is not None
        assert ln.bias.grad is not None
        assert ln.weight.grad.shape == (4,)

    def test_3d_input(self, rng):
        ln = LayerNorm(8)
        x = Tensor(rng.standard_normal((2, 3, 8)).astype(np.float32))
        assert ln(x).shape == (2, 3, 8)


class TestAddMask:
    def test_values_and_grad(self):
        x = Tensor(np.zeros((2, 2), dtype=np.float32), requires_grad=True)
        mask = np.array([[0.0, -1e9], [0.0, 0.0]], dtype=np.float32)
        out = F.add_mask(x, mask)
        assert out.data[0, 1] == -1e9
        out.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 2)))
