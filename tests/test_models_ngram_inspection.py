"""Unit tests for the n-gram baseline and inspection tools."""

import numpy as np
import pytest

from repro.models import (GenerationConfig, NGramLanguageModel,
                          attention_maps, generate, render_attention_ascii,
                          surprisal, top_next_tokens)
from repro.models.gpt2 import GPT2Config, GPT2Model
from repro.preprocess import preprocess
from repro.recipedb import generate_corpus
from repro.tokenizers import WordTokenizer


@pytest.fixture(scope="module")
def texts():
    corpus, _ = preprocess(generate_corpus(25, seed=37))
    return corpus


@pytest.fixture(scope="module")
def tokenizer(texts):
    return WordTokenizer(texts)


@pytest.fixture(scope="module")
def ngram(texts, tokenizer):
    model = NGramLanguageModel(tokenizer.vocab_size, order=3)
    model.fit([tokenizer.encode(t, add_eos=True) for t in texts])
    return model


class TestNGram:
    def test_fit_counts_contexts(self, ngram):
        assert ngram.num_ngrams > 100

    def test_forward_shapes_and_normalization(self, ngram):
        ids = np.array([[1, 5, 9, 2]])
        logits = ngram(ids)
        assert logits.shape == (1, 4, ngram.vocab_size)
        probs = np.exp(logits.data[0, 0])
        assert probs.sum() == pytest.approx(1.0, rel=1e-3)

    def test_seen_continuation_likelier_than_unseen(self, ngram, tokenizer,
                                                    texts):
        ids = tokenizer.encode(texts[0])
        # P(actual next | context) should usually beat a random token
        context, actual = ids[:10], ids[10]
        state = ngram.start_state(1)
        logits = None
        for token in context:
            logits, state = ngram.next_logits(np.array([token]), state)
        random_token = (actual + 17) % ngram.vocab_size
        assert logits[0][actual] > logits[0][random_token]

    def test_generation_interface(self, ngram):
        out = generate(ngram, [1, 2, 3],
                       GenerationConfig(max_new_tokens=20, seed=0, top_k=5))
        assert len(out) == 20
        assert all(0 <= t < ngram.vocab_size for t in out)

    def test_perplexity_beats_uniform(self, ngram, tokenizer, texts):
        from repro.evaluate import perplexity
        from repro.training import LMDataset
        dataset = LMDataset(texts, tokenizer, seq_len=32)
        ppl = perplexity(ngram, dataset, max_batches=2)
        assert ppl < tokenizer.vocab_size / 2

    def test_validation(self):
        with pytest.raises(ValueError):
            NGramLanguageModel(10, order=0)
        with pytest.raises(ValueError):
            NGramLanguageModel(10).forward(np.zeros(3, dtype=np.int64))

    def test_config_dict(self, ngram):
        config = ngram.config_dict()
        assert config["model_type"] == "ngram"
        assert config["order"] == 3


@pytest.fixture(scope="module")
def tiny_gpt2():
    return GPT2Model(GPT2Config(vocab_size=30, context_length=32, d_model=16,
                                num_layers=2, num_heads=2, d_ff=32,
                                dropout=0.0, seed=0))


class TestAttentionMaps:
    def test_shapes(self, tiny_gpt2):
        maps = attention_maps(tiny_gpt2, np.arange(8) % 30)
        assert len(maps) == 2
        assert maps[0].shape == (2, 8, 8)

    def test_rows_are_distributions(self, tiny_gpt2):
        maps = attention_maps(tiny_gpt2, np.arange(8) % 30)
        for layer in maps:
            np.testing.assert_allclose(layer.sum(axis=-1),
                                       np.ones((2, 8)), rtol=1e-4)

    def test_causal_zeros(self, tiny_gpt2):
        maps = attention_maps(tiny_gpt2, np.arange(6) % 30)
        for layer in maps:
            upper = np.triu(layer[0], k=1)
            np.testing.assert_allclose(upper, np.zeros_like(upper), atol=1e-6)

    def test_ascii_rendering(self, tiny_gpt2):
        maps = attention_maps(tiny_gpt2, np.arange(5) % 30)
        art = render_attention_ascii(maps[0], ["tok%d" % i for i in range(5)])
        assert len(art.splitlines()) == 5


class TestTopTokensSurprisal:
    def test_top_next_tokens(self, tiny_gpt2, tokenizer):
        # build a tokenizer matching the tiny vocab instead
        from repro.tokenizers import WordTokenizer as WT
        words = " ".join(f"w{i}" for i in range(26))
        tok = WT([words])
        model = GPT2Model(GPT2Config(vocab_size=tok.vocab_size,
                                     context_length=32, d_model=16,
                                     num_layers=1, num_heads=2, d_ff=32,
                                     dropout=0.0, seed=1))
        top = top_next_tokens(model, tok, "w1 w2 w3", k=4)
        assert len(top) == 4
        probs = [p for _, p in top]
        assert probs == sorted(probs, reverse=True)
        assert all(0 <= p <= 1 for p in probs)

    def test_surprisal_lengths(self, texts, tokenizer):
        model = NGramLanguageModel(tokenizer.vocab_size, order=2)
        model.fit([tokenizer.encode(t) for t in texts[:5]])
        scores = surprisal(model, tokenizer, texts[0][:200])
        ids = tokenizer.encode(texts[0][:200])
        assert len(scores) == len(ids) - 1
        assert all(s >= 0 for _, s in scores)

    def test_surprisal_validation(self, tokenizer, ngram):
        with pytest.raises(ValueError):
            surprisal(ngram, tokenizer, "")
