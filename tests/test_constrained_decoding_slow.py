"""Validity, search-quality and cache-reuse gates for constrained
decoding (slow tier).

Runs ``benchmarks/run_constrained_decoding.py`` — every constrained
decode must parse and satisfy its constraints (100%), seeded MCTS must
earn >= 1.15x the constrained-greedy mean reward at the same token
budget, and >= 50% of the prompt tokens submitted within one search
tree must be served from the engine's prefix KV cache.  Excluded from
the tier-1 default run; invoke with ``pytest -m slow``.
"""

import pathlib
import sys

import pytest

pytestmark = pytest.mark.slow

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent
                       / "benchmarks"))

import run_constrained_decoding  # noqa: E402


def test_constrained_decoding_clears_all_gates():
    assert run_constrained_decoding.main([]) == 0
