"""Tests for substitution engine, experiment runner, middleware, summary."""

import time

import pytest

from repro.models import memory_megabytes, summarize
from repro.models.gpt2 import distilgpt2, gpt2_medium
from repro.recipedb import (SubstitutionEngine, available_diets,
                            default_catalog, generate_corpus)
from repro.training import Grid, RunRecord, run_experiment
from repro.webapp import (App, RateLimiter, Request, RequestLog, Response)


@pytest.fixture(scope="module")
def catalog():
    return default_catalog()


@pytest.fixture(scope="module")
def engine(catalog):
    return SubstitutionEngine(catalog)


@pytest.fixture(scope="module")
def recipes():
    return generate_corpus(40, seed=61)


class TestSubstitutionEngine:
    def test_available_diets(self):
        diets = available_diets()
        assert "vegan" in diets and "gluten-free" in diets

    def test_unknown_diet_raises(self, engine, recipes):
        with pytest.raises(KeyError):
            engine.violations(recipes[0], "carnivore")

    def test_violations_detect_meat(self, engine, recipes):
        meaty = next(r for r in recipes
                     if any(i.ingredient.category == "meat"
                            for i in r.ingredients))
        violations = engine.violations(meaty, "vegetarian")
        assert violations
        assert all(v.ingredient.category in ("meat", "seafood")
                   or v.ingredient.name for v in violations)

    def test_adapt_produces_compliant_recipe(self, engine, recipes):
        for diet in available_diets():
            for recipe in recipes[:10]:
                adapted, log = engine.adapt(recipe, diet)
                assert engine.is_compliant(adapted, diet), \
                    f"{diet}: {[i.ingredient.name for i in adapted.ingredients]}"

    def test_adapt_preserves_compliant_recipes(self, engine, recipes):
        veggie = next(r for r in recipes
                      if engine.is_compliant(r, "vegetarian"))
        adapted, log = engine.adapt(veggie, "vegetarian")
        assert [i.ingredient.name for i in adapted.ingredients] == \
               [i.ingredient.name for i in veggie.ingredients]
        assert not log

    def test_adapt_rewrites_instructions(self, engine, recipes):
        meaty = next(r for r in recipes
                     if any(i.ingredient.category == "meat"
                            for i in r.ingredients))
        adapted, log = engine.adapt(meaty, "vegan")
        replaced = {s.original for s in log if s.replacement}
        joined = " ".join(step.text for step in adapted.instructions)
        import re
        for original in replaced:
            # original full names no longer appear as whole words
            # (substrings like "egg" inside "eggplant" are fine)
            assert not re.search(rf"\b{re.escape(original)}\b", joined), original

    def test_adapt_does_not_mutate_original(self, engine, recipes):
        meaty = next(r for r in recipes
                     if any(i.ingredient.category == "meat"
                            for i in r.ingredients))
        before = [i.ingredient.name for i in meaty.ingredients]
        engine.adapt(meaty, "vegan")
        assert [i.ingredient.name for i in meaty.ingredients] == before

    def test_best_replacement_none_for_compliant(self, engine, catalog):
        basil = catalog.get("basil")
        assert engine.best_replacement(basil, "vegan") is None

    def test_replacement_is_flavor_scored(self, engine, catalog):
        beef = catalog.get("ground beef")
        decision = engine.best_replacement(beef, "vegan")
        assert decision is not None
        assert decision.replacement
        assert decision.score >= 0.0
        assert "vegan" in decision.reason


class TestGrid:
    def test_cartesian_product(self):
        grid = Grid({"a": [1, 2], "b": ["x", "y", "z"]})
        points = list(grid)
        assert len(points) == len(grid) == 6
        assert {"a": 2, "b": "z"} in points

    def test_validation(self):
        with pytest.raises(ValueError):
            Grid({})
        with pytest.raises(ValueError):
            Grid({"a": []})


class TestRunExperiment:
    def test_collects_metrics(self):
        result = run_experiment(
            "demo", Grid({"x": [1, 2, 3]}),
            lambda params: {"square": params["x"] ** 2})
        assert len(result.records) == 3
        assert result.best("square").params["x"] == 3
        assert result.best("square", maximize=False).params["x"] == 1

    def test_errors_captured_and_sweep_continues(self):
        def flaky(params):
            if params["x"] == 2:
                raise RuntimeError("boom")
            return {"v": params["x"]}

        result = run_experiment("flaky", Grid({"x": [1, 2, 3]}), flaky)
        assert len(result.succeeded) == 2
        failed = [r for r in result.records if not r.ok]
        assert len(failed) == 1
        assert "boom" in failed[0].error

    def test_continue_on_error_false_raises(self):
        with pytest.raises(RuntimeError):
            run_experiment("strict", Grid({"x": [1]}),
                           lambda p: (_ for _ in ()).throw(RuntimeError("no")),
                           continue_on_error=False)

    def test_markdown_rendering(self):
        result = run_experiment(
            "table", Grid({"x": [1, 2]}),
            lambda params: {"y": params["x"] * 0.5})
        markdown = result.to_markdown()
        assert "| x | y |" in markdown.replace("seconds | status", "").replace("  ", " ") or "| x |" in markdown
        assert "0.5" in markdown

    def test_on_result_callback(self):
        seen = []
        run_experiment("cb", Grid({"x": [1, 2]}),
                       lambda p: {"v": 1.0},
                       on_result=lambda record: seen.append(record))
        assert len(seen) == 2
        assert all(isinstance(r, RunRecord) for r in seen)

    def test_non_dict_return_is_error(self):
        result = run_experiment("bad", Grid({"x": [1]}), lambda p: 42)
        assert not result.records[0].ok

    def test_best_missing_metric_raises(self):
        result = run_experiment("m", Grid({"x": [1]}), lambda p: {"v": 1.0})
        with pytest.raises(ValueError):
            result.best("nonexistent")


class TestMiddleware:
    def _app(self):
        app = App()

        @app.route("/ok")
        def ok(request):
            return Response.json({"ok": True})

        @app.route("/fail")
        def fail(request):
            return Response.error("nope", status=500)

        return app

    def test_request_log_records(self):
        app = self._app()
        log = RequestLog(app)
        app.dispatch(Request("GET", "/ok", {}, {}))
        app.dispatch(Request("GET", "/fail", {}, {}))
        assert len(log.records) == 2
        summary = log.summary()
        assert summary["/ok"]["count"] == 1
        assert summary["/fail"]["errors"] == 1
        assert summary["/ok"]["p95_ms"] >= 0

    def test_request_log_capacity(self):
        app = self._app()
        log = RequestLog(app, capacity=3)
        for _ in range(10):
            app.dispatch(Request("GET", "/ok", {}, {}))
        assert len(log.records) == 3

    def test_rate_limiter_blocks_after_burst(self):
        app = self._app()
        fake_time = [0.0]
        RateLimiter(app, rate=1.0, burst=2, clock=lambda: fake_time[0])
        request = Request("GET", "/ok", {}, {"x-client-id": "alice"})
        assert app.dispatch(request).status == 200
        assert app.dispatch(request).status == 200
        assert app.dispatch(request).status == 429
        # tokens refill with time
        fake_time[0] += 1.5
        assert app.dispatch(request).status == 200

    def test_rate_limiter_isolates_clients(self):
        app = self._app()
        fake_time = [0.0]
        RateLimiter(app, rate=1.0, burst=1, clock=lambda: fake_time[0])
        alice = Request("GET", "/ok", {}, {"x-client-id": "alice"})
        bob = Request("GET", "/ok", {}, {"x-client-id": "bob"})
        assert app.dispatch(alice).status == 200
        assert app.dispatch(alice).status == 429
        assert app.dispatch(bob).status == 200

    def test_middlewares_compose(self):
        app = self._app()
        log = RequestLog(app)
        RateLimiter(app, rate=10.0, burst=1)
        request = Request("GET", "/ok", {}, {})
        assert app.dispatch(request).status == 200
        assert app.dispatch(request).status == 429
        # the logger wrapped first, so it sees... the inner dispatch only
        # records allowed requests; rate-limited ones are outermost
        assert len(log.records) >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            RequestLog(self._app(), capacity=0)
        with pytest.raises(ValueError):
            RateLimiter(self._app(), rate=0)


class TestSummary:
    def test_summarize_counts_match(self):
        model = distilgpt2(100)
        text = summarize(model)
        assert f"{model.num_parameters():,}" in text
        assert "wte.weight" in text

    def test_capacity_ordering_visible(self):
        small = memory_megabytes(distilgpt2(100))
        large = memory_megabytes(gpt2_medium(100))
        assert large > small

    def test_group_by_top_level(self):
        from repro.models import group_by_top_level
        model = distilgpt2(50)
        groups = group_by_top_level(model)
        assert "wte" in groups and "blocks" in groups
        assert sum(groups.values()) == model.num_parameters()
