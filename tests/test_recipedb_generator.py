"""Unit tests for the corpus generator (repro.recipedb.generator)."""

import numpy as np
import pytest

from repro.recipedb import (CorpusConfig, PROCESSES, RecipeGenerator,
                            generate_corpus)
from repro.recipedb.regions import COUNTRY_INDEX


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(60, seed=11)


class TestRecipeGeneration:
    def test_deterministic_from_seed(self):
        a = generate_corpus(10, seed=5)
        b = generate_corpus(10, seed=5)
        assert [r.title for r in a] == [r.title for r in b]
        assert [[ri.display() for ri in r.ingredients] for r in a] == \
               [[ri.display() for ri in r.ingredients] for r in b]

    def test_different_seeds_differ(self):
        a = generate_corpus(10, seed=1)
        b = generate_corpus(10, seed=2)
        assert [r.title for r in a] != [r.title for r in b]

    def test_all_complete(self, corpus):
        assert all(r.is_complete() for r in corpus)

    def test_unique_ids(self, corpus):
        ids = [r.recipe_id for r in corpus]
        assert len(ids) == len(set(ids))

    def test_geo_consistency(self, corpus):
        for recipe in corpus:
            continent, region = COUNTRY_INDEX[recipe.country]
            assert recipe.continent == continent
            assert recipe.region == region

    def test_processes_from_taxonomy(self, corpus):
        known = set(PROCESSES)
        for recipe in corpus:
            for step in recipe.instructions:
                assert step.process in known, step.process

    def test_instructions_are_realized_templates(self, corpus):
        for recipe in corpus:
            for step in recipe.instructions:
                assert "{" not in step.text, f"unfilled slot: {step.text}"

    def test_nutrition_and_health_attached(self, corpus):
        for recipe in corpus:
            assert recipe.nutrition is not None
            assert recipe.nutrition.calories_kcal > 0

    def test_ingredients_not_duplicated_within_recipe(self, corpus):
        for recipe in corpus:
            names = recipe.ingredient_names
            assert len(names) == len(set(names))

    def test_title_mentions_main_and_country(self, corpus):
        for recipe in corpus:
            assert recipe.country.lower() in recipe.title

    def test_length_tail_exists(self):
        """~20% of recipes are multi-component, giving a right tail."""
        recipes = generate_corpus(300, seed=0)
        step_counts = [len(r.instructions) for r in recipes]
        assert max(step_counts) > 12  # composite recipes exist
        assert min(step_counts) >= 5


class TestCorruption:
    def test_clean_by_default(self):
        recipes = generate_corpus(50, seed=0)
        assert all(r.is_complete() for r in recipes)

    def test_duplicates_appended(self):
        recipes = generate_corpus(50, seed=0, duplicate_rate=1.0)
        assert len(recipes) == 100
        titles = [r.title for r in recipes]
        assert len(set(titles)) == 50

    def test_incomplete_injected(self):
        recipes = generate_corpus(50, seed=0, incomplete_rate=1.0)
        incomplete = [r for r in recipes if not r.is_complete()]
        assert len(incomplete) == 50

    def test_oversize_injected(self):
        recipes = generate_corpus(20, seed=0, oversize_rate=1.0)
        oversize = [r for r in recipes if len(r.instructions) > 25]
        assert len(oversize) == 20

    def test_corrupted_ids_still_unique(self):
        recipes = generate_corpus(30, seed=0, duplicate_rate=0.5,
                                  incomplete_rate=0.5, oversize_rate=0.5)
        ids = [r.recipe_id for r in recipes]
        assert len(ids) == len(set(ids))

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            CorpusConfig(num_recipes=10, duplicate_rate=1.5)
        with pytest.raises(ValueError):
            CorpusConfig(num_recipes=0)


class TestQuantities:
    def test_units_match_values(self, corpus):
        from repro.recipedb.generator import UNIT_VALUES
        for recipe in corpus:
            for item in recipe.ingredients:
                assert item.quantity.unit in UNIT_VALUES
                assert item.quantity.value in UNIT_VALUES[item.quantity.unit]

    def test_fraction_display(self):
        from repro.recipedb.schema import Quantity
        assert Quantity(1.5, "cup").display() == "1 1/2 cup"
        assert Quantity(0.25, "teaspoon").display() == "1/4 teaspoon"
        assert Quantity(2.0, "piece").display() == "2 piece"
        assert Quantity(0.333, "cup").display() == "1/3 cup"
