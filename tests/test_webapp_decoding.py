"""HTTP surface of constrained + search-guided decoding.

Drives the real backend (engine-backed, over HTTP) the way the client
library and the webapp do:

* unsatisfiable/malformed ``constraints`` payloads are HTTP 400s with
  *named* error codes (``unknown_diet:``, ``conflicting_constraints:``,
  ...) — machine-matchable, never a stack trace;
* ``strategy``/``constraints`` thread through ``/api/generate``,
  ``/api/generate_async`` and the SSE stream, and the response carries
  ``constraints_satisfied`` plus (for MCTS) the ``search`` block;
* ``RatatouilleClient.generate(strategy=..., constraints=...)`` passes
  the knobs through and surfaces named 400s as :class:`ApiError`;
* ``/api/health`` advertises the decoding surface.
"""

import json
import time

import pytest

from repro.core import PipelineConfig, Ratatouille
from repro.decoding import MIN_BUDGET
from repro.obs import MetricsRegistry
from repro.training import TrainingConfig
from repro.webapp import ApiError, RatatouilleClient, Server, create_backend

MAX_ROLLOUTS = 8


@pytest.fixture(scope="module")
def pipeline():
    config = PipelineConfig(
        model_name="word-lstm",
        training=TrainingConfig(max_steps=5, batch_size=4,
                                eval_every=10**9))
    return Ratatouille.quickstart(model_name="word-lstm", num_recipes=30,
                                  seed=0, config=config)


@pytest.fixture(scope="module")
def registry():
    return MetricsRegistry()


@pytest.fixture(scope="module")
def backend(pipeline, registry):
    app = create_backend(pipeline, registry=registry,
                         max_mcts_rollouts=MAX_ROLLOUTS)
    with Server(app) as server:
        yield server
    app.engine.stop()


@pytest.fixture(scope="module")
def client(backend):
    return RatatouilleClient(backend.url, retry=None)


class TestNamedValidationErrors:
    def _expect_400(self, client, code, **kwargs):
        with pytest.raises(ApiError) as excinfo:
            client.generate(**kwargs)
        assert excinfo.value.status == 400
        assert code in excinfo.value.message
        return excinfo.value

    def test_unknown_diet(self, client):
        self._expect_400(client, "unknown_diet",
                         ingredients=["onion"],
                         constraints={"diet": "carnivore"})

    def test_unknown_constraint_key(self, client):
        self._expect_400(client, "unknown_constraint",
                         ingredients=["onion"],
                         constraints={"spiciness": "high"})

    def test_conflicting_include_exclude(self, client):
        self._expect_400(client, "conflicting_constraints",
                         ingredients=["onion"],
                         constraints={"include_ingredients": ["garlic"],
                                      "exclude_ingredients": ["garlic"]})

    def test_prompt_ingredient_conflicts_with_diet(self, client):
        self._expect_400(client, "diet_conflict",
                         ingredients=["chicken breast"],
                         constraints={"diet": "vegan"})

    def test_calorie_ceiling_conflict(self, client):
        self._expect_400(client, "calories_exceeded",
                         ingredients=["500 g butter"],
                         constraints={"max_calories": 1})

    def test_beam_cannot_be_constrained(self, client):
        with pytest.raises(ApiError) as excinfo:
            client.generate(["onion"], strategy="beam",
                            constraints={"diet": "vegan"})
        assert excinfo.value.status == 400
        assert "beam" in excinfo.value.message

    def test_mcts_rollouts_cap(self, client):
        with pytest.raises(ApiError) as excinfo:
            client.generate(["onion"], strategy="mcts",
                            mcts_rollouts=MAX_ROLLOUTS + 1)
        assert excinfo.value.status == 400
        assert "mcts_rollouts" in excinfo.value.message

    def test_constrained_budget_floor(self, client):
        with pytest.raises(ApiError) as excinfo:
            client.generate(["onion"], max_new_tokens=MIN_BUDGET - 1,
                            constraints={"exclude_ingredients": ["garlic"]})
        assert excinfo.value.status == 400
        assert "max_new_tokens" in excinfo.value.message


class TestGenerate:
    CONSTRAINTS = {"exclude_ingredients": ["garlic"],
                   "include_ingredients": ["onion"]}

    def test_constrained_generate_satisfies_and_parses(self, client):
        body = client.generate(["onion", "tomato"],
                               constraints=self.CONSTRAINTS,
                               max_new_tokens=32, seed=4)
        assert body["constraints_satisfied"] is True
        assert body["title"]
        assert body["instructions"]
        mentioned = " ".join(
            body["instructions"] + body["ingredients"] + [body["title"]])
        assert "garlic" not in mentioned

    def test_mcts_generate_reports_search(self, client):
        body = client.generate(["onion", "tomato"], strategy="mcts",
                               constraints=self.CONSTRAINTS,
                               max_new_tokens=24, mcts_rollouts=3, seed=4)
        assert body["constraints_satisfied"] is True
        search = body["search"]
        assert search["strategy"] == "mcts"
        assert 1 <= search["rollouts"] <= 3
        assert search["prompt_tokens_submitted"] > 0
        assert 0.0 <= search["reward"]["total"] <= 1.0

    def test_mcts_is_deterministic_over_http(self, client):
        request = dict(strategy="mcts", max_new_tokens=24,
                       mcts_rollouts=3, seed=11)
        first = client.generate(["onion", "tomato"], **request)
        second = client.generate(["onion", "tomato"], **request)
        assert first["title"] == second["title"]
        assert first["instructions"] == second["instructions"]
        assert first["search"] == second["search"]

    def test_async_job_carries_constraints(self, client, backend):
        import urllib.request

        submitted = client._request("POST", "/api/generate_async", {
            "ingredients": ["onion", "tomato"],
            "constraints": self.CONSTRAINTS,
            "max_new_tokens": 24, "seed": 4})
        job_id = submitted["job_id"]
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            with urllib.request.urlopen(
                    f"{backend.url}/api/job?id={job_id}") as response:
                snap = json.loads(response.read())
            if snap["status"] in ("done", "failed"):
                break
            time.sleep(0.05)
        assert snap["status"] == "done"
        assert snap["result"]["constraints_satisfied"] is True

    def test_health_advertises_decoding(self, client):
        decoding = client.health()["decoding"]
        assert "mcts" in decoding["strategies"]
        assert decoding["max_mcts_rollouts"] == MAX_ROLLOUTS
        assert "diet" in decoding["constraints"]


class TestStreaming:
    def test_constrained_stream_reports_satisfaction(self, client):
        events = list(client.generate_stream(
            ["onion", "tomato"], max_new_tokens=24, seed=4,
            constraints={"exclude_ingredients": ["garlic"]}))
        tokens = [e for e in events if "token" in e]
        assert tokens  # constraints stream live, token by token
        done = events[-1]
        assert done["done"] is True
        assert "constraints_satisfied" in done["recipe"]

    def test_mcts_stream_replays_winner_then_done(self, client):
        events = list(client.generate_stream(
            ["onion", "tomato"], strategy="mcts", max_new_tokens=24,
            mcts_rollouts=3, seed=4,
            constraints={"exclude_ingredients": ["garlic"]}))
        tokens = [e for e in events if "token" in e]
        assert tokens
        done = events[-1]
        assert done["done"] is True
        assert done["recipe"]["search"]["strategy"] == "mcts"
        assert done["recipe"]["constraints_satisfied"] is True
