"""Fleet cache tier: shared index, cache-aware placement, KV borrowing.

Covers the :class:`~repro.cluster.FleetCacheIndex` trie in isolation,
the :class:`~repro.serving.PrefixCache` fleet hooks (listener,
``borrowed`` entries, pinning, ``peek``/``match_depth``), and the
router-level behaviour: placement prefers a published-prefix holder
when unsaturated, falls back correctly under saturation / drain /
death, borrows read-through when diverted, and stays bit-identical to
the single-engine reference throughout.  The Zipf-workload benchmark
gate lives in ``benchmarks/run_cluster_cache.py``
(``tests/test_cluster_cache_slow.py``).
"""

import pytest

from repro.cluster import ClusterConfig, FleetCacheIndex, Router
from repro.models import GenerationConfig, generate
from repro.models.lstm import LSTMConfig, LSTMLanguageModel
from repro.obs import MetricsRegistry, NullRegistry, NullTracer
from repro.resilience import FaultInjector, FaultSpec, inject_faults
from repro.serving import EngineConfig, InferenceEngine
from repro.serving.prefix_cache import PrefixCache

pytestmark = pytest.mark.cluster

CONFIG = GenerationConfig(max_new_tokens=4, seed=0)


def _model():
    return LSTMLanguageModel(LSTMConfig(vocab_size=16, d_embed=4, d_hidden=8,
                                        num_layers=1, dropout=0.0))


def _router(model, registry, replicas=2, **overrides):
    defaults = dict(replicas=replicas, restart_backoff_seconds=0.01,
                    heartbeat_seconds=0.01)
    defaults.update(overrides)

    def factory(name):
        return InferenceEngine(model, EngineConfig(max_batch_size=2),
                               registry=registry, tracer=NullTracer(),
                               name=name)

    return Router(factory, ClusterConfig(**defaults), registry=registry)


@pytest.fixture()
def model():
    return _model()


@pytest.fixture()
def registry():
    return MetricsRegistry()


def _reference(model, prompt):
    return generate(model, prompt, CONFIG, registry=NullRegistry(),
                    tracer=NullTracer())


class TestFleetCacheIndex:
    def test_publish_and_longest_match(self):
        index = FleetCacheIndex(publish_tokens=8)
        cache = object()
        index.attach("r0", cache)
        assert index.publish("r0", cache, [1, 2, 3])
        assert index.longest_match([1, 2, 3, 4]) == (3, ("r0",))
        assert index.longest_match([1, 2]) == (0, ())
        assert index.longest_match([9]) == (0, ())
        assert index.holders([1, 2, 3]) == ("r0",)
        assert len(index) == 1

    def test_multiple_holders_sorted(self):
        index = FleetCacheIndex(publish_tokens=8)
        c0, c1 = object(), object()
        index.attach("r1", c1)
        index.attach("r0", c0)
        index.publish("r1", c1, [1, 2])
        index.publish("r0", c0, [1, 2])
        assert index.longest_match([1, 2]) == (2, ("r0", "r1"))

    def test_depth_cap_refuses_deep_keys(self):
        index = FleetCacheIndex(publish_tokens=2)
        cache = object()
        index.attach("r0", cache)
        assert not index.publish("r0", cache, [1, 2, 3])
        assert index.longest_match([1, 2, 3]) == (0, ())
        assert len(index) == 0

    def test_chunk_eligibility_gate(self):
        index = FleetCacheIndex(publish_tokens=16, chunk_size=4)
        cache = object()
        index.attach("r0", cache)
        index.publish("r0", cache, [1, 2, 3])     # depth 3: not aligned
        index.publish("r0", cache, [1, 2, 3, 4])  # depth 4: aligned
        # Mid-query, only the chunk-aligned depth counts...
        assert index.longest_match([1, 2, 3, 4, 5])[0] == 4
        # ...but a whole-query match needs no alignment.
        assert index.longest_match([1, 2, 3]) == (3, ("r0",))

    def test_chunk_size_adopted_from_first_cache(self):
        index = FleetCacheIndex(publish_tokens=16)
        cache = PrefixCache(max_bytes=100, chunk_size=4)
        index.attach("r0", cache)
        assert index.chunk_size == 4

    def test_unpublish_and_prune(self):
        index = FleetCacheIndex(publish_tokens=8)
        cache = object()
        index.attach("r0", cache)
        index.publish("r0", cache, [1, 2, 3])
        assert index.unpublish("r0", cache, [1, 2, 3])
        assert index.longest_match([1, 2, 3]) == (0, ())
        assert not index._root.children  # branch pruned, no leak
        assert not index.unpublish("r0", cache, [1, 2, 3])  # already gone

    def test_drop_replica_removes_only_its_keys(self):
        index = FleetCacheIndex(publish_tokens=8)
        c0, c1 = object(), object()
        index.attach("r0", c0)
        index.attach("r1", c1)
        index.publish("r0", c0, [1, 2])
        index.publish("r1", c1, [1, 2])
        index.publish("r0", c0, [3, 4])
        assert index.drop_replica("r0") == 2
        assert index.longest_match([1, 2]) == (2, ("r1",))
        assert index.longest_match([3, 4]) == (0, ())
        # Dropped means deactivated: the dead cache cannot republish.
        assert not index.publish("r0", c0, [5, 6])

    def test_stale_cache_events_refused_after_reattach(self):
        index = FleetCacheIndex(publish_tokens=8)
        old, new = object(), object()
        index.attach("r0", old)
        index.publish("r0", old, [1, 2])
        index.attach("r0", new)  # restart: old entries dropped atomically
        assert index.longest_match([1, 2]) == (0, ())
        assert not index.publish("r0", old, [3, 4])   # stale publisher
        assert index.publish("r0", new, [3, 4])
        # A stale clear must not wipe the replacement's entries.
        assert index.drop_replica("r0", if_cache=old) == 0
        assert index.longest_match([3, 4]) == (2, ("r0",))

    def test_stats(self):
        index = FleetCacheIndex(publish_tokens=8, chunk_size=4)
        cache = object()
        index.attach("r0", cache)
        index.publish("r0", cache, [1, 2, 3, 4])
        stats = index.stats()
        assert stats["entries"] == 1
        assert stats["per_replica"] == {"r0": 1}
        assert stats["published_total"] == 1
        assert stats["publish_tokens"] == 8
        assert stats["chunk_size"] == 4


class TestPrefixCacheFleetHooks:
    def test_listener_sees_insert_evict_clear(self):
        events = []

        class Listener:
            def on_insert(self, key):
                events.append(("insert", key))

            def on_evict(self, key):
                events.append(("evict", key))

            def on_clear(self):
                events.append(("clear", None))

        cache = PrefixCache(max_bytes=10)
        cache.listener = Listener()
        cache.insert([1], "a", nbytes=6)
        cache.insert([2], "b", nbytes=6)  # evicts [1] before its notify
        cache.clear()
        assert events == [("insert", (1,)), ("evict", (1,)),
                          ("insert", (2,)), ("clear", None)]

    def test_listener_exceptions_never_break_the_cache(self):
        class Broken:
            def on_insert(self, key):
                raise RuntimeError("index drift")

        cache = PrefixCache(max_bytes=10)
        cache.listener = Broken()
        assert cache.insert([1], "a", nbytes=1)
        assert cache.lookup([1]) == (1, "a")

    def test_peek_and_match_depth_touch_nothing(self):
        cache = PrefixCache(max_bytes=100)
        cache.insert([1, 2], "a", nbytes=10)
        assert cache.peek([1, 2]) == ("a", 10)
        assert cache.peek([9]) is None
        assert cache.match_depth([1, 2, 3]) == 2
        snap = cache.stats_snapshot()
        assert snap["hits"] == snap["misses"] == 0
        assert snap["lookup_tokens"] == 0

    def test_borrowed_entries_excluded_from_snapshot(self):
        cache = PrefixCache(max_bytes=100)
        cache.insert([1, 2], "owned", nbytes=10)
        cache.insert([3, 4], "copy", nbytes=10, borrowed=True)
        assert [key for key, _, _ in cache.entries_snapshot()] == [(1, 2)]
        assert len(cache.entries_snapshot(include_borrowed=True)) == 2
        # Borrowed entries still serve lookups normally.
        assert cache.lookup([3, 4]) == (2, "copy")

    def test_owned_insert_upgrades_borrowed_entry(self):
        cache = PrefixCache(max_bytes=100)
        cache.insert([1, 2], "copy", nbytes=10, borrowed=True)
        cache.insert([1, 2], "own", nbytes=10)
        assert [key for key, _, _ in cache.entries_snapshot()] == [(1, 2)]
        # ...and a later borrow never downgrades it back.
        cache.insert([1, 2], "copy2", nbytes=10, borrowed=True)
        assert [key for key, _, _ in cache.entries_snapshot()] == [(1, 2)]

    def test_pinned_entries_evicted_last(self):
        cache = PrefixCache(max_bytes=20)
        cache.insert([1], "hot", nbytes=10)
        assert cache.pin([1])
        cache.insert([2], "cold", nbytes=10)
        cache.insert([3], "cold2", nbytes=10)  # evicts [2], not pinned [1]
        assert [1] in cache
        assert [2] not in cache
        # Budget outranks the pin when only pinned entries remain.
        assert cache.pin([3])
        cache.insert([4], "x", nbytes=15)
        assert cache.stats.bytes <= 20
        assert not cache.pin([9])  # absent key


class TestRouterCacheAwarePlacement:
    def _warm_on_other(self, router, prompt):
        """Route ``prompt`` once through the non-home replica via drain."""
        home = router.affinity_replica(prompt)
        other = next(n for n in router.replica_names() if n != home)
        router.drain(home, timeout=10)
        served = router.submit(prompt, CONFIG)
        assert served.replica == other
        result = served.result(timeout=30)
        router.readmit(home)
        return home, other, result

    def test_unsaturated_routes_to_published_holder(self, model, registry):
        with _router(model, registry) as router:
            prompt = [1, 2, 3]
            expected = _reference(model, prompt)
            home, other, first = self._warm_on_other(router, prompt)
            assert first == expected
            # The ring says home; the index knows the survivor holds the
            # prefix — cache-aware placement follows the cache.
            landed = router.submit(prompt, CONFIG)
            assert landed.replica == other
            assert landed.result(timeout=30) == expected
            reasons = router.stats()["placement"]["reasons"]
            assert reasons["cache"] >= 1

    def test_saturated_holder_still_spills(self, model, registry):
        with _router(model, registry, saturation_tokens=0) as router:
            prompt = [1, 2, 3]
            expected = _reference(model, prompt)
            home, other, _ = self._warm_on_other(router, prompt)
            injector = FaultInjector(
                {"model.forward": FaultSpec(delay_seconds=0.02)})
            with inject_faults(injector):
                first = router.submit(prompt, CONFIG)   # holder: other
                second = router.submit(prompt, CONFIG)  # holder saturated
                assert first.replica == other
                assert second.replica == home
                assert first.result(timeout=30) == expected
                assert second.result(timeout=30) == expected
            stats = router.stats()
            assert stats["placement"]["spill_total"] >= 1
            assert stats["placement"]["reasons"]["spill"] >= 1

    def test_diverted_request_borrows_owner_snapshot(self, model, registry):
        with _router(model, registry) as router:
            prompt = [1, 2, 3]
            expected = _reference(model, prompt)
            home = router.affinity_replica(prompt)
            other = next(n for n in router.replica_names() if n != home)
            assert router.generate(prompt, CONFIG) == expected  # warm home
            router.drain(home, timeout=10)
            # Diverted off the holder: the survivor borrows home's
            # frozen snapshot instead of recomputing prefill.
            diverted = router.submit(prompt, CONFIG)
            assert diverted.replica == other
            assert diverted.result(timeout=30) == expected
            tier = router.stats()["cache_tier"]
            assert tier["borrows"] >= 1
            assert tier["borrow_tokens"] >= len(prompt)
            other_cache = router._replicas[other].supervisor.prefix_cache
            assert tuple(prompt) in other_cache
            # The borrowed copy is never spilled by the borrower...
            borrowed_keys = [key for key, _, _
                             in other_cache.entries_snapshot()]
            assert tuple(prompt) not in borrowed_keys
            # ...and the owner's copy got pinned against cold churn.
            home_cache = router._replicas[home].supervisor.prefix_cache
            assert home_cache._entries[tuple(prompt)].pinned

    def test_dead_holder_recomputes_identically(self, model, registry):
        with _router(model, registry) as router:
            prompt = [1, 2, 3]
            expected = _reference(model, prompt)
            home = router.affinity_replica(prompt)
            assert router.generate(prompt, CONFIG) == expected
            assert router.fleet_index.longest_match(prompt)[1] == (home,)
            # Kill the holder outright: its published entries invalidate
            # and traffic recomputes on a survivor, bit-identically.
            router._replicas[home].supervisor.stop(timeout=10)
            assert router.generate(prompt, CONFIG) == expected
            router._observe_health()  # the heartbeat's dead-replica sweep
            assert home not in router.fleet_index.longest_match(prompt)[1]
            assert router.stats()["cache_tier"]["borrows"] == 0

    def test_borrow_fault_degrades_to_recompute(self, model, registry):
        with _router(model, registry) as router:
            prompt = [1, 2, 3]
            expected = _reference(model, prompt)
            home = router.affinity_replica(prompt)
            assert router.generate(prompt, CONFIG) == expected
            router.drain(home, timeout=10)
            injector = FaultInjector(
                {"fleet_cache.borrow": FaultSpec(rate=1.0)})
            with inject_faults(injector):
                assert router.generate(prompt, CONFIG) == expected
            assert router.stats()["cache_tier"]["borrows"] == 0

    def test_fleet_cache_disabled_restores_ring_placement(self, model,
                                                          registry):
        with _router(model, registry, fleet_cache=False) as router:
            assert router.fleet_index is None
            prompt = [1, 2, 3]
            expected = _reference(model, prompt)
            home, _, _ = self._warm_on_other(router, prompt)
            # Without the tier the readmitted home serves its prefix.
            landed = router.submit(prompt, CONFIG)
            assert landed.replica == home
            assert landed.result(timeout=30) == expected
            tier = router.stats()["cache_tier"]
            assert tier["enabled"] is False
            assert tier["index"] is None

    def test_hit_token_rate_gauge_aggregates_fleet(self, model, registry):
        with _router(model, registry) as router:
            prompt = [1, 2, 3]
            router.generate(prompt, CONFIG)
            router.generate(prompt, CONFIG)  # same replica: cache hit
            tier = router.stats()["cache_tier"]
            assert tier["lookup_tokens"] > 0
            assert tier["hit_tokens"] > 0
            assert 0.0 < tier["hit_token_rate"] <= 1.0
            gauge = registry.gauge("cluster_cache_hit_token_rate").labels()
            assert gauge.value == pytest.approx(tier["hit_token_rate"])

    def test_zipf_skew_routes_hot_prefixes_bit_identically(self, model,
                                                           registry):
        # A deterministic Zipf-ish mix: one hot head dominating, a tail
        # of cold one-off prompts.  Every routed output must equal the
        # single-engine reference, and the hot prefix must produce
        # cache-reason placements once published.
        hot = [1, 2, 3]
        workload = [hot, [4, 5], hot, [6, 7], hot, [8, 9, 10], hot, hot]
        references = {tuple(p): _reference(model, p)
                      for p in {tuple(w) for w in workload}
                      for p in [list(p)]}
        with _router(model, registry, replicas=3) as router:
            for prompt in workload:
                assert router.generate(prompt, CONFIG) == \
                    references[tuple(prompt)]
            reasons = router.stats()["placement"]["reasons"]
            assert sum(reasons.values()) == len(workload)
            assert reasons["affinity"] >= 1
