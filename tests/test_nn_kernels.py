"""Unit battery for the inference kernels (``repro.nn.kernels``).

Covers the pieces the property suite treats as a black box: int8
per-channel quantization round-trips, :class:`WeightStore` sharing and
freeze semantics, unmanaged copy-out safety, sliding-window equality,
int8 determinism and quality (perplexity delta vs fp32 on a golden
recipe corpus), and the zero-allocation workspace regression gate.
"""

import numpy as np
import pytest

from repro.models import GenerationConfig, distilgpt2, generate, word_lstm
from repro.nn import WeightStore, quantize_per_channel
from repro.obs import NullRegistry, NullTracer
from repro.serving import EngineConfig, InferenceEngine

pytestmark = pytest.mark.kernels

VOCAB = 32


def _model(**kwargs):
    kwargs.setdefault("vocab_size", VOCAB)
    kwargs.setdefault("seed", 0)
    kwargs.setdefault("context_length", 96)
    return distilgpt2(**kwargs)


def _generate(model, prompt, max_new_tokens=24, **kwargs):
    config = GenerationConfig(max_new_tokens=max_new_tokens,
                              strategy="greedy", seed=0, **kwargs)
    return generate(model, prompt, config,
                    registry=NullRegistry(), tracer=NullTracer())


class TestQuantizePerChannel:
    def test_all_zero_channel_round_trips_exactly(self):
        weight = np.zeros((6, 4), dtype=np.float32)
        weight[:, 1] = np.linspace(-2.0, 2.0, 6, dtype=np.float32)
        qt = quantize_per_channel(weight, axis=1)
        back = qt.dequantize()
        # Zero channels get scale 1.0, not 0/0: they reconstruct to
        # exactly zero and the quantizer never divides by zero.
        assert np.array_equal(back[:, 0], np.zeros(6, dtype=np.float32))
        assert np.array_equal(back[:, 2:], np.zeros((6, 2), dtype=np.float32))
        assert qt.q.dtype == np.int8

    def test_single_outlier_channel_error_bounded(self):
        rng = np.random.default_rng(0)
        weight = rng.standard_normal((64, 8)).astype(np.float32) * 0.02
        weight[17, 3] = 50.0  # one outlier stretches channel 3's scale
        qt = quantize_per_channel(weight, axis=1)
        back = qt.dequantize()
        scale = np.abs(weight).max(axis=0) / 127.0
        # Symmetric rounding: per-channel error is at most half a step.
        error = np.abs(back - weight)
        assert np.all(error <= scale[None, :] / 2 + 1e-7)
        # The outlier itself sits exactly on the top code.
        assert qt.q[17, 3] == 127
        assert back[17, 3] == pytest.approx(50.0, rel=1e-6)

    def test_round_trip_error_bounded_generally(self):
        rng = np.random.default_rng(1)
        weight = rng.standard_normal((32, 48)).astype(np.float32)
        for axis in (0, 1):
            qt = quantize_per_channel(weight, axis=axis)
            step = qt.scale  # keepdims: broadcasts against weight
            assert np.all(np.abs(qt.dequantize() - weight) <= step / 2 + 1e-7)


class TestWeightStore:
    def test_store_references_model_arrays_without_copy(self):
        model = _model()
        store = WeightStore.from_model(model)
        assert store.wte is model.wte.weight.data
        assert store.blocks[0].qkv_w is model.blocks[0].attn.qkv.weight.data
        assert store.fp32_nbytes > 0

    def test_freeze_and_release(self):
        model = _model()
        store = WeightStore.from_model(model)
        store.freeze()
        assert store.frozen
        assert not model.wte.weight.data.flags.writeable
        with pytest.raises(ValueError):
            model.wte.weight.data[0, 0] = 1.0
        store.release()
        assert not store.frozen
        assert model.wte.weight.data.flags.writeable

    def test_quantized_weights_cached_and_read_only(self):
        store = WeightStore.from_model(_model())
        wte_q, blocks_q = store.quantized()
        wte_q2, blocks_q2 = store.quantized()
        assert wte_q is wte_q2 and blocks_q is blocks_q2
        assert not wte_q.q.flags.writeable

    def test_two_models_can_share_one_store(self):
        owner = _model()
        store = WeightStore.from_model(owner, freeze=True)
        twin = _model()
        twin.enable_kernels("fp32", store=store)
        assert twin.kernels.store is store
        # Sharing a store must not have copied any weight bytes.
        shared = {id(a) for a in store.all_arrays()}
        assert id(owner.wte.weight.data) in shared
        # disable_kernels on the borrower leaves the owner's freeze.
        twin.disable_kernels()
        assert store.frozen
        store.release()


class TestKernelDispatch:
    def test_enable_kernels_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            _model().enable_kernels("fp16")

    def test_lstm_has_no_kernel_implementation(self):
        with pytest.raises(NotImplementedError):
            word_lstm(vocab_size=VOCAB).enable_kernels()

    def test_training_mode_falls_back_to_tensor_path(self):
        model = _model()
        model.enable_kernels("fp32")
        assert model._active_kernels() is not None
        model.train()
        assert model._active_kernels() is None
        # Gradients still flow on the fallback path.
        loss = model(np.array([[1, 2, 3]])).sum()
        loss.backward()
        model.eval()
        assert model._active_kernels() is not None

    def test_out_of_range_token_raises_like_tensor_path(self):
        model = _model()
        model.enable_kernels("fp32")
        with pytest.raises(IndexError, match="token id out of range"):
            model(np.array([[VOCAB]]))

    def test_unmanaged_outputs_are_defensive_copies(self):
        model = _model()
        model.enable_kernels("fp32")
        first = model(np.array([[1, 2, 3]])).data
        snapshot = first.copy()
        # A second call reuses the workspace arenas; the first result
        # must not be clobbered.
        model(np.array([[4, 5, 6, 7]]))
        assert np.array_equal(first, snapshot)

    def test_sliding_window_decode_matches_tensor_path(self):
        # Decode far past the context window: eviction + re-anchor
        # must follow the exact Tensor-path schedule.
        tensor_model = _model(context_length=32)
        tensor_model.eval()
        kernel_model = _model(context_length=32)
        kernel_model.enable_kernels("fp32")
        prompt = [1, 2, 3, 4, 5]
        assert (_generate(kernel_model, prompt, max_new_tokens=60)
                == _generate(tensor_model, prompt, max_new_tokens=60))


class TestInt8Kernels:
    def test_int8_decode_is_deterministic(self):
        model = _model()
        model.enable_kernels("int8")
        prompt = [3, 1, 4, 1, 5]
        assert (_generate(model, prompt) == _generate(model, prompt))

    def test_int8_logits_close_to_fp32(self):
        fp32 = _model()
        fp32.eval()
        int8 = _model()
        int8.enable_kernels("int8")
        ids = np.arange(12).reshape(1, 12) % VOCAB
        ref = fp32(ids).data
        quant = int8(ids).data
        scale = np.abs(ref).max()
        assert np.abs(quant - ref).max() <= 0.02 * scale

    def test_int8_weight_bytes_smaller_than_fp32(self):
        model = _model()
        kernels = model.enable_kernels("int8")
        stats = kernels.stats()
        assert 0 < stats["weight_int8_bytes"] < stats["weight_fp32_bytes"]


class TestInt8Perplexity:
    def test_perplexity_delta_within_two_percent(self):
        # Golden corpus: deterministic synthetic recipes through the
        # real preprocessing + tokenizer stack.
        from repro.evaluate import perplexity
        from repro.preprocess import preprocess
        from repro.recipedb import generate_corpus
        from repro.tokenizers import WordTokenizer
        from repro.training import LMDataset

        texts, _ = preprocess(generate_corpus(12, seed=7))
        tokenizer = WordTokenizer(texts)
        dataset = LMDataset(texts, tokenizer, seq_len=64)

        fp32 = distilgpt2(vocab_size=tokenizer.vocab_size, seed=0)
        fp32.enable_kernels("fp32")
        int8 = distilgpt2(vocab_size=tokenizer.vocab_size, seed=0)
        int8.enable_kernels("int8")

        ppl_fp32 = perplexity(fp32, dataset, max_batches=3)
        ppl_int8 = perplexity(int8, dataset, max_batches=3)
        assert abs(ppl_int8 - ppl_fp32) / ppl_fp32 <= 0.02


class TestWorkspaceReuse:
    def test_allocations_stable_across_hundred_requests(self):
        model = _model()
        kernels = model.enable_kernels("fp32")
        engine = InferenceEngine(
            model, EngineConfig(max_batch_size=4, prefix_cache_bytes=0,
                                max_queue=128),
            registry=NullRegistry(), tracer=NullTracer())
        try:
            config = GenerationConfig(max_new_tokens=8, strategy="greedy",
                                      seed=0)
            rng = np.random.default_rng(0)

            def burst(count):
                prompts = [[int(t) for t in
                            rng.integers(0, VOCAB, size=rng.integers(2, 20))]
                           for _ in range(count)]
                handles = [engine.submit(p, config) for p in prompts]
                for handle in handles:
                    handle.result(timeout=120)

            burst(8)  # warmup: preallocate() + first-step growth
            settled = kernels.allocation_count
            burst(100)
            assert kernels.allocation_count == settled
            stats = engine.stats()["kernels"]
            assert stats["mode"] == "fp32"
            assert stats["workspace_allocations"] == settled
        finally:
            engine.stop()
