"""Crash-atomic retrieval-index persistence (docs/DURABILITY.md).

``RecipeIndex.save`` writes every file to a temp name, fsyncs, and
``os.replace``s it into place with ``meta.json`` — the completeness
marker ``exists_on_disk`` checks — landing last.  These tests kill the
save at its worst moments and assert the invariant the warm-restart
path relies on: the directory is either a complete loadable index or
cleanly incomplete, never a torn mix.
"""

import pytest

import repro.durability
from repro.obs import MetricsRegistry
from repro.recipedb import generate_corpus
from repro.retrieval import RecipeIndex, exists_on_disk

pytestmark = [pytest.mark.durability, pytest.mark.retrieval]


@pytest.fixture(scope="module")
def index():
    return RecipeIndex.from_recipes(generate_corpus(80, seed=7),
                                    registry=MetricsRegistry())


class _DieAt:
    """Raise ``OSError`` when the watched filename comes through."""

    def __init__(self, real, basename):
        self._real = real
        self._basename = basename

    def __call__(self, path, *args, **kwargs):
        if str(path).endswith(self._basename):
            raise OSError(f"injected crash while writing {self._basename}")
        return self._real(path, *args, **kwargs)


class TestKillMidSave:
    def test_crash_before_commit_point_leaves_incomplete_dir(
            self, index, tmp_path, monkeypatch):
        target = tmp_path / "index"
        monkeypatch.setattr(
            repro.durability, "atomic_write_bytes",
            _DieAt(repro.durability.atomic_write_bytes, "meta.json"))
        with pytest.raises(OSError):
            index.save(target)
        # Payload files may exist, but without the meta.json commit
        # point the warm-restart path must treat the dir as cold.
        assert exists_on_disk(target) is False
        with pytest.raises(Exception):
            RecipeIndex.load(target)

    def test_crash_during_payload_write_leaves_incomplete_dir(
            self, index, tmp_path, monkeypatch):
        target = tmp_path / "index"
        monkeypatch.setattr(
            repro.durability, "fsync_file",
            _DieAt(repro.durability.fsync_file, ".npy"))
        with pytest.raises(OSError):
            index.save(target)
        assert exists_on_disk(target) is False
        assert not (target / "vectors.npy").exists()

    def test_retry_after_crash_succeeds_and_loads(self, index, tmp_path,
                                                  monkeypatch):
        target = tmp_path / "index"
        monkeypatch.setattr(
            repro.durability, "atomic_write_bytes",
            _DieAt(repro.durability.atomic_write_bytes, "meta.json"))
        with pytest.raises(OSError):
            index.save(target)
        monkeypatch.undo()

        index.save(target)  # the restart's rebuild-and-save
        assert exists_on_disk(target) is True
        loaded = RecipeIndex.load(target, registry=MetricsRegistry())
        query = "garlic chicken with rice"
        assert ([hit.doc_id for hit in loaded.search(query, k=3)]
                == [hit.doc_id for hit in index.search(query, k=3)])


class TestCleanSave:
    def test_no_temp_litter_after_success(self, index, tmp_path):
        target = tmp_path / "index"
        index.save(target)
        leftovers = [path.name for path in target.iterdir()
                     if ".tmp" in path.name]
        assert leftovers == []
        assert sorted(path.name for path in target.iterdir()) == [
            "ann.npz", "meta.json", "texts.json", "vectors.npy"]

    def test_resave_over_complete_index_stays_loadable(self, index,
                                                       tmp_path):
        target = tmp_path / "index"
        index.save(target)
        index.save(target)  # e.g. a periodic refresh over the old files
        assert exists_on_disk(target) is True
        assert len(RecipeIndex.load(target)) == len(index)
