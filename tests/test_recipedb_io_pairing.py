"""Unit tests for persistence and flavor pairing (repro.recipedb)."""

import pytest

from repro.recipedb import (IngredientCatalog, PairingGraph, export_csv,
                            generate_corpus, load_jsonl, save_jsonl)


@pytest.fixture(scope="module")
def small_catalog():
    return IngredientCatalog(expansion_factor=0, seed=0)


class TestJsonl:
    def test_roundtrip_preserves_content(self, tmp_path):
        recipes = generate_corpus(15, seed=9)
        path = tmp_path / "corpus.jsonl"
        written = save_jsonl(recipes, path)
        assert written == 15
        loaded = load_jsonl(path)
        assert len(loaded) == 15
        for original, restored in zip(recipes, loaded):
            assert restored.recipe_id == original.recipe_id
            assert restored.title == original.title
            assert restored.country == original.country
            assert ([ri.display() for ri in restored.ingredients]
                    == [ri.display() for ri in original.ingredients])
            assert ([s.text for s in restored.instructions]
                    == [s.text for s in original.instructions])
            assert restored.nutrition == original.nutrition
            assert restored.health_associations == original.health_associations

    def test_blank_lines_skipped(self, tmp_path):
        recipes = generate_corpus(2, seed=0)
        path = tmp_path / "c.jsonl"
        save_jsonl(recipes, path)
        path.write_text(path.read_text() + "\n\n", encoding="utf-8")
        assert len(load_jsonl(path)) == 2

    def test_invalid_json_reports_line(self, tmp_path):
        import json
        path = tmp_path / "bad.jsonl"
        good = json.dumps(generate_corpus(1, seed=0)[0].to_dict())
        path.write_text(f"{good}\nnot json\n", encoding="utf-8")
        with pytest.raises(ValueError, match="2"):
            load_jsonl(path)

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "c.jsonl"
        save_jsonl(generate_corpus(1, seed=0), path)
        assert path.exists()


class TestCsv:
    def test_export_header_and_rows(self, tmp_path):
        recipes = generate_corpus(5, seed=1)
        path = tmp_path / "corpus.csv"
        count = export_csv(recipes, path)
        assert count == 5
        lines = path.read_text(encoding="utf-8").strip().splitlines()
        assert lines[0].startswith("recipe_id,title")
        assert len(lines) == 6


class TestPairingGraph:
    def test_nodes_match_catalog(self, small_catalog):
        graph = PairingGraph(small_catalog)
        assert graph.graph.number_of_nodes() == len(small_catalog)

    def test_score_symmetric(self, small_catalog):
        graph = PairingGraph(small_catalog)
        assert graph.score("onion", "garlic") == graph.score("garlic", "onion")

    def test_neighbors_sorted_desc(self, small_catalog):
        graph = PairingGraph(small_catalog)
        neighbors = graph.neighbors("basil", limit=5)
        scores = [s for _, s in neighbors]
        assert scores == sorted(scores, reverse=True)

    def test_neighbors_unknown_raises(self, small_catalog):
        graph = PairingGraph(small_catalog)
        with pytest.raises(KeyError):
            graph.neighbors("unobtainium")

    def test_suggest_excludes_query(self, small_catalog):
        graph = PairingGraph(small_catalog)
        suggestions = graph.suggest(["onion", "garlic"], limit=5)
        names = [name for name, _ in suggestions]
        assert "onion" not in names
        assert "garlic" not in names

    def test_suggest_category_exclusion(self, small_catalog):
        graph = PairingGraph(small_catalog)
        suggestions = graph.suggest(["basil"], limit=10,
                                    exclude_categories=["herb"])
        for name, _ in suggestions:
            assert small_catalog.get(name).category != "herb"

    def test_suggest_unknown_query_empty(self, small_catalog):
        graph = PairingGraph(small_catalog)
        assert graph.suggest(["unobtainium"]) == []

    def test_intra_category_edges_denser(self, small_catalog):
        """Same-category pairs overlap more than cross-category ones."""
        graph = PairingGraph(small_catalog)
        herb_pairs = graph.score("basil", "mint")
        cross = graph.score("basil", "ground beef")
        assert herb_pairs >= cross
