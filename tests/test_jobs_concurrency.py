"""Concurrency behaviour of the job queue: backpressure, timeouts,
shutdown with in-flight work, and metric consistency after a burst."""

import threading
import time

import pytest

from repro.obs import MetricsRegistry
from repro.webapp import Request
from repro.webapp.backend import create_backend
from repro.webapp.jobs import JobQueue, JobStatus, QueueFullError


class _Gate:
    """A job body that blocks until released; lets tests hold a worker."""

    def __init__(self):
        self.release = threading.Event()
        self.entered = threading.Event()

    def __call__(self):
        self.entered.set()
        if not self.release.wait(timeout=10):
            raise TimeoutError("gate never released")
        return "done"


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestBackpressure:
    def test_queue_full_raises(self, registry):
        queue = JobQueue(workers=1, max_pending=2, registry=registry)
        gate = _Gate()
        try:
            queue.submit(gate)          # occupies the worker
            gate.entered.wait(timeout=5)
            queue.submit(lambda: 1)     # pending 1
            queue.submit(lambda: 2)     # pending 2 == max_pending
            with pytest.raises(QueueFullError):
                queue.submit(lambda: 3)
            assert registry.counter("jobs_rejected_total").value == 1
            assert registry.counter("jobs_submitted_total").value == 3
        finally:
            gate.release.set()
            queue.shutdown()

    def test_rejected_job_not_tracked(self, registry):
        queue = JobQueue(workers=1, max_pending=1, registry=registry)
        gate = _Gate()
        try:
            queue.submit(gate)
            gate.entered.wait(timeout=5)
            queue.submit(lambda: 1)
            before = len(queue._jobs)
            with pytest.raises(QueueFullError):
                queue.submit(lambda: 2)
            assert len(queue._jobs) == before
        finally:
            gate.release.set()
            queue.shutdown()

    def test_backend_returns_429_when_full(self, registry):
        class FakeModel:
            def num_parameters(self):
                return 0

        class FakeTokenizer:
            vocab_size = 1

        class FakePipeline:
            model = FakeModel()
            tokenizer = FakeTokenizer()

            def generate(self, names, generation=None, checklist=False):
                raise AssertionError("should never run: queue is full")

        queue = JobQueue(workers=1, max_pending=1, registry=registry)
        gate = _Gate()
        try:
            queue.submit(gate)
            gate.entered.wait(timeout=5)
            queue.submit(lambda: 1)  # fills the only pending slot
            # use_engine=False: FakePipeline's model cannot back a real
            # serving engine, and this test only exercises the job queue.
            app = create_backend(FakePipeline(), job_queue=queue,
                                 registry=registry, use_engine=False)
            request = Request(method="POST", path="/api/generate_async",
                              query={}, headers={},
                              body=b'{"ingredients": ["salt"]}')
            response = app.dispatch(request)
            assert response.status == 429
            assert b"queue full" in response.body
        finally:
            gate.release.set()
            queue.shutdown()


class TestWaitTimeout:
    def test_wait_times_out_while_running(self, registry):
        queue = JobQueue(workers=1, registry=registry)
        gate = _Gate()
        try:
            job_id = queue.submit(gate)
            gate.entered.wait(timeout=5)
            with pytest.raises(TimeoutError) as excinfo:
                queue.wait(job_id, timeout=0.1, poll=0.01)
            assert "running" in str(excinfo.value)
        finally:
            gate.release.set()
            queue.shutdown()

    def test_wait_returns_failed_jobs_too(self, registry):
        queue = JobQueue(workers=1, registry=registry)
        try:
            job_id = queue.submit(lambda: 1 / 0)
            job = queue.wait(job_id, timeout=5)
            assert job.status is JobStatus.FAILED
            assert "ZeroDivisionError" in job.error
            snapshot = job.snapshot()
            assert snapshot["status"] == "failed"
            assert "result" not in snapshot
        finally:
            queue.shutdown()

    def test_wait_unknown_job(self, registry):
        queue = JobQueue(registry=registry)
        try:
            with pytest.raises(KeyError):
                queue.wait("nope", timeout=0.1)
        finally:
            queue.shutdown()


class TestShutdown:
    def test_shutdown_with_in_flight_job_completes_it(self, registry):
        queue = JobQueue(workers=1, registry=registry)
        gate = _Gate()
        job_id = queue.submit(gate)
        gate.entered.wait(timeout=5)
        queue.shutdown()
        with pytest.raises(RuntimeError):
            queue.submit(lambda: 1)
        gate.release.set()  # in-flight work still finishes cleanly
        job = queue.wait(job_id, timeout=5)
        assert job.status is JobStatus.DONE
        assert job.result == "done"
        for thread in queue._threads:
            thread.join(timeout=5)
            assert not thread.is_alive()

    def test_shutdown_idempotent(self, registry):
        queue = JobQueue(workers=2, registry=registry)
        queue.shutdown()
        queue.shutdown()

    def test_shutdown_fails_pending_jobs_named(self, registry):
        # Regression: pending jobs used to stay PENDING forever after
        # shutdown — a client polling GET /api/job would never learn
        # its fate.  They must resolve FAILED with the named error.
        from repro.webapp.jobs import SHUTDOWN_ERROR

        queue = JobQueue(workers=1, max_pending=8, registry=registry)
        gate = _Gate()
        running = queue.submit(gate)
        gate.entered.wait(timeout=5)
        pending = [queue.submit(lambda: "never") for _ in range(3)]
        queue.shutdown()
        gate.release.set()
        for job_id in pending:
            job = queue.wait(job_id, timeout=5)
            assert job.status is JobStatus.FAILED
            assert job.error == SHUTDOWN_ERROR
            assert job.finished_at is not None
        # The job that was already running still completed.
        assert queue.wait(running, timeout=5).status is JobStatus.DONE
        failed = registry.counter("jobs_completed_total").labels(
            status="failed").value
        assert failed == 3

    def test_shutdown_wakes_every_worker_with_tiny_queue(self, registry):
        # More workers than queue slots: shutdown can only fit one
        # sentinel, so exiting workers must re-post it for the rest.
        queue = JobQueue(workers=4, max_pending=1, registry=registry)
        queue.shutdown()
        for thread in queue._threads:
            thread.join(timeout=5)
            assert not thread.is_alive()


class TestBurstConsistency:
    def test_counters_consistent_after_burst(self, registry):
        queue = JobQueue(workers=4, max_pending=64, registry=registry)
        accepted, rejected = [], 0
        try:
            for i in range(50):
                try:
                    accepted.append(queue.submit(
                        (lambda v: (lambda: v * v))(i)))
                except QueueFullError:
                    rejected += 1
            results = [queue.wait(job_id, timeout=10) for job_id in accepted]
            assert all(job.status is JobStatus.DONE for job in results)
            submitted = registry.counter("jobs_submitted_total").value
            completed = registry.counter("jobs_completed_total")
            assert submitted == len(accepted)
            assert registry.counter("jobs_rejected_total").value == rejected
            # Give workers a beat to flush the final task_done accounting.
            deadline = time.time() + 5
            while (completed.labels(status="done").value < submitted
                   and time.time() < deadline):
                time.sleep(0.01)
            assert completed.labels(status="done").value == submitted
            wait_hist = registry.histogram("jobs_wait_seconds").summary()
            run_hist = registry.histogram("jobs_run_seconds").summary()
            assert wait_hist["count"] == submitted
            assert run_hist["count"] == submitted
            assert registry.gauge("jobs_queue_depth").value == 0
        finally:
            queue.shutdown()

    def test_mixed_outcomes_counted_by_status(self, registry):
        queue = JobQueue(workers=2, max_pending=32, registry=registry)
        try:
            good = [queue.submit(lambda: "ok") for _ in range(5)]
            bad = [queue.submit(lambda: 1 / 0) for _ in range(3)]
            for job_id in good + bad:
                queue.wait(job_id, timeout=10)
            completed = registry.counter("jobs_completed_total")
            assert completed.labels(status="done").value == 5
            assert completed.labels(status="failed").value == 3
        finally:
            queue.shutdown()
