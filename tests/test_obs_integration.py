"""The obs layer threaded through the stack: generation spans/metrics,
HTTP middleware, the /api/metrics endpoint, trainer callback, CLI."""

import json

import numpy as np
import pytest

from repro.models import GenerationConfig, generate
from repro.models.base import LanguageModel
from repro.obs import (ManualClock, MetricsRegistry, NullRegistry,
                       NullTracer, Tracer)
from repro.training import MetricsCallback
from repro.webapp import App, MetricsMiddleware, Request, Response
from repro.webapp.jobs import JobQueue


class ToyModel(LanguageModel):
    """Deterministic stateless model: logits depend on the last token."""

    def __init__(self, vocab_size: int = 16) -> None:
        super().__init__(vocab_size)

    def start_state(self, batch_size: int):
        return None

    def next_logits(self, ids: np.ndarray, state):
        base = np.arange(self.vocab_size, dtype=np.float64)
        logits = np.roll(base, int(ids[-1]))[None, :]
        return logits, state


def _request(path="/ping", method="GET"):
    return Request(method=method, path=path, query={}, headers={})


class TestGenerationObservability:
    def test_metrics_recorded(self):
        registry, tracer = MetricsRegistry(), Tracer()
        out = generate(ToyModel(), [1, 2],
                       GenerationConfig(strategy="greedy", max_new_tokens=7),
                       registry=registry, tracer=tracer)
        assert len(out) == 7
        reqs = registry.counter("generation_requests_total")
        assert reqs.labels(strategy="greedy").value == 1
        tokens = registry.counter("generation_tokens_total")
        assert tokens.labels(strategy="greedy").value == 7
        assert registry.histogram("generation_token_seconds").summary(
            )["count"] == 7
        assert registry.histogram("generation_request_seconds").labels(
            strategy="greedy").summary()["count"] == 1
        assert registry.gauge("generation_tokens_per_second").value > 0

    def test_span_tree_shape(self):
        registry, tracer = MetricsRegistry(), Tracer()
        generate(ToyModel(), [1, 2, 3],
                 GenerationConfig(strategy="sample", max_new_tokens=5),
                 registry=registry, tracer=tracer)
        (root,) = tracer.roots()
        assert root.name == "generate"
        assert root.attrs == {"strategy": "sample"}
        assert [c.name for c in root.children] == ["prefill", "decode"]
        assert root.children[0].attrs == {"tokens": 3}
        assert len(root.children[1].find("token")) == 5

    def test_beam_spans_and_metrics(self):
        registry, tracer = MetricsRegistry(), Tracer()
        out = generate(ToyModel(), [1],
                       GenerationConfig(strategy="beam", beam_size=2,
                                        max_new_tokens=4),
                       registry=registry, tracer=tracer)
        assert len(out) == 4
        (root,) = tracer.roots()
        assert [c.name for c in root.children] == ["prefill", "decode"]
        tokens = registry.counter("generation_tokens_total")
        assert tokens.labels(strategy="beam").value == 4
        assert registry.histogram("generation_token_seconds").summary(
            )["count"] == 4

    def test_stop_token_counts_only_emitted(self):
        registry = MetricsRegistry()
        out = generate(ToyModel(), [1],
                       GenerationConfig(strategy="greedy", max_new_tokens=50,
                                        stop_token_id=15),
                       registry=registry, tracer=NullTracer())
        tokens = registry.counter("generation_tokens_total")
        assert tokens.labels(strategy="greedy").value == len(out)

    def test_null_sinks_record_nothing(self):
        registry, tracer = NullRegistry(), NullTracer()
        generate(ToyModel(), [1], GenerationConfig(max_new_tokens=3),
                 registry=registry, tracer=tracer)
        assert registry.families() == []
        assert tracer.roots() == []

    def test_same_output_with_and_without_metrics(self):
        config = GenerationConfig(strategy="sample", max_new_tokens=10, seed=5)
        a = generate(ToyModel(), [1], config,
                     registry=MetricsRegistry(), tracer=Tracer())
        b = generate(ToyModel(), [1], config,
                     registry=NullRegistry(), tracer=NullTracer())
        assert a == b


class TestMetricsMiddleware:
    def _app(self):
        app = App()

        @app.route("/ping")
        def ping(request):
            return Response.json({"pong": True})

        @app.route("/boom")
        def boom(request):
            raise ValueError("nope")

        return app

    def test_counts_by_route_and_status(self):
        registry = MetricsRegistry(clock=ManualClock())
        app = self._app()
        MetricsMiddleware(app, registry=registry)
        app.dispatch(_request("/ping"))
        app.dispatch(_request("/ping"))
        app.dispatch(_request("/boom"))
        app.dispatch(_request("/missing"))
        reqs = registry.counter("http_requests_total")
        assert reqs.labels(route="/ping", status="200").value == 2
        assert reqs.labels(route="/boom", status="400").value == 1
        assert reqs.labels(route="/missing", status="404").value == 1
        latency = registry.histogram("http_request_seconds")
        assert latency.labels(route="/ping").summary()["count"] == 2
        assert registry.gauge("http_inflight_requests").value == 0

    def test_latency_uses_registry_clock(self):
        clock = ManualClock()
        registry = MetricsRegistry(clock=clock)
        app = App()

        @app.route("/slow")
        def slow(request):
            clock.advance(0.75)
            return Response.json({})

        MetricsMiddleware(app, registry=registry)
        app.dispatch(_request("/slow"))
        summary = registry.histogram("http_request_seconds").labels(
            route="/slow").summary()
        assert summary["max"] == pytest.approx(0.75)


class TestJobQueueMetrics:
    def test_lifecycle_durations_with_manual_clock(self):
        registry = MetricsRegistry()
        queue = JobQueue(workers=1, max_pending=4, registry=registry)
        job_id = queue.submit(lambda: 42)
        job = queue.wait(job_id, timeout=5)
        assert job.result == 42
        completed = registry.counter("jobs_completed_total")
        assert completed.labels(status="done").value == 1
        assert registry.counter("jobs_submitted_total").value == 1
        assert registry.histogram("jobs_wait_seconds").summary()["count"] == 1
        assert registry.histogram("jobs_run_seconds").summary()["count"] == 1
        queue.shutdown()


class TestMetricsCallback:
    def test_step_and_eval_series(self):
        clock = ManualClock()
        registry = MetricsRegistry(clock=clock)
        callback = MetricsCallback(registry=registry, clock=clock)
        callback.on_step(1, loss=2.5, lr=1e-3)
        clock.advance(0.2)
        callback.on_step(2, loss=2.0, lr=9e-4)
        clock.advance(0.3)
        callback.on_step(3, loss=1.5, lr=8e-4)
        callback.on_eval(3, val_loss=1.8)
        assert registry.counter("train_steps_total").value == 3
        assert registry.counter("train_evals_total").value == 1
        assert registry.gauge("train_loss").value == 1.5
        assert registry.gauge("train_val_loss").value == 1.8
        assert registry.gauge("train_lr").value == pytest.approx(8e-4)
        steps = registry.histogram("train_step_seconds").summary()
        assert steps["count"] == 2  # intervals, not steps
        assert steps["min"] == pytest.approx(0.2)
        assert steps["max"] == pytest.approx(0.3)

    def test_works_in_real_trainer(self):
        from repro.models.lstm import LSTMConfig, LSTMLanguageModel
        from repro.tokenizers import CharTokenizer
        from repro.training import LMDataset, Trainer, TrainingConfig

        registry = MetricsRegistry()
        tokenizer = CharTokenizer(["mix the flour and water well"])
        model = LSTMLanguageModel(LSTMConfig(
            vocab_size=tokenizer.vocab_size, d_embed=8, d_hidden=16,
            num_layers=1, dropout=0.0))
        dataset = LMDataset(["mix the flour and water well"], tokenizer,
                            seq_len=8)
        trainer = Trainer(model,
                          TrainingConfig(max_steps=3, batch_size=2,
                                         eval_every=10**9),
                          callbacks=[MetricsCallback(registry=registry)])
        trainer.train(dataset)
        assert registry.counter("train_steps_total").value == 3
        assert registry.histogram("train_step_seconds").summary()["count"] == 2


class TestMetricsCli:
    def test_demo_text(self, capsys):
        from repro.cli import main
        assert main(["metrics", "--demo"]) == 0
        out = capsys.readouterr().out
        assert "generation_tokens_total" in out
        assert 'strategy="greedy"' in out

    def test_demo_json_with_trace(self, capsys):
        from repro.cli import main
        assert main(["metrics", "--demo", "--format", "json",
                     "--trace"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "generation_requests_total" in payload["metrics"]
        assert "engine_requests_total" in payload["metrics"]
        names = [s["name"] for s in payload["trace"]["spans"]]
        # Two sequential generates, then the engine demo's prefills.
        assert names[:2] == ["generate", "generate"]
        assert names.count("engine.prefill") == 4

    def test_no_mode_errors(self):
        from repro.cli import main
        with pytest.raises(SystemExit):
            main(["metrics"])
