"""Crash-recovery gate (slow tier).

Runs ``benchmarks/run_crash_recovery.py`` — a real ``repro serve``
subprocess with ``--journal-dir``/``--spill-dir`` is SIGKILLed
mid-batch; the restarted process must lose zero acknowledged jobs,
append zero duplicate completions, replay to bit-identical results,
and exit 0 on SIGTERM.  Excluded from the tier-1 default run; invoke
with ``pytest -m slow``.
"""

import pathlib
import sys

import pytest

pytestmark = [pytest.mark.slow, pytest.mark.durability]

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent
                       / "benchmarks"))

import run_crash_recovery  # noqa: E402


def test_kill_dash_nine_loses_no_acknowledged_work():
    assert run_crash_recovery.main([]) == 0
