"""Unit tests for prefix-cache spill snapshots (docs/DURABILITY.md).

Versioned commit-point layout (a crash mid-save leaves the previous
snapshot live), the model-fingerprint gate against stale KV state,
mmap array identity/aliasing, and the fail-closed unpickler.
"""

import os
import pickle

import numpy as np
import pytest

from repro.durability import (CacheSpill, FleetCacheSpill, SpillError,
                              model_fingerprint)
from repro.models.lstm import LSTMConfig, LSTMLanguageModel
from repro.serving import PrefixCache

pytestmark = pytest.mark.durability


def _model(seed=0):
    rng = np.random.default_rng(seed)
    model = LSTMLanguageModel(LSTMConfig(vocab_size=16, d_embed=4,
                                         d_hidden=8, num_layers=1,
                                         dropout=0.0))
    for param in model.parameters():
        param.data[...] = rng.normal(size=param.data.shape)
    return model


def _filled_cache(entries=4):
    cache = PrefixCache(max_bytes=1 << 20)
    for index in range(entries):
        value = {"states": np.arange(8, dtype=np.float32) + index,
                 "depth": index}
        cache.insert([1, 2, index], value, nbytes=64)
    return cache


class TestRoundTrip:
    def test_save_and_load_restores_entries_and_order(self, tmp_path):
        cache = _filled_cache()
        spill = CacheSpill(tmp_path / "spill")
        summary = spill.save(cache)
        assert summary["entries"] == 4

        restored = PrefixCache(max_bytes=1 << 20)
        assert spill.load_into(restored) == 4
        # Same keys, same payloads, same LRU (oldest-first) order.
        original = cache.entries_snapshot()
        rebuilt = restored.entries_snapshot()
        assert [key for key, _, _ in rebuilt] == [key for key, _, _
                                                  in original]
        for (_, want, _), (_, got, _) in zip(original, rebuilt):
            assert got["depth"] == want["depth"]
            assert np.array_equal(got["states"], want["states"])

    def test_loaded_arrays_are_readonly_views(self, tmp_path):
        spill = CacheSpill(tmp_path / "spill")
        spill.save(_filled_cache())
        restored = PrefixCache(max_bytes=1 << 20)
        spill.load_into(restored)
        _, value, _ = restored.entries_snapshot()[0]
        assert not value["states"].flags.writeable

    def test_aliased_arrays_stay_aliased_after_reload(self, tmp_path):
        shared = np.ones(16, dtype=np.float32)
        cache = PrefixCache(max_bytes=1 << 20)
        cache.insert([1], {"states": shared}, nbytes=64)
        cache.insert([2], {"states": shared}, nbytes=64)
        spill = CacheSpill(tmp_path / "spill")
        spill.save(cache)
        restored = PrefixCache(max_bytes=1 << 20)
        spill.load_into(restored)
        (_, first, _), (_, second, _) = restored.entries_snapshot()
        # Deduplicated by identity at save time => one payload, one view.
        assert first["states"] is second["states"]

    def test_load_without_snapshot_is_cold_start(self, tmp_path):
        spill = CacheSpill(tmp_path / "spill")
        assert spill.exists() is False
        assert spill.load_into(PrefixCache(max_bytes=1024)) == 0


class TestCommitPoint:
    def test_crash_mid_save_leaves_previous_version_live(self, tmp_path):
        spill = CacheSpill(tmp_path / "spill")
        spill.save(_filled_cache(entries=3))
        # A later save that died before rewriting CURRENT: the version
        # directory exists (even complete) but was never committed.
        orphan = tmp_path / "spill" / "v000099"
        orphan.mkdir()
        (orphan / "meta.json").write_text("{}", encoding="utf-8")
        restored = PrefixCache(max_bytes=1 << 20)
        assert spill.load_into(restored) == 3

    def test_new_save_supersedes_and_prunes_old_versions(self, tmp_path):
        spill = CacheSpill(tmp_path / "spill", keep_versions=0)
        spill.save(_filled_cache(entries=2))
        spill.save(_filled_cache(entries=4))
        current = (tmp_path / "spill" / "CURRENT").read_text("utf-8").strip()
        versions = sorted(path.name for path
                          in (tmp_path / "spill").glob("v*"))
        assert versions == [current]
        restored = PrefixCache(max_bytes=1 << 20)
        assert spill.load_into(restored) == 4


class TestFingerprintGate:
    def test_same_weights_same_fingerprint(self):
        assert model_fingerprint(_model(0)) == model_fingerprint(_model(0))

    def test_weight_change_changes_fingerprint(self):
        model = _model(0)
        before = model_fingerprint(model)
        next(iter(model.parameters())).data[...] += 1.0
        assert model_fingerprint(model) != before

    def test_mismatched_model_loads_cold(self, tmp_path):
        saver = CacheSpill(tmp_path / "spill", model=_model(0))
        saver.save(_filled_cache())
        loader = CacheSpill(tmp_path / "spill", model=_model(1))
        assert loader.load_into(PrefixCache(max_bytes=1 << 20)) == 0

    def test_matching_model_loads_warm(self, tmp_path):
        model = _model(0)
        CacheSpill(tmp_path / "spill", model=model).save(_filled_cache())
        loader = CacheSpill(tmp_path / "spill", model=_model(0))
        assert loader.load_into(PrefixCache(max_bytes=1 << 20)) == 4


class TestFailClosed:
    def test_truncated_blob_raises_spill_error(self, tmp_path):
        spill = CacheSpill(tmp_path / "spill")
        spill.save(_filled_cache())
        current = (tmp_path / "spill" / "CURRENT").read_text("utf-8").strip()
        blob = tmp_path / "spill" / current / "tensors.bin"
        blob.write_bytes(blob.read_bytes()[:8])
        with pytest.raises(SpillError):
            spill.load_into(PrefixCache(max_bytes=1 << 20))

    def test_unpickler_refuses_non_whitelisted_modules(self, tmp_path):
        spill = CacheSpill(tmp_path / "spill")
        spill.save(_filled_cache(entries=1))
        current = (tmp_path / "spill" / "CURRENT").read_text("utf-8").strip()
        (tmp_path / "spill" / current / "entries.pkl").write_bytes(
            pickle.dumps(os.system))
        with pytest.raises(SpillError):
            spill.load_into(PrefixCache(max_bytes=1 << 20))

    def test_unpickler_refuses_dangerous_builtins(self, tmp_path):
        # builtins.eval via GLOBAL+REDUCE is the classic pickle RCE;
        # only the named safe constructors may resolve from builtins.
        spill = CacheSpill(tmp_path / "spill")
        spill.save(_filled_cache(entries=1))
        current = (tmp_path / "spill" / "CURRENT").read_text("utf-8").strip()
        (tmp_path / "spill" / current / "entries.pkl").write_bytes(
            pickle.dumps(eval))
        with pytest.raises(SpillError):
            spill.load_into(PrefixCache(max_bytes=1 << 20))

    def test_unpickler_refuses_prefix_spoofed_modules(self, tmp_path):
        # "numpy_evil" must not ride in on a bare "numpy" prefix match.
        spill = CacheSpill(tmp_path / "spill")
        spill.save(_filled_cache(entries=1))
        current = (tmp_path / "spill" / "CURRENT").read_text("utf-8").strip()
        (tmp_path / "spill" / current / "entries.pkl").write_bytes(
            b"cnumpy_evil\nboom\n.")
        with pytest.raises(SpillError):
            spill.load_into(PrefixCache(max_bytes=1 << 20))


class TestFleet:
    def test_for_replica_is_cached_and_namespaced(self, tmp_path):
        fleet = FleetCacheSpill(tmp_path / "fleet")
        r0 = fleet.for_replica("r0")
        assert fleet.for_replica("r0") is r0
        r1 = fleet.for_replica("r1")
        assert r0.directory != r1.directory
        r0.save(_filled_cache(entries=2))
        r1.save(_filled_cache(entries=3))
        assert r0.load_into(PrefixCache(max_bytes=1 << 20)) == 2
        assert r1.load_into(PrefixCache(max_bytes=1 << 20)) == 3
