"""Unit tests for Module/Parameter/ModuleList (repro.nn.module)."""

import numpy as np
import pytest

from repro.nn import Linear, Module, ModuleList, Parameter, Sequential, Tensor


class Toy(Module):
    def __init__(self):
        super().__init__()
        rng = np.random.default_rng(0)
        self.fc1 = Linear(4, 8, rng)
        self.fc2 = Linear(8, 2, rng)
        self.scale = Parameter(np.ones(1))

    def forward(self, x):
        return self.fc2(self.fc1(x).relu()) * self.scale


class TestParameterDiscovery:
    def test_named_parameters_dotted(self):
        toy = Toy()
        names = dict(toy.named_parameters())
        assert "fc1.weight" in names
        assert "fc1.bias" in names
        assert "fc2.weight" in names
        assert "scale" in names

    def test_parameters_count(self):
        toy = Toy()
        assert toy.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2 + 1

    def test_parameter_always_requires_grad(self):
        assert Parameter(np.zeros(3)).requires_grad

    def test_modules_iterates_tree(self):
        toy = Toy()
        kinds = [type(m).__name__ for m in toy.modules()]
        assert kinds.count("Linear") == 2


class TestModes:
    def test_train_eval_propagates(self):
        toy = Toy()
        toy.eval()
        assert all(not m.training for m in toy.modules())
        toy.train()
        assert all(m.training for m in toy.modules())

    def test_zero_grad_clears(self):
        toy = Toy()
        x = Tensor(np.ones((2, 4), dtype=np.float32))
        toy(x).sum().backward()
        assert any(p.grad is not None for p in toy.parameters())
        toy.zero_grad()
        assert all(p.grad is None for p in toy.parameters())


class TestStateDict:
    def test_roundtrip_exact(self):
        toy = Toy()
        state = toy.state_dict()
        other = Toy()
        # perturb, then restore
        for p in other.parameters():
            p.data += 1.0
        other.load_state_dict(state)
        for (_, a), (_, b) in zip(toy.named_parameters(),
                                  other.named_parameters()):
            np.testing.assert_array_equal(a.data, b.data)

    def test_state_dict_copies(self):
        toy = Toy()
        state = toy.state_dict()
        state["scale"][0] = 99.0
        assert toy.scale.data[0] == 1.0

    def test_missing_key_raises(self):
        toy = Toy()
        state = toy.state_dict()
        del state["scale"]
        with pytest.raises(KeyError):
            toy.load_state_dict(state)

    def test_unexpected_key_raises(self):
        toy = Toy()
        state = toy.state_dict()
        state["ghost"] = np.zeros(1)
        with pytest.raises(KeyError):
            toy.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        toy = Toy()
        state = toy.state_dict()
        state["scale"] = np.zeros(5)
        with pytest.raises(ValueError):
            toy.load_state_dict(state)


class TestModuleList:
    def test_registration_and_indexing(self):
        rng = np.random.default_rng(0)
        layers = ModuleList([Linear(2, 2, rng) for _ in range(3)])
        assert len(layers) == 3
        assert layers[1] is list(layers)[1]
        # parameters from all children are discovered
        assert len(layers.parameters()) == 6

    def test_append(self):
        rng = np.random.default_rng(0)
        layers = ModuleList()
        layers.append(Linear(2, 2, rng))
        assert len(layers) == 1

    def test_call_raises(self):
        with pytest.raises(RuntimeError):
            ModuleList()()


class TestSequential:
    def test_chains(self):
        rng = np.random.default_rng(0)
        seq = Sequential(Linear(3, 5, rng), Linear(5, 2, rng))
        out = seq(Tensor(np.ones((1, 3), dtype=np.float32)))
        assert out.shape == (1, 2)
        assert len(seq) == 2
        assert isinstance(seq[0], Linear)

    def test_forward_not_implemented_on_base(self):
        with pytest.raises(NotImplementedError):
            Module().forward()
