"""Novelty / memorization scoring for generated recipes.

Following the "Creative Cook or Plagiator?" framing, the memorization
risk of a generated recipe is its similarity to its **nearest corpus
neighbour**: a generation that lands on top of a training recipe is a
copy, one far from everything is novel.  The score is::

    novelty = 1 - max(0, cosine(generated, nearest corpus recipe))

so ``0.0`` means "bit-for-bit memorized" and values near ``1.0`` mean
"unlike anything in the corpus".  The same hashed-embedding space the
search index uses (``docs/RETRIEVAL.md``) makes the score cheap — one
mat-vec against the corpus matrix — and exact: novelty always uses the
brute-force oracle, never the ANN approximation, because a missed
neighbour would *overstate* novelty exactly when it matters most.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence


#: Below this novelty a generation is counted as memorized.  At 0.05
#: the generated text is a near-verbatim corpus recipe (embedding
#: cosine >= 0.95) — the paper's plagiarism red line, not a style call.
MEMORIZED_NOVELTY_THRESHOLD = 0.05


@dataclass(frozen=True)
class NoveltyReport:
    """Novelty verdict for one generated text."""

    novelty: float                 # 1 - clamped nearest-neighbour cosine
    similarity: float              # raw nearest-neighbour cosine
    nearest_id: Optional[int]      # corpus document id of the neighbour
    nearest_title: Optional[str]   # its title, for human-readable reports

    @property
    def memorized(self) -> bool:
        return self.novelty < MEMORIZED_NOVELTY_THRESHOLD

    def to_dict(self) -> dict:
        return {
            "novelty": round(self.novelty, 6),
            "similarity": round(self.similarity, 6),
            "nearest_id": self.nearest_id,
            "nearest_title": self.nearest_title,
            "memorized": self.memorized,
        }


@dataclass(frozen=True)
class NoveltySummary:
    """Corpus-level aggregate over many generations."""

    count: int
    mean_novelty: float
    min_novelty: float
    max_novelty: float
    memorized_fraction: float
    reports: List[NoveltyReport]

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "mean_novelty": round(self.mean_novelty, 6),
            "min_novelty": round(self.min_novelty, 6),
            "max_novelty": round(self.max_novelty, 6),
            "memorized_fraction": round(self.memorized_fraction, 6),
        }


def summarize_novelty(reports: Sequence[NoveltyReport]) -> NoveltySummary:
    """Aggregate per-text reports; empty input is an all-zero summary."""
    if not reports:
        return NoveltySummary(0, 0.0, 0.0, 0.0, 0.0, [])
    scores = [report.novelty for report in reports]
    memorized = sum(1 for report in reports if report.memorized)
    return NoveltySummary(
        count=len(reports),
        mean_novelty=sum(scores) / len(scores),
        min_novelty=min(scores),
        max_novelty=max(scores),
        memorized_fraction=memorized / len(reports),
        reports=list(reports),
    )
