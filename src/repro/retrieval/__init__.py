"""Semantic retrieval over the RecipeDB corpus (``docs/RETRIEVAL.md``).

The read-heavy sibling of the generation stack: hashed n-gram
embeddings (:mod:`.embedding`), a multi-probe LSH ANN structure with
an exact brute-force oracle (:mod:`.ann`), the searchable corpus index
with mmap-friendly persistence (:mod:`.index`), and nearest-neighbour
novelty / memorization scoring for generated recipes
(:mod:`.novelty`).  Serving integration — ``/api/search``,
``retrieve_k`` retrieval-conditioned generation, novelty in responses
— lives in :mod:`repro.webapp.backend`.
"""

from .ann import (ANNResult, BruteForceIndex, LSHConfig, LSHIndex,
                  recall_at_k)
from .embedding import EmbeddingConfig, TextEmbedder
from .index import (LAYOUT_VERSION, RecipeIndex, SearchHit, exists_on_disk,
                    query_from_ingredients, recipe_document)
from .novelty import (MEMORIZED_NOVELTY_THRESHOLD, NoveltyReport,
                      NoveltySummary, summarize_novelty)

__all__ = [
    "ANNResult", "BruteForceIndex", "EmbeddingConfig", "LAYOUT_VERSION",
    "LSHConfig", "LSHIndex", "MEMORIZED_NOVELTY_THRESHOLD", "NoveltyReport",
    "NoveltySummary", "RecipeIndex", "SearchHit", "TextEmbedder",
    "exists_on_disk", "query_from_ingredients", "recall_at_k",
    "recipe_document", "summarize_novelty",
]
