"""The semantic recipe index: embeddings + ANN + novelty + persistence.

:class:`RecipeIndex` is the subsystem's facade.  It owns

* the corpus documents (id, title, tagged text — the same
  ``encode_numbers(format_recipe(...))`` serialization the models
  train on, so queries, corpus and generations share one space);
* the L2-normalized embedding matrix (:mod:`.embedding`);
* an ANN structure (:mod:`.ann` multi-probe LSH) **and** the exact
  brute-force oracle — every search can be answered either way, and
  ``exact=True`` is both the recall yardstick and the fallback;
* the novelty scorer (:mod:`.novelty`): nearest-corpus-neighbour
  distance of a generated recipe, always computed exactly.

Persistence is a directory of mmap-friendly flat files::

    index_dir/
      vectors.npy   float32 (n, dim) embedding matrix  (np.load mmap)
      ann.npz       hyperplanes (tables, dim, bits) + codes (tables, n)
      meta.json     configs, doc ids, titles, layout version
      texts.json    corpus texts (exemplar payload for RAG prompts)

so ``repro serve --retrieval --index-dir d`` restarts warm: the
embedding pass (the expensive part) is skipped and the vector matrix
can be memory-mapped read-only, which also lets every replica of a
fleet share one physical copy.

Failure injection: searches run through the ``retrieval.search`` fault
point (``docs/RESILIENCE.md``); the serving layer degrades a faulted
retrieval to un-conditioned generation rather than failing the request.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence

import numpy as np

from ..obs import MetricsRegistry, get_registry
from ..preprocess import encode_numbers, format_recipe, normalize_text
from ..resilience.faults import fault_check
from .ann import ANNResult, BruteForceIndex, LSHConfig, LSHIndex, recall_at_k
from .embedding import EmbeddingConfig, TextEmbedder
from .novelty import NoveltyReport

#: On-disk layout version; bumped on any incompatible change.
LAYOUT_VERSION = 1


@dataclass(frozen=True)
class SearchHit:
    """One search result, best first."""

    rank: int
    doc_id: int
    title: str
    score: float
    text: str

    def to_dict(self, include_text: bool = False) -> dict:
        payload = {"rank": self.rank, "doc_id": self.doc_id,
                   "title": self.title, "score": round(float(self.score), 6)}
        if include_text:
            payload["text"] = self.text
        return payload


def recipe_document(recipe) -> str:
    """A recipe's retrieval text: the tagged training serialization."""
    return encode_numbers(format_recipe(recipe))


def query_from_ingredients(ingredients: Sequence[str]) -> str:
    """Canonical query text for an ingredient list.

    Deterministic and normalization-aligned with the corpus documents,
    so identical ingredient lists always embed identically — which is
    what makes retrieval-conditioned prompts prefix-cache-friendly.
    """
    return " ".join(normalize_text(name) for name in ingredients
                    if name.strip())


class RecipeIndex:
    """Searchable embedded view of a recipe corpus."""

    def __init__(self, vectors: np.ndarray, doc_ids: Sequence[int],
                 titles: Sequence[str], texts: Sequence[str],
                 embedder: TextEmbedder, ann: LSHIndex,
                 registry: Optional[MetricsRegistry] = None) -> None:
        if not (vectors.shape[0] == len(doc_ids) == len(titles)
                == len(texts)):
            raise ValueError("vectors, doc_ids, titles and texts must all "
                             "have one entry per document")
        self.vectors = vectors
        self.doc_ids = list(doc_ids)
        self.titles = list(titles)
        self.texts = list(texts)
        self.embedder = embedder
        self.ann = ann
        self.exact = BruteForceIndex(vectors)
        self.set_registry(registry if registry is not None else get_registry())

    def set_registry(self, registry: MetricsRegistry) -> None:
        """(Re)bind the metrics registry — used after ``load``."""
        self.registry = registry
        self._searches = registry.counter(
            "retrieval_searches_total",
            help="Index searches by mode (ann or exact)")
        self._latency = registry.histogram(
            "retrieval_search_seconds",
            help="Index search latency by mode")
        self._candidate_fraction = registry.histogram(
            "retrieval_candidate_fraction",
            help="Candidates exact-ranked per ANN search / corpus size")
        self._novelty = registry.histogram(
            "novelty_score",
            help="Novelty (1 - nearest corpus neighbour cosine) of "
                 "scored generations")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, texts: Sequence[str],
              doc_ids: Optional[Sequence[int]] = None,
              titles: Optional[Sequence[str]] = None,
              embedding: Optional[EmbeddingConfig] = None,
              lsh: Optional[LSHConfig] = None,
              registry: Optional[MetricsRegistry] = None) -> "RecipeIndex":
        """Embed ``texts`` and build the ANN structure over them."""
        if not texts:
            raise ValueError("cannot build an index over an empty corpus")
        embedder = TextEmbedder(embedding)
        vectors = embedder.embed_batch(texts)
        ann = LSHIndex(vectors, lsh)
        doc_ids = list(doc_ids) if doc_ids is not None else list(range(len(texts)))
        titles = list(titles) if titles is not None else [""] * len(texts)
        return cls(vectors, doc_ids, titles, list(texts), embedder, ann,
                   registry=registry)

    @classmethod
    def from_recipes(cls, recipes: Sequence,
                     embedding: Optional[EmbeddingConfig] = None,
                     lsh: Optional[LSHConfig] = None,
                     registry: Optional[MetricsRegistry] = None
                     ) -> "RecipeIndex":
        """Build from :class:`~repro.recipedb.Recipe` records."""
        texts = [recipe_document(recipe) for recipe in recipes]
        return cls.build(
            texts,
            doc_ids=[recipe.recipe_id for recipe in recipes],
            titles=[recipe.title for recipe in recipes],
            embedding=embedding, lsh=lsh, registry=registry)

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.texts)

    def _query(self, vector: np.ndarray, k: int, exact: bool) -> ANNResult:
        if exact:
            return self.exact.query(vector, k)
        return self.ann.query(vector, k)

    def search(self, query: str, k: int = 5,
               exact: bool = False) -> List[SearchHit]:
        """Top-``k`` corpus recipes for a free-text query.

        ``exact=True`` routes through the brute-force oracle (exact
        answer, O(n)); the default uses the ANN structure.  Raises
        ``ValueError`` on an empty query or non-positive ``k``.
        """
        if not query or not query.strip():
            raise ValueError("query must be a non-empty string")
        if k < 1:
            raise ValueError("k must be >= 1")
        fault_check("retrieval.search")
        mode = "exact" if exact else "ann"
        with self._latency.labels(mode=mode).time():
            vector = self.embedder.embed(query)
            result = self._query(vector, k, exact)
        self._searches.labels(mode=mode).inc()
        if not exact and len(self) > 0:
            self._candidate_fraction.observe(
                result.candidates_examined / len(self))
        return [SearchHit(rank=rank,
                          doc_id=self.doc_ids[row],
                          title=self.titles[row],
                          score=float(result.scores[rank]),
                          text=self.texts[row])
                for rank, row in enumerate(result.indices.tolist())]

    def search_ingredients(self, ingredients: Sequence[str], k: int = 5,
                           exact: bool = False) -> List[SearchHit]:
        return self.search(query_from_ingredients(ingredients), k=k,
                           exact=exact)

    # ------------------------------------------------------------------
    # Novelty
    # ------------------------------------------------------------------
    def novelty(self, text: str) -> NoveltyReport:
        """Nearest-corpus-neighbour novelty of a generated recipe.

        Always exact: an ANN miss would overstate novelty precisely for
        the near-duplicates the score exists to catch.
        """
        fault_check("retrieval.search")
        with self._latency.labels(mode="novelty").time():
            vector = self.embedder.embed(text)
            result = self.exact.query(vector, 1)
        self._searches.labels(mode="novelty").inc()
        if result.indices.shape[0] == 0:
            report = NoveltyReport(novelty=1.0, similarity=0.0,
                                   nearest_id=None, nearest_title=None)
        else:
            row = int(result.indices[0])
            similarity = float(result.scores[0])
            report = NoveltyReport(
                novelty=float(1.0 - np.clip(similarity, 0.0, 1.0)),
                similarity=similarity,
                nearest_id=self.doc_ids[row],
                nearest_title=self.titles[row])
        self._novelty.observe(report.novelty)
        return report

    def novelty_batch(self, texts: Sequence[str]) -> List[NoveltyReport]:
        return [self.novelty(text) for text in texts]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def measure_recall(self, queries: Sequence[str], k: int = 10) -> float:
        """Mean ANN recall@k against the exact oracle over ``queries``."""
        if not queries:
            raise ValueError("at least one query is required")
        total = 0.0
        for query in queries:
            vector = self.embedder.embed(query)
            total += recall_at_k(self.ann.query(vector, k),
                                 self.exact.query(vector, k))
        return total / len(queries)

    def stats(self) -> dict:
        return {
            "documents": len(self),
            "dim": int(self.vectors.shape[1]),
            "vector_bytes": int(self.vectors.nbytes),
            "mmap": isinstance(self.vectors, np.memmap),
            "ann": self.ann.stats(),
        }

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, directory) -> None:
        """Write the mmap-friendly on-disk layout (see module docs).

        Crash-atomic: every file is written to a temp name, fsync'd,
        and ``os.replace``'d into place — and ``meta.json`` (the file
        :func:`exists_on_disk` treats as the completeness marker) is
        replaced *last*, after the payload files are durable.  A crash
        at any point leaves either the previous complete index, or a
        directory the warm-restart path correctly treats as incomplete
        and rebuilds — never a torn mix ``load`` would trip over.
        """
        from ..durability import atomic_write_bytes, fsync_dir, fsync_file

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        tmp_vectors = directory / f".vectors.tmp-{os.getpid()}.npy"
        np.save(tmp_vectors, np.ascontiguousarray(self.vectors))
        fsync_file(tmp_vectors)
        os.replace(tmp_vectors, directory / "vectors.npy")
        tmp_ann = directory / f".ann.tmp-{os.getpid()}.npz"
        np.savez(tmp_ann, planes=self.ann.planes,
                 codes=self.ann.codes, center=self.ann.center)
        fsync_file(tmp_ann)
        os.replace(tmp_ann, directory / "ann.npz")
        atomic_write_bytes(
            directory / "texts.json",
            json.dumps(self.texts, ensure_ascii=False).encode("utf-8"))
        meta = {
            "version": LAYOUT_VERSION,
            "documents": len(self),
            "embedding": self.embedder.config.to_dict(),
            "lsh": self.ann.config.to_dict(),
            "bits": self.ann.bits,
            "doc_ids": self.doc_ids,
            "titles": self.titles,
        }
        # The commit point: meta.json lands only once everything else
        # it describes is already on disk.
        atomic_write_bytes(directory / "meta.json",
                           json.dumps(meta).encode("utf-8"))
        fsync_dir(directory)

    @classmethod
    def load(cls, directory, mmap: bool = True,
             registry: Optional[MetricsRegistry] = None) -> "RecipeIndex":
        """Load a saved index; ``mmap=True`` maps the vectors read-only.

        The ANN bucket table is rebuilt from the persisted codes (an
        O(n) dict fill — cheap); nothing is re-embedded, which is the
        point: a warm restart costs milliseconds, not the corpus
        embedding pass.
        """
        directory = Path(directory)
        meta = json.loads((directory / "meta.json").read_text("utf-8"))
        if meta.get("version") != LAYOUT_VERSION:
            raise ValueError(
                f"index layout version {meta.get('version')!r} is not "
                f"supported (expected {LAYOUT_VERSION}); rebuild the index")
        vectors = np.load(directory / "vectors.npy",
                          mmap_mode="r" if mmap else None)
        with np.load(directory / "ann.npz") as ann_file:
            planes = ann_file["planes"]
            codes = ann_file["codes"]
            center = ann_file["center"]
        embedding = EmbeddingConfig.from_dict(meta["embedding"])
        lsh_config = LSHConfig.from_dict(meta["lsh"])
        texts = json.loads((directory / "texts.json").read_text("utf-8"))
        if vectors.shape[0] != len(texts) or codes.shape[1] != len(texts):
            raise ValueError("index files disagree on corpus size; "
                             "the directory is corrupt — rebuild it")
        ann = LSHIndex(vectors, lsh_config, planes=planes, codes=codes,
                       center=center)
        return cls(vectors, meta["doc_ids"], meta["titles"], texts,
                   TextEmbedder(embedding), ann, registry=registry)


def exists_on_disk(directory) -> bool:
    """True when ``directory`` holds a complete persisted index."""
    directory = Path(directory)
    return all((directory / name).exists()
               for name in ("vectors.npy", "ann.npz", "meta.json",
                            "texts.json"))
