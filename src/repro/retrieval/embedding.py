"""Feature-hashed n-gram text embeddings for the retrieval index.

The corpus is embedded with the classic *hashing trick* (Weinberger et
al., 2009): every character and word n-gram of a recipe text is hashed
to a coordinate (and a sign) of a fixed-dimension vector, counts are
sub-linearly damped, and the result is L2-normalized so dot product ==
cosine similarity.  No training, no external model downloads — the
embedding is a pure deterministic function of ``(text, config)``:

* the hash is CRC-32 (stable across processes and platforms, unlike
  Python's salted ``hash``), mixed with the config seed;
* two independent hash streams pick the coordinate and the sign, which
  keeps hash collisions unbiased (the signed variant of the trick);
* repeated n-grams are damped with ``1 + log(count)`` so one chorus
  ingredient cannot dominate a recipe's direction.

Determinism is load-bearing: the serving fleet, the persistence layer
and the novelty scorer all assume two processes embedding the same
text under the same config produce bit-identical vectors — there is a
property test (``tests/test_properties_retrieval.py``) that spawns a
fresh interpreter to prove it.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class EmbeddingConfig:
    """Shape of the hashed embedding space.

    ``dim`` is the embedding dimension; ``char_ngrams`` the inclusive
    range of character n-gram sizes taken over the whitespace-joined
    text; ``word_ngrams`` the inclusive range of word n-gram sizes.
    ``seed`` perturbs both hash streams, so two indexes built with
    different seeds live in unrelated spaces.
    """

    dim: int = 256
    char_ngrams: Tuple[int, int] = (3, 5)
    word_ngrams: Tuple[int, int] = (1, 2)
    seed: int = 0

    def validate(self) -> None:
        if self.dim < 8:
            raise ValueError("dim must be >= 8")
        for name, (lo, hi) in (("char_ngrams", self.char_ngrams),
                               ("word_ngrams", self.word_ngrams)):
            if lo < 1 or hi < lo:
                raise ValueError(f"{name} must be a (lo, hi) range with "
                                 f"1 <= lo <= hi, got ({lo}, {hi})")

    def to_dict(self) -> dict:
        return {"dim": self.dim, "char_ngrams": list(self.char_ngrams),
                "word_ngrams": list(self.word_ngrams), "seed": self.seed}

    @classmethod
    def from_dict(cls, payload: dict) -> "EmbeddingConfig":
        return cls(dim=int(payload["dim"]),
                   char_ngrams=tuple(payload["char_ngrams"]),
                   word_ngrams=tuple(payload["word_ngrams"]),
                   seed=int(payload["seed"]))


def _ngrams(text: str, config: EmbeddingConfig) -> Iterator[str]:
    """All hashed features of ``text``: char n-grams + word n-grams.

    Word features are prefixed ``w:`` so a word unigram can never
    collide *as a string* with a character n-gram of the same letters
    (they still may collide under the hash — that is the trick).
    """
    joined = " ".join(text.split())
    if not joined:
        # "".split(" ") is [""], which would leak a phantom empty-word
        # feature; a blank text has no features at all.
        return
    lo, hi = config.char_ngrams
    for n in range(lo, hi + 1):
        for i in range(len(joined) - n + 1):
            yield joined[i:i + n]
    words = joined.split(" ")
    lo, hi = config.word_ngrams
    for n in range(lo, hi + 1):
        for i in range(len(words) - n + 1):
            yield "w:" + " ".join(words[i:i + n])


class TextEmbedder:
    """Deterministic ``text -> float32[dim]`` map.

    Feature hashing is the hot loop of index construction, so the
    per-feature ``(coordinate, sign)`` pair is memoized: recipe corpora
    reuse a small n-gram vocabulary (synthetic RecipeDB doubly so), and
    after a few hundred documents almost every feature is a dict hit.
    """

    _CACHE_LIMIT = 1_000_000

    def __init__(self, config: EmbeddingConfig | None = None) -> None:
        self.config = config or EmbeddingConfig()
        self.config.validate()
        # Seed folded into both streams; kept 32-bit so CRC mixing
        # stays within uint32 arithmetic.
        self._seed_mix = (self.config.seed * 0x9E3779B1 + 0x7F4A7C15) & 0xFFFFFFFF
        self._slots: Dict[str, Tuple[int, float]] = {}

    def _slot(self, feature: str) -> Tuple[int, float]:
        """(coordinate, sign) for one feature, memoized."""
        cached = self._slots.get(feature)
        if cached is not None:
            return cached
        raw = feature.encode("utf-8", "ignore")
        h_index = zlib.crc32(raw) ^ self._seed_mix
        # Independent stream for the sign: different prefix, re-mixed.
        h_sign = zlib.crc32(b"\x01" + raw) ^ self._seed_mix
        slot = (h_index % self.config.dim, 1.0 if h_sign & 1 else -1.0)
        if len(self._slots) < self._CACHE_LIMIT:
            self._slots[feature] = slot
        return slot

    def embed(self, text: str) -> np.ndarray:
        """Embed one text: hashed counts, log-damped, L2-normalized.

        The all-zero edge case (empty text, or every feature cancelled
        by sign collisions) returns the zero vector rather than NaN; it
        is orthogonal to everything, which is the right semantics for
        "this text has no content".
        """
        vector = np.zeros(self.config.dim, dtype=np.float64)
        counts: Dict[str, int] = {}
        for feature in _ngrams(text, self.config):
            counts[feature] = counts.get(feature, 0) + 1
        for feature, count in counts.items():
            index, sign = self._slot(feature)
            vector[index] += sign * (1.0 + math.log(count))
        norm = float(np.linalg.norm(vector))
        if norm > 0.0:
            vector /= norm
        return vector.astype(np.float32)

    def embed_batch(self, texts: Sequence[str]) -> np.ndarray:
        """Embed many texts into an ``(n, dim)`` float32 matrix."""
        matrix = np.zeros((len(texts), self.config.dim), dtype=np.float32)
        for row, text in enumerate(texts):
            matrix[row] = self.embed(text)
        return matrix

    def fingerprint(self, texts: Iterable[str]) -> str:
        """Stable hex digest of the embeddings of ``texts``.

        Used by the cross-process determinism test and by index
        persistence to detect a stale on-disk index.
        """
        crc = 0
        for text in texts:
            crc = zlib.crc32(self.embed(text).tobytes(), crc)
        return f"{crc:08x}"
