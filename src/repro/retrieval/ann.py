"""Approximate nearest neighbour search in pure numpy.

Two interchangeable structures over one L2-normalized ``(n, dim)``
matrix:

* :class:`BruteForceIndex` — exact top-k by a single mat-vec; the
  recall **oracle** every approximate answer is measured against, and
  the fallback when the corpus is small enough that scanning wins;
* :class:`LSHIndex` — random-hyperplane locality-sensitive hashing
  with **multi-probe** querying (Lv et al., VLDB 2007): ``tables``
  independent sign-hash tables of ``bits`` bits each; a query probes
  its own bucket plus the buckets reached by flipping the
  lowest-|margin| bits — the bits the query was least confident about
  — and exact-ranks the union of candidates.

Sub-linearity comes from bucket geometry: with ``bits`` sized so the
expected bucket holds ``target_bucket`` vectors (the builder picks
``bits = log2(n / target_bucket)``), the candidate set is
``O(tables * probes * target_bucket)`` — independent of corpus size —
while the exact scan is ``O(n)``.  The benchmark
(``benchmarks/run_retrieval.py``) gates both recall@10 against the
oracle and the measured scaling.

Determinism: hyperplanes are drawn from ``default_rng([seed, table])``
so a given config reproduces the identical structure everywhere, and
query results are a pure function of (index, query).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class ANNResult:
    """One query's answer: row indices, cosine scores, work done."""

    indices: np.ndarray          # (k,) int64, best first
    scores: np.ndarray           # (k,) float32, cosine similarity
    candidates_examined: int     # exact-ranked candidate count


@dataclass(frozen=True)
class LSHConfig:
    """Multi-probe LSH shape.

    ``bits=None`` auto-sizes the tables at build time so the expected
    bucket occupancy is ``target_bucket`` vectors.  ``probes`` is the
    number of *extra* buckets probed per table beyond the query's own,
    in increasing perturbation cost (lowest-margin bit flips first).
    """

    tables: int = 10
    bits: Optional[int] = None
    probes: int = 24
    target_bucket: int = 12
    seed: int = 0

    def validate(self) -> None:
        if self.tables < 1:
            raise ValueError("tables must be >= 1")
        if self.bits is not None and not 1 <= self.bits <= 30:
            raise ValueError("bits must be in [1, 30]")
        if self.probes < 0:
            raise ValueError("probes must be >= 0")
        if self.target_bucket < 1:
            raise ValueError("target_bucket must be >= 1")

    def to_dict(self) -> dict:
        return {"tables": self.tables, "bits": self.bits,
                "probes": self.probes, "target_bucket": self.target_bucket,
                "seed": self.seed}

    @classmethod
    def from_dict(cls, payload: dict) -> "LSHConfig":
        bits = payload.get("bits")
        return cls(tables=int(payload["tables"]),
                   bits=None if bits is None else int(bits),
                   probes=int(payload["probes"]),
                   target_bucket=int(payload["target_bucket"]),
                   seed=int(payload["seed"]))


def _auto_bits(n: int, target_bucket: int) -> int:
    """Hash width so the expected bucket holds ``target_bucket`` rows."""
    if n <= target_bucket:
        return 1
    return int(np.clip(np.ceil(np.log2(n / target_bucket)), 1, 24))


def _top_k(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest scores, descending, ties by index.

    Ties are broken toward the *lower* row index (argsort is stable on
    the negated scores), so ANN and brute-force rank duplicates — e.g.
    RecipeDB's near-duplicate synthetic recipes — identically and
    recall measurements compare like with like.
    """
    k = min(k, scores.shape[0])
    if k == 0:
        return np.empty(0, dtype=np.int64)
    if k < scores.shape[0]:
        part = np.argpartition(-scores, k - 1)[:k]
    else:
        part = np.arange(scores.shape[0])
    return part[np.argsort(-scores[part], kind="stable")].astype(np.int64)


class BruteForceIndex:
    """Exact cosine top-k: one mat-vec over the full matrix."""

    def __init__(self, vectors: np.ndarray) -> None:
        if vectors.ndim != 2:
            raise ValueError("vectors must be a 2-D matrix")
        self.vectors = vectors

    def query(self, vector: np.ndarray, k: int) -> ANNResult:
        scores = self.vectors @ vector.astype(np.float32)
        order = _top_k(scores, k)
        return ANNResult(indices=order, scores=scores[order],
                         candidates_examined=int(self.vectors.shape[0]))


class LSHIndex:
    """Random-hyperplane LSH with margin-ordered multi-probe querying."""

    def __init__(self, vectors: np.ndarray,
                 config: Optional[LSHConfig] = None,
                 planes: Optional[np.ndarray] = None,
                 codes: Optional[np.ndarray] = None,
                 center: Optional[np.ndarray] = None) -> None:
        self.config = config or LSHConfig()
        self.config.validate()
        if vectors.ndim != 2:
            raise ValueError("vectors must be a 2-D matrix")
        self.vectors = vectors
        n, dim = vectors.shape
        # Hash mean-centered vectors: tagged recipes share a large
        # common component (the format skeleton), which would otherwise
        # pile most of the corpus into one bucket.  Centering spreads
        # the hash space and — because the offset is constant across
        # documents — leaves the dot-product *ranking* for any fixed
        # query untouched.
        self.center = (center if center is not None
                       else vectors.mean(axis=0).astype(np.float32))
        if planes is not None:
            # Reconstructing from persisted state: the planes are the
            # source of truth for the hash width.
            self.bits = int(planes.shape[2])
        elif self.config.bits is not None:
            self.bits = self.config.bits
        else:
            self.bits = _auto_bits(n, self.config.target_bucket)
        if planes is None:
            # One independent stream per table: adding a table never
            # perturbs the hyperplanes of another.
            planes = np.stack([
                np.random.default_rng([self.config.seed, table])
                .standard_normal((dim, self.bits)).astype(np.float32)
                for table in range(self.config.tables)])
        self.planes = planes              # (tables, dim, bits)
        if codes is None:
            codes = np.stack([self._codes_for(vectors, table)
                              for table in range(self.config.tables)])
        self.codes = codes                # (tables, n) uint64
        self._buckets: List[Dict[int, np.ndarray]] = []
        for table in range(self.config.tables):
            buckets: Dict[int, list] = {}
            for row, code in enumerate(self.codes[table].tolist()):
                buckets.setdefault(code, []).append(row)
            self._buckets.append({code: np.asarray(rows, dtype=np.int64)
                                  for code, rows in buckets.items()})
        # Probe machinery, precomputed once (see _probe_codes): all
        # subsets of the L softest bit *positions* (sizes 1-3) as a
        # padded index matrix, so per-query probe selection is pure
        # vectorized numpy instead of itertools in the hot path.
        self._soft_universe = min(self.bits, 10)
        subsets = [list(subset)
                   for size in (1, 2, 3)
                   for subset in combinations(range(self._soft_universe),
                                              size)
                   if size <= self._soft_universe]
        pad = self._soft_universe  # index of a zero-cost padding slot
        self._subset_matrix = np.asarray(
            [subset + [pad] * (3 - len(subset)) for subset in subsets],
            dtype=np.int64)
        # Flattened planes: one GEMV hashes a query for every table.
        self._planes_flat = np.ascontiguousarray(
            self.planes.transpose(1, 0, 2).reshape(
                self.planes.shape[1], -1))

    # ------------------------------------------------------------------
    # Hashing
    # ------------------------------------------------------------------
    def _codes_for(self, vectors: np.ndarray, table: int) -> np.ndarray:
        centered = vectors - self.center
        signs = (centered @ self.planes[table]) > 0.0   # (n, bits)
        weights = (1 << np.arange(self.bits, dtype=np.uint64))
        return (signs.astype(np.uint64) @ weights).astype(np.uint64)

    def _probe_codes(self, projection: np.ndarray) -> List[int]:
        """Bucket codes to visit for one table, cheapest probe first.

        The base code, then perturbations flipping subsets (size <= 3)
        of the lowest-|projection| bits — the signs the query was least
        confident about — ordered by total flipped margin: the standard
        multi-probe sequence, truncated at ``probes`` extras.  Subset
        enumeration is precomputed at build time; per query this is an
        argsort over ``bits`` margins plus a couple of fancy-indexing
        passes.
        """
        signs = projection > 0.0
        weights = (1 << np.arange(self.bits, dtype=np.uint64))
        base = int(signs.astype(np.uint64) @ weights)
        if self.config.probes == 0:
            return [base]
        margins = np.abs(projection)
        soft = np.argsort(margins, kind="stable")[:self._soft_universe]
        # Padded lookup tables: position L is the zero-cost / zero-mask
        # padding slot the subset matrix points unused entries at.
        cost_table = np.append(margins[soft], 0.0)
        bit_table = np.append(
            weights[soft].astype(np.int64), np.int64(0))
        costs = cost_table[self._subset_matrix].sum(axis=1)
        masks = np.bitwise_or.reduce(bit_table[self._subset_matrix], axis=1)
        take = min(self.config.probes, costs.shape[0])
        if take < costs.shape[0]:
            chosen = np.argpartition(costs, take - 1)[:take]
            chosen = chosen[np.argsort(costs[chosen], kind="stable")]
        else:
            chosen = np.argsort(costs, kind="stable")
        return [base] + [base ^ int(mask) for mask in masks[chosen]]

    # ------------------------------------------------------------------
    # Query
    # ------------------------------------------------------------------
    def candidates(self, vector: np.ndarray) -> np.ndarray:
        """Union of bucket contents across tables and probes."""
        hit_arrays: List[np.ndarray] = []
        centered = vector.astype(np.float32) - self.center
        for table in range(self.config.tables):
            projection = centered @ self.planes[table]
            buckets = self._buckets[table]
            for code in self._probe_codes(projection):
                rows = buckets.get(code)
                if rows is not None:
                    hit_arrays.append(rows)
        if not hit_arrays:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(hit_arrays))

    def query(self, vector: np.ndarray, k: int) -> ANNResult:
        rows = self.candidates(vector)
        if rows.shape[0] < k:
            # Too few candidates to fill k (tiny corpus or an outlier
            # query hashing into empty buckets): degrade to exact scan
            # rather than return a silently truncated answer.
            return BruteForceIndex(self.vectors).query(vector, k)
        scores = self.vectors[rows] @ vector.astype(np.float32)
        order = _top_k(scores, k)
        return ANNResult(indices=rows[order], scores=scores[order],
                         candidates_examined=int(rows.shape[0]))

    def stats(self) -> dict:
        """Structure summary (exposed by ``RecipeIndex.stats``)."""
        sizes = [rows.shape[0]
                 for buckets in self._buckets for rows in buckets.values()]
        return {
            "tables": self.config.tables,
            "bits": self.bits,
            "probes": self.config.probes,
            "buckets": len(sizes),
            "mean_bucket": float(np.mean(sizes)) if sizes else 0.0,
            "max_bucket": int(max(sizes)) if sizes else 0,
        }


def recall_at_k(approx: ANNResult, exact: ANNResult,
                eps: float = 0.0) -> float:
    """Fraction of the oracle's answer the approximate answer found.

    With ``eps > 0`` this is the tie-aware recall used by
    ann-benchmarks: an approximate hit counts if its score is within
    ``eps`` of the oracle's k-th best, so interchangeable near-ties —
    common in RecipeDB, where many synthetic recipes differ by one
    ingredient and scores bunch within ~1e-3 — are not counted as
    misses.  ``eps=0`` is strict set recall.
    """
    if exact.indices.shape[0] == 0:
        return 1.0
    if eps > 0.0:
        threshold = float(exact.scores[-1]) - eps
        hits = int(np.sum(approx.scores[:exact.indices.shape[0]]
                          >= threshold))
        return min(hits, exact.indices.shape[0]) / exact.indices.shape[0]
    truth = set(exact.indices.tolist())
    found = len(truth.intersection(approx.indices.tolist()))
    return found / len(truth)
