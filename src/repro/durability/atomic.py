"""Crash-atomic filesystem primitives shared by the durability layer.

Every on-disk structure in ``repro.durability`` (and the retrieval
index's persistence) follows the same discipline:

1. write the new bytes to a temporary file *in the same directory* as
   the final name (``os.replace`` is only atomic within a filesystem);
2. ``flush`` + ``fsync`` the temporary file so the bytes are on the
   platter before any name points at them;
3. ``os.replace`` onto the final name — atomic on POSIX: readers see
   either the whole old file or the whole new one, never a torn mix;
4. ``fsync`` the containing directory so the *rename itself* survives
   a power cut.

A crash at any step leaves either the old state or the new state —
plus, at worst, an orphaned ``*.tmp-*`` file the next writer ignores.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Union

PathLike = Union[str, os.PathLike]


def fsync_dir(directory: PathLike) -> None:
    """fsync a directory so a rename/create inside it is durable.

    Silently a no-op on platforms that refuse ``open(dir)`` (Windows);
    the rename is still atomic there, just not power-cut durable.
    """
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write_bytes(path: PathLike, data: bytes) -> None:
    """Durably replace ``path`` with ``data`` (temp + fsync + replace)."""
    path = Path(path)
    tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    fsync_dir(path.parent)


def atomic_write_text(path: PathLike, text: str,
                      encoding: str = "utf-8") -> None:
    atomic_write_bytes(path, text.encode(encoding))


def atomic_write_json(path: PathLike, payload: Any) -> None:
    atomic_write_bytes(
        path, json.dumps(payload, ensure_ascii=False).encode("utf-8"))


def fsync_file(path: PathLike) -> None:
    """fsync an already-written file by path (for np.save-style writers
    that close their own handle before we can sync it)."""
    fd = os.open(str(path), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
