"""Prefix-cache spill: versioned on-disk snapshots with mmap'd reload.

A restarted engine (supervisor crash-restart, cluster ``drain → swap →
readmit``, or a whole-process bounce) starts with an empty prefix
cache, and at fleet scale that cold start is the main source of lost
work the ROADMAP calls out.  :class:`CacheSpill` persists the
token-trie's entries and reloads them memory-mapped, the same
discipline the retrieval index uses (``docs/RETRIEVAL.md``).

On-disk layout — versioned like an LSM manifest so readers never see a
half-written snapshot::

    <spill-dir>/
        CURRENT            # name of the live version, atomically swapped
        v000007/
            meta.json      # layout version, model fingerprint, manifest
            entries.pkl    # pickled entry skeletons (ndarrays externed)
            tensors.bin    # all ndarray payloads, 64-byte aligned

``save`` writes a complete new ``v...`` directory, fsyncs it, then
atomically rewrites ``CURRENT`` — a crash mid-save leaves the previous
version live.  ``load_into`` maps ``tensors.bin`` read-only and hands
the cache zero-copy array views.

Why read-only views are safe to serve from: cache values are
``compact_state`` snapshots whose KV caches carry ``frozen=True``, and
a frozen :class:`~repro.nn.attention.KVCache` *reallocates on first
append* — whoever resumes from the snapshot copies first.  A reloaded
mmap'd snapshot therefore behaves exactly like the frozen in-memory
snapshot it was spilled from, bit for bit.

Snapshots are only valid for the weights that produced them, so
``meta.json`` records a :func:`model_fingerprint`; a mismatch (new
checkpoint, different quantization) turns the load into a clean cold
start instead of serving stale KV state.
"""

from __future__ import annotations

import io
import json
import os
import pickle
import shutil
import zlib
from pathlib import Path
from typing import Any, Dict, List, Optional

import numpy as np

from ..resilience.faults import fault_check
from .atomic import atomic_write_text, fsync_dir

LAYOUT_VERSION = 1

#: Byte alignment for tensor payloads inside ``tensors.bin`` — keeps
#: every mapped view alignment-safe for any dtype numpy will hand us.
_ALIGN = 64

#: Modules the unpickler will resolve classes from.  Spill files are
#: self-produced, but a corrupted or adversarial file should fail
#: closed (cold start), not import arbitrary code.  Matching is exact
#: module or dotted submodule — a bare prefix would let ``numpy_evil``
#: ride in on ``numpy``.  ``builtins`` is deliberately absent: an
#: allowlisted ``builtins`` would hand the file ``eval``/``exec``/
#: ``getattr`` via a GLOBAL+REDUCE pair; the few safe builtins are
#: named individually below (containers pickle via opcodes, not
#: GLOBAL, so the set stays tiny).
_SAFE_MODULES = ("repro", "numpy", "collections")
_SAFE_BUILTINS = frozenset({
    "complex", "frozenset", "set", "bytearray", "range", "slice",
})


def model_fingerprint(model) -> str:
    """Cheap, deterministic identity of a model's architecture + weights.

    CRC-32 over the class name, the config dict (when the model exposes
    one), and every parameter's shape/dtype plus a 16 Ki-element sample
    of its data.  Not cryptographic — it exists to stop a warm reload
    against the *wrong checkpoint*, not an adversary.
    """
    digest = zlib.crc32(type(model).__name__.encode("utf-8"))
    config = getattr(model, "config_dict", None)
    if callable(config):
        try:
            blob = json.dumps(config(), sort_keys=True, default=str)
            digest = zlib.crc32(blob.encode("utf-8"), digest)
        except Exception:  # noqa: BLE001 - config is advisory
            pass
    for param in model.parameters():
        data = np.ascontiguousarray(param.data)
        digest = zlib.crc32(
            f"{data.shape}{data.dtype}".encode("ascii"), digest)
        digest = zlib.crc32(data.reshape(-1)[:16384].tobytes(), digest)
    return f"{digest & 0xFFFFFFFF:08x}"


class _TensorExternalizingPickler(pickle.Pickler):
    """Pickles entry skeletons; ndarray leaves go to ``tensors.bin``.

    Arrays are deduplicated by object identity so aliased arrays inside
    one snapshot stay aliased after reload (they become the same mmap
    view) and the blob stores each payload once.
    """

    def __init__(self, file, blob: io.BufferedWriter) -> None:
        super().__init__(file, protocol=4)
        self._blob = blob
        self._offset = 0
        self._seen: Dict[int, int] = {}
        self.manifest: List[dict] = []

    def persistent_id(self, obj):  # noqa: D102 - pickle API
        if not isinstance(obj, np.ndarray):
            return None
        index = self._seen.get(id(obj))
        if index is not None:
            return index
        data = np.ascontiguousarray(obj)
        pad = (-self._offset) % _ALIGN
        if pad:
            self._blob.write(b"\0" * pad)
            self._offset += pad
        offset = self._offset
        payload = data.tobytes()
        self._blob.write(payload)
        self._offset += len(payload)
        index = len(self.manifest)
        self.manifest.append({
            "offset": offset,
            "nbytes": len(payload),
            "shape": list(data.shape),
            "dtype": str(data.dtype),
        })
        self._seen[id(obj)] = index
        return index


class _TensorResolvingUnpickler(pickle.Unpickler):
    """Resolves externalized ndarrays to read-only views of the blob."""

    def __init__(self, file, arrays: List[np.ndarray]) -> None:
        super().__init__(file)
        self._arrays = arrays

    def persistent_load(self, pid):  # noqa: D102 - pickle API
        return self._arrays[int(pid)]

    def find_class(self, module: str, name: str):  # noqa: D102
        if module == "builtins":
            allowed = name in _SAFE_BUILTINS
        else:
            root = module.split(".", 1)[0]
            allowed = root in _SAFE_MODULES
        if not allowed:
            raise pickle.UnpicklingError(
                f"refusing to unpickle {module}.{name} from a spill file")
        return super().find_class(module, name)


class SpillError(RuntimeError):
    """A snapshot could not be written or read."""


class CacheSpill:
    """Spill-to-disk persistence for one :class:`PrefixCache`.

    Parameters
    ----------
    directory:
        Snapshot home (created on first save).
    model:
        The model whose states the cache holds; used for the
        fingerprint gate.  ``None`` disables the gate (unit tests over
        synthetic entries).
    mmap:
        Map ``tensors.bin`` read-only on load (the default).  ``False``
        reads it into memory — for callers that will delete the files.
    keep_versions:
        Old version directories retained after a successful save (the
        live one excluded).  0 deletes eagerly; 1 keeps one fallback.
    """

    def __init__(self, directory, model=None, mmap: bool = True,
                 keep_versions: int = 0) -> None:
        if keep_versions < 0:
            raise ValueError("keep_versions must be >= 0")
        self.directory = Path(directory)
        self.model = model
        self.mmap = mmap
        self.keep_versions = keep_versions
        self._fingerprint: Optional[str] = None

    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        if self._fingerprint is None:
            self._fingerprint = (model_fingerprint(self.model)
                                 if self.model is not None else "none")
        return self._fingerprint

    def exists(self) -> bool:
        current = self.directory / "CURRENT"
        if not current.exists():
            return False
        version = self.directory / current.read_text("utf-8").strip()
        return (version / "meta.json").exists()

    # ------------------------------------------------------------------
    # Save
    # ------------------------------------------------------------------
    def save(self, cache) -> Dict[str, Any]:
        """Snapshot every cache entry (LRU order preserved) to disk.

        Returns summary stats.  Raises :class:`SpillError` on failure —
        callers treat a failed spill as degradation (the next restart
        is cold), never as a serving failure.
        """
        try:
            fault_check("spill.save")
            return self._save(cache)
        except SpillError:
            raise
        except Exception as exc:  # noqa: BLE001 - normalized for callers
            raise SpillError(f"cache spill failed: {exc}") from exc

    def _save(self, cache) -> Dict[str, Any]:
        entries = cache.entries_snapshot()
        self.directory.mkdir(parents=True, exist_ok=True)
        seq = self._current_seq() + 1
        version_name = f"v{seq:06d}"
        version_dir = self.directory / version_name
        version_dir.mkdir(parents=True, exist_ok=True)
        skeleton_buffer = io.BytesIO()
        with open(version_dir / "tensors.bin", "wb") as blob:
            pickler = _TensorExternalizingPickler(skeleton_buffer, blob)
            pickler.dump([
                {"key": [int(t) for t in key], "nbytes": int(nbytes),
                 "value": value}
                for key, value, nbytes in entries
            ])
            blob.flush()
            os.fsync(blob.fileno())
        with open(version_dir / "entries.pkl", "wb") as handle:
            handle.write(skeleton_buffer.getvalue())
            handle.flush()
            os.fsync(handle.fileno())
        meta = {
            "version": LAYOUT_VERSION,
            "fingerprint": self.fingerprint(),
            "entries": len(entries),
            "bytes": sum(nbytes for _, _, nbytes in entries),
            "arrays": pickler.manifest,
        }
        with open(version_dir / "meta.json", "w", encoding="utf-8") as handle:
            json.dump(meta, handle)
            handle.flush()
            os.fsync(handle.fileno())
        fsync_dir(version_dir)
        # The commit point: until CURRENT names the new version, a
        # crash leaves the previous snapshot live and whole.
        atomic_write_text(self.directory / "CURRENT", version_name + "\n")
        self._prune(keep=version_name)
        return {"entries": len(entries), "bytes": meta["bytes"],
                "version": version_name}

    def _current_seq(self) -> int:
        best = 0
        for path in self.directory.glob("v*"):
            try:
                best = max(best, int(path.name[1:]))
            except ValueError:
                continue
        return best

    def _prune(self, keep: str) -> None:
        """Delete stale version dirs (best effort; open mmaps survive
        the unlink on POSIX — the mapping holds the inode alive)."""
        versions = sorted(path for path in self.directory.glob("v*")
                          if path.is_dir() and path.name != keep)
        for path in versions[:max(0, len(versions) - self.keep_versions)]:
            shutil.rmtree(path, ignore_errors=True)

    # ------------------------------------------------------------------
    # Load
    # ------------------------------------------------------------------
    def load_into(self, cache) -> int:
        """Reinsert the spilled entries into ``cache``; returns how many.

        Missing/incomplete snapshots and fingerprint mismatches return
        0 (cold start); a structurally corrupt snapshot raises
        :class:`SpillError` so callers can log-and-continue.
        Insertion order is oldest-first, reproducing the spilled LRU
        recency in the rebuilt cache.
        """
        current = self.directory / "CURRENT"
        if not current.exists():
            return 0
        version_dir = self.directory / current.read_text("utf-8").strip()
        meta_path = version_dir / "meta.json"
        if not meta_path.exists():
            return 0
        try:
            meta = json.loads(meta_path.read_text("utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise SpillError(f"unreadable spill meta: {exc}") from exc
        if meta.get("version") != LAYOUT_VERSION:
            return 0
        if meta.get("fingerprint") != self.fingerprint():
            return 0  # different weights: stale KV state, start cold
        if meta.get("entries", 0) == 0:
            return 0
        try:
            arrays = self._map_arrays(version_dir, meta["arrays"])
            with open(version_dir / "entries.pkl", "rb") as handle:
                entries = _TensorResolvingUnpickler(handle, arrays).load()
        except SpillError:
            raise
        except Exception as exc:  # noqa: BLE001 - corrupt snapshot
            raise SpillError(f"corrupt spill snapshot: {exc}") from exc
        loaded = 0
        for entry in entries:
            if cache.insert(entry["key"], entry["value"], entry["nbytes"]):
                loaded += 1
        return loaded

    def _map_arrays(self, version_dir: Path,
                    manifest: List[dict]) -> List[np.ndarray]:
        blob_path = version_dir / "tensors.bin"
        if not manifest:
            return []
        if self.mmap:
            blob = np.memmap(blob_path, dtype=np.uint8, mode="r")
        else:
            blob = np.frombuffer(blob_path.read_bytes(), dtype=np.uint8)
        arrays: List[np.ndarray] = []
        for spec in manifest:
            offset, nbytes = int(spec["offset"]), int(spec["nbytes"])
            if offset + nbytes > blob.size:
                raise SpillError("tensor manifest overruns tensors.bin")
            view = blob[offset:offset + nbytes].view(
                np.dtype(spec["dtype"])).reshape(spec["shape"])
            arrays.append(view)
        return arrays


class FleetCacheSpill:
    """Per-replica spill handles under one root (``<dir>/r0``, …)."""

    def __init__(self, directory, model=None, mmap: bool = True) -> None:
        self.directory = Path(directory)
        self.model = model
        self.mmap = mmap
        self._children: Dict[str, CacheSpill] = {}

    def for_replica(self, name: str) -> CacheSpill:
        spill = self._children.get(name)
        if spill is None:
            spill = CacheSpill(self.directory / name, model=self.model,
                               mmap=self.mmap)
            self._children[name] = spill
        return spill
