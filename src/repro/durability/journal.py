"""Write-ahead job journal: accepted work survives ``kill -9``.

The async generation path acknowledges work with a 202 before any
decoding happens; without a journal, that acknowledgement is a lie a
process crash exposes — the job id the client is polling simply stops
existing.  :class:`JobJournal` closes the gap with the classic
write-ahead contract (see ``docs/DURABILITY.md``):

* **append before acknowledge** — the backend appends an ``accepted``
  record (the full validated request parameters, not a closure) and
  the record is ``fsync``'d to disk *before* the 202 leaves the
  server;
* **idempotent completion records** — when the job resolves, a
  ``completed`` record with the JSON result (or error) is appended;
  appending a second completion for the same job id is a no-op, so a
  replayed job that races a stale worker cannot double-complete;
* **replay on restart** — ``accepted`` records with no completion are
  re-submitted through the engine exactly once; engine output is
  deterministic (seeded per-request rng), so a job that *did* run but
  crashed before its completion record re-executes to the identical
  result;
* **atomic rotation** — segments compact by writing the live state to
  a brand-new fsync'd segment and only then deleting the old ones, so
  a crash mid-rotation replays duplicates (deduped by job id) rather
  than losing records.

Record framing is binary, self-delimiting and corruption-evident::

    magic "RJ" | u32 payload length | u32 CRC-32 of payload | payload

Payloads are UTF-8 JSON.  A torn tail — the expected artefact of
``kill -9`` mid-append — fails the magic/length/CRC check and replay
stops at the last whole record; nothing before it is affected.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from ..resilience.faults import InjectedFault, fault_check
from .atomic import fsync_dir

_MAGIC = b"RJ"
_HEADER = struct.Struct("<2sII")  # magic, payload length, payload crc32

#: Completion statuses the journal accepts.  ``rejected`` marks a job
#: that was journaled but never admitted to the queue (full/shutdown) —
#: replay must not resurrect it.
COMPLETION_STATUSES = ("done", "failed", "rejected")


@dataclass
class JournalState:
    """What a replay of the segments found.

    ``accepted`` and ``completed`` are keyed by job id; ``accepted``
    preserves append order (replay re-submits in acceptance order so
    FIFO fairness survives the restart).  ``duplicate_completions``
    counts raw completion records beyond the first per job — the
    crash-recovery gate asserts it stays 0.
    """

    accepted: Dict[str, dict] = field(default_factory=dict)
    completed: Dict[str, dict] = field(default_factory=dict)
    idempotency: Dict[str, str] = field(default_factory=dict)
    records: int = 0
    segments: int = 0
    torn_records: int = 0
    duplicate_completions: int = 0

    def incomplete(self) -> List[Tuple[str, dict]]:
        """Accepted-but-never-completed jobs, in acceptance order."""
        return [(job_id, record)
                for job_id, record in self.accepted.items()
                if job_id not in self.completed]


class JournalError(RuntimeError):
    """An append could not be made durable (disk error, injected fault)."""


class JobJournal:
    """Append-only, CRC-framed, fsync'd journal over segment files.

    Parameters
    ----------
    directory:
        Journal home; created if missing.  Segments are
        ``wal-000001.log``, ``wal-000002.log``, … — appends always go
        to the highest-numbered one.
    fsync:
        ``True`` (the default, and what serving uses) syncs every
        append before returning.  Tests on throwaway state may disable
        it; the framing and replay logic are unchanged.
    rotate_bytes:
        Soft ceiling on live segment size; once exceeded *and* there
        are dead records to drop, :meth:`maybe_rotate` compacts.
    keep_completed:
        Completions retained across a rotation (newest first) so
        results stay fetchable across restarts without unbounded
        growth.
    """

    def __init__(self, directory, fsync: bool = True,
                 rotate_bytes: int = 4 * 1024 * 1024,
                 keep_completed: int = 256) -> None:
        if rotate_bytes < 1:
            raise ValueError("rotate_bytes must be >= 1")
        if keep_completed < 0:
            raise ValueError("keep_completed must be >= 0")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.rotate_bytes = rotate_bytes
        self.keep_completed = keep_completed
        self._lock = threading.Lock()
        self._handle = None
        self._appends = 0
        self._rotations = 0
        # Scan whatever a previous process left so this instance knows
        # which jobs are already complete (idempotent completions) and
        # appends to the newest segment instead of shadowing it.
        state = self._read_segments()
        self._completed_ids = set(state.completed)
        self._dead_records = state.duplicate_completions
        segments = self._segment_paths()
        self._segment_seq = (self._segment_number(segments[-1])
                             if segments else 1)
        if segments:
            self._truncate_torn_tail(segments[-1])
        self._open_active()

    # ------------------------------------------------------------------
    # Appends
    # ------------------------------------------------------------------
    def append_accepted(self, job_id: str, request: dict,
                        idempotency_key: Optional[str] = None) -> None:
        """Durably record an accepted job *before* it is acknowledged.

        Raises :class:`JournalError` when the record cannot be made
        durable — the caller must then refuse the work (503), because
        acknowledging it would promise a durability we cannot provide.
        """
        record = {"type": "accepted", "job_id": job_id, "request": request,
                  "ts": time.time()}
        if idempotency_key is not None:
            record["idempotency_key"] = idempotency_key
        self._append(record)

    def append_completed(self, job_id: str, status: str,
                         result: Any = None,
                         error: Optional[str] = None) -> bool:
        """Record a job's terminal state; returns False if already done.

        Idempotent by job id: the first completion wins and later calls
        are no-ops, so a replayed job racing a half-dead worker (or a
        crash loop re-running the same job) can never double-complete.
        """
        if status not in COMPLETION_STATUSES:
            raise ValueError(f"status must be one of {COMPLETION_STATUSES}, "
                             f"got {status!r}")
        with self._lock:
            if job_id in self._completed_ids:
                return False
            self._completed_ids.add(job_id)
        record = {"type": "completed", "job_id": job_id, "status": status,
                  "result": result, "error": error, "ts": time.time()}
        try:
            self._append(record)
        except Exception:
            # The completion never hit disk; let a future caller retry.
            with self._lock:
                self._completed_ids.discard(job_id)
            raise
        return True

    def _append(self, record: dict) -> None:
        try:
            fault_check("journal.append")
        except InjectedFault as exc:
            # A chaos-injected append failure is a disk failure to the
            # caller: JournalError -> the submit is refused, not a 500.
            raise JournalError(str(exc)) from exc
        payload = json.dumps(record, ensure_ascii=False).encode("utf-8")
        frame = _HEADER.pack(_MAGIC, len(payload),
                             zlib.crc32(payload)) + payload
        with self._lock:
            if self._handle is None:
                raise JournalError("journal is closed")
            try:
                self._handle.write(frame)
                self._handle.flush()
                if self.fsync:
                    os.fsync(self._handle.fileno())
            except OSError as exc:
                raise JournalError(f"journal append failed: {exc}") from exc
            self._appends += 1

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------
    def replay(self) -> JournalState:
        """Read every segment and fold records into a :class:`JournalState`.

        Safe to call while the journal is open (reads fresh handles);
        the crash-recovery benchmark also calls it from a *different*
        process to audit the serving one.
        """
        with self._lock:
            if self._handle is not None:
                self._handle.flush()
        return self._read_segments()

    def _read_segments(self) -> JournalState:
        state = JournalState()
        for path in self._segment_paths():
            state.segments += 1
            self._read_one(path, state)
        return state

    def _truncate_torn_tail(self, path: Path) -> None:
        """Cut the active segment back to its last whole record.

        ``kill -9`` mid-append leaves a partial frame at the tail;
        appending after it would strand every later record behind
        bytes replay refuses to cross.  Classic WAL recovery: truncate
        to the last valid frame boundary, then append.
        """
        probe = JournalState()
        valid = self._read_one(path, probe)
        try:
            size = path.stat().st_size
        except OSError:
            return
        if valid < size:
            with open(path, "r+b") as handle:
                handle.truncate(valid)
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())

    @staticmethod
    def _read_one(path: Path, state: JournalState) -> int:
        try:
            blob = path.read_bytes()
        except OSError:
            return 0
        offset = 0
        complete = True
        while offset + _HEADER.size <= len(blob):
            magic, length, crc = _HEADER.unpack_from(blob, offset)
            start = offset + _HEADER.size
            end = start + length
            if magic != _MAGIC or end > len(blob):
                complete = False
                break
            payload = blob[start:end]
            if zlib.crc32(payload) != crc:
                complete = False
                break
            try:
                record = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                complete = False
                break
            offset = end
            state.records += 1
            kind = record.get("type")
            job_id = record.get("job_id")
            if not job_id:
                continue
            if kind == "accepted":
                # Re-appended by rotation: keep the first occurrence's
                # position in the order.
                state.accepted.setdefault(job_id, record)
                key = record.get("idempotency_key")
                if key is not None:
                    state.idempotency.setdefault(key, job_id)
            elif kind == "completed":
                if job_id in state.completed:
                    state.duplicate_completions += 1
                else:
                    state.completed[job_id] = record
        if not complete or offset < len(blob):
            # Torn tail: a partial header, a frame the crash cut short,
            # or a CRC mismatch.  Everything before it already folded.
            state.torn_records += 1
        return offset

    # ------------------------------------------------------------------
    # Rotation
    # ------------------------------------------------------------------
    def rotate(self) -> None:
        """Compact: write live state to a fresh segment, drop the rest.

        Atomic in the only sense that matters for a WAL: the new
        segment is complete and fsync'd *before* any old segment is
        unlinked, so a crash anywhere in between replays both (records
        are idempotent per job id — duplicates fold away).  Live state
        is every incomplete acceptance plus the ``keep_completed``
        newest completions (and their acceptances, so results stay
        resolvable).
        """
        with self._lock:
            if self._handle is None:
                raise JournalError("journal is closed")
            self._handle.flush()
            if self.fsync:
                os.fsync(self._handle.fileno())
            old_segments = self._segment_paths()
            state = JournalState()
            for path in old_segments:
                self._read_one(path, state)
            keep_completed = list(state.completed.items())
            if self.keep_completed:
                keep_completed = keep_completed[-self.keep_completed:]
            else:
                keep_completed = []
            kept_ids = {job_id for job_id, _ in keep_completed}
            live: List[dict] = []
            for job_id, record in state.accepted.items():
                if job_id not in state.completed or job_id in kept_ids:
                    live.append(record)
            live.extend(record for _, record in keep_completed)
            self._segment_seq += 1
            new_path = self._segment_path(self._segment_seq)
            frames = bytearray()
            for record in live:
                payload = json.dumps(record,
                                     ensure_ascii=False).encode("utf-8")
                frames += _HEADER.pack(_MAGIC, len(payload),
                                       zlib.crc32(payload))
                frames += payload
            with open(new_path, "wb") as handle:
                handle.write(bytes(frames))
                handle.flush()
                os.fsync(handle.fileno())
            fsync_dir(self.directory)
            self._handle.close()
            self._handle = open(new_path, "ab")
            for path in old_segments:
                try:
                    path.unlink()
                except OSError:
                    pass
            # The idempotent-completion guard must survive compaction:
            # a completion record may be dropped from disk, but a late
            # append_completed for that job must still be a no-op.  Ids
            # are tiny; keep them all.
            self._completed_ids = set(state.completed)
            self._dead_records = 0
            self._rotations += 1

    def maybe_rotate(self) -> bool:
        """Rotate when the active segment outgrew ``rotate_bytes``."""
        with self._lock:
            if self._handle is None:
                return False
            try:
                size = self._handle.tell()
            except (OSError, ValueError):
                return False
        if size < self.rotate_bytes:
            return False
        self.rotate()
        return True

    # ------------------------------------------------------------------
    # Lifecycle + introspection
    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.flush()
                if self.fsync:
                    try:
                        os.fsync(self._handle.fileno())
                    except OSError:
                        pass
                self._handle.close()
                self._handle = None

    def stats(self) -> Dict[str, Any]:
        segments = self._segment_paths()
        return {
            "directory": str(self.directory),
            "segments": len(segments),
            "bytes": sum(path.stat().st_size for path in segments
                         if path.exists()),
            "appends": self._appends,
            "rotations": self._rotations,
            "fsync": self.fsync,
        }

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _segment_paths(self) -> List[Path]:
        return sorted(self.directory.glob("wal-*.log"))

    def _segment_path(self, seq: int) -> Path:
        return self.directory / f"wal-{seq:06d}.log"

    @staticmethod
    def _segment_number(path: Path) -> int:
        try:
            return int(path.stem.split("-", 1)[1])
        except (IndexError, ValueError):
            return 1

    def _open_active(self) -> None:
        self._handle = open(self._segment_path(self._segment_seq), "ab")
