"""Crash-safety for the serving stack (see ``docs/DURABILITY.md``).

Three pieces, layered under ``repro serve``:

* :class:`JobJournal` — a write-ahead log of accepted async generation
  jobs: fsync'd CRC-framed records appended *before* the 202 leaves
  the server, idempotent completion records, atomic rotation, and
  replay on restart so ``kill -9`` loses zero acknowledged jobs;
* :class:`CacheSpill` / :class:`FleetCacheSpill` — versioned,
  mmap-reloaded snapshots of the prefix KV cache so supervisor
  restarts and cluster ``drain → swap → readmit`` come back warm;
* the graceful-shutdown path wired through ``repro serve`` (SIGTERM →
  stop admission → drain → flush journal + spill caches → exit 0),
  implemented in ``repro.webapp`` on top of the two primitives above.
"""

from .atomic import (atomic_write_bytes, atomic_write_json,
                     atomic_write_text, fsync_dir, fsync_file)
from .journal import (COMPLETION_STATUSES, JobJournal, JournalError,
                      JournalState)
from .spill import (CacheSpill, FleetCacheSpill, SpillError,
                    model_fingerprint)

__all__ = [
    "COMPLETION_STATUSES",
    "CacheSpill",
    "FleetCacheSpill",
    "JobJournal",
    "JournalError",
    "JournalState",
    "SpillError",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "fsync_dir",
    "fsync_file",
    "model_fingerprint",
]
