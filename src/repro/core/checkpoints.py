"""Checkpoint store: model weights + config + tokenizer in one directory.

Layout::

    <dir>/
      config.json     # model config_dict() + format version
      weights.npz     # state_dict arrays
      tokenizer.json  # tokenizer vocabulary and extra state

Weights round-trip exactly (float32 bit-for-bit); loading validates
shapes against the reconstructed architecture.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Tuple, Union

import numpy as np

from ..models.base import LanguageModel
from ..tokenizers import Tokenizer, load_any
from .registry import build_from_config

PathLike = Union[str, Path]

FORMAT_VERSION = 1


def save_checkpoint(model: LanguageModel, tokenizer: Tokenizer,
                    directory: PathLike) -> Path:
    """Write a complete checkpoint; returns the directory path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    config = {"format_version": FORMAT_VERSION, "model": model.config_dict()}
    (directory / "config.json").write_text(json.dumps(config, indent=2),
                                           encoding="utf-8")
    np.savez(directory / "weights.npz", **model.state_dict())
    tokenizer.save(directory / "tokenizer.json")
    return directory


def load_checkpoint(directory: PathLike) -> Tuple[LanguageModel, Tokenizer]:
    """Reconstruct (model, tokenizer) from :func:`save_checkpoint` output."""
    directory = Path(directory)
    config_path = directory / "config.json"
    if not config_path.exists():
        raise FileNotFoundError(f"no checkpoint at {directory}")
    config = json.loads(config_path.read_text(encoding="utf-8"))
    version = config.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"checkpoint format {version} not supported (expected {FORMAT_VERSION})")
    model = build_from_config(config["model"])
    with np.load(directory / "weights.npz") as archive:
        state = {name: archive[name] for name in archive.files}
    model.load_state_dict(state)
    model.eval()
    tokenizer = load_any(directory / "tokenizer.json")
    return model, tokenizer
