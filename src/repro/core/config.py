"""End-to-end pipeline configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..preprocess import PreprocessConfig
from ..training import TrainingConfig


@dataclass
class PipelineConfig:
    """Everything needed to go corpus → trained model → generation.

    Defaults are sized for a single CPU core: a few hundred synthetic
    recipes and a few hundred optimizer steps train in minutes while
    still exhibiting the paper's model ordering.
    """

    model_name: str = "gpt2-medium"
    num_recipes: int = 300
    corpus_seed: int = 0
    model_seed: int = 0
    seq_len: int = 128
    val_fraction: float = 0.1
    preprocess: PreprocessConfig = field(default_factory=PreprocessConfig)
    training: TrainingConfig = field(default_factory=TrainingConfig)

    def validate(self) -> None:
        if self.num_recipes < 2:
            raise ValueError("num_recipes must be >= 2")
        if self.seq_len < 2:
            raise ValueError("seq_len must be >= 2")
        if not 0.0 < self.val_fraction < 1.0:
            raise ValueError("val_fraction must be in (0, 1)")
        self.training.validate()
