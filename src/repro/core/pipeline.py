"""The Ratatouille pipeline: the library's primary public API.

One object ties the whole reproduction together::

    from repro.core import Ratatouille

    app = Ratatouille.quickstart(model_name="gpt2-medium")
    recipe = app.generate(["chicken breast", "garlic", "basmati rice"])
    print(recipe.title)
    for step in recipe.instructions:
        print("-", step)

It owns a trained model + tokenizer pair and exposes generation
(ingredients → structured recipe, the web app's backend operation) and
evaluation (the Table-I BLEU protocol).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..evaluate import corpus_bleu, score_structure
from ..models import ChecklistBonus, GenerationConfig, LanguageModel, generate
from ..preprocess import (INSTR_START, PreprocessingPipeline, decode_numbers,
                          encode_numbers, format_prompt, parse_recipe)
from ..recipedb import generate_corpus
from ..tokenizers import Tokenizer
from ..training import LMDataset, Trainer, TrainingResult, train_val_split
from .checkpoints import load_checkpoint, save_checkpoint
from .config import PipelineConfig
from .registry import get_spec


@dataclass
class GeneratedRecipe:
    """A generated recipe, raw and parsed."""

    raw_text: str
    title: str
    ingredients: List[str]
    instructions: List[str]
    prompt_ingredients: List[str] = field(default_factory=list)
    is_valid: bool = False
    ingredient_coverage: float = 0.0
    generation_seconds: float = 0.0

    def pretty(self) -> str:
        """Human-readable rendering (what the web frontend displays)."""
        lines = [self.title or "(untitled)", ""]
        lines.append("Ingredients:")
        lines.extend(f"  - {line}" for line in self.ingredients)
        lines.append("")
        lines.append("Instructions:")
        lines.extend(f"  {i}. {line}"
                     for i, line in enumerate(self.instructions, start=1))
        return "\n".join(lines)


class Ratatouille:
    """A trained recipe generator (model + tokenizer + config)."""

    def __init__(self, model: LanguageModel, tokenizer: Tokenizer,
                 config: Optional[PipelineConfig] = None,
                 training_result: Optional[TrainingResult] = None) -> None:
        self.model = model
        self.tokenizer = tokenizer
        self.config = config or PipelineConfig()
        self.training_result = training_result

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_texts(cls, texts: Sequence[str],
                   config: Optional[PipelineConfig] = None) -> "Ratatouille":
        """Train a new pipeline on preprocessed recipe texts."""
        config = config or PipelineConfig()
        config.validate()
        spec = get_spec(config.model_name)
        train_texts, val_texts = train_val_split(
            texts, val_fraction=config.val_fraction, seed=config.corpus_seed)
        tokenizer = spec.build_tokenizer(train_texts)
        model = spec.build_model(tokenizer.vocab_size, config.model_seed)
        train_set = LMDataset(train_texts, tokenizer, seq_len=config.seq_len)
        val_set = LMDataset(val_texts, tokenizer, seq_len=config.seq_len)
        trainer = Trainer(model, config.training)
        result = trainer.train(train_set, val_set)
        return cls(model, tokenizer, config=config, training_result=result)

    @classmethod
    def quickstart(cls, model_name: str = "gpt2-medium",
                   num_recipes: int = 300, seed: int = 0,
                   config: Optional[PipelineConfig] = None) -> "Ratatouille":
        """Synthesize a corpus, preprocess it and train, in one call."""
        config = config or PipelineConfig()
        config.model_name = model_name
        config.num_recipes = num_recipes
        config.corpus_seed = seed
        recipes = generate_corpus(num_recipes, seed=seed)
        texts, _ = PreprocessingPipeline(config.preprocess).run(recipes)
        return cls.from_texts(texts, config=config)

    def build_draft(self, order: int = 3,
                    num_recipes: Optional[int] = None,
                    seed: Optional[int] = None) -> "NGramDraft":
        """Fit an n-gram draft model for speculative decoding.

        Regenerates the training corpus from the pipeline's recorded
        ``num_recipes``/``corpus_seed`` (so the draft sees the same
        distribution the target model was trained on), preprocesses it
        with the same pipeline, tokenizes with this pipeline's
        tokenizer, and counts n-grams.  Cheap — one counting pass, a
        few seconds even for large corpora.
        """
        from ..models.speculative import NGramDraft

        recipes = generate_corpus(
            num_recipes if num_recipes is not None else self.config.num_recipes,
            seed=seed if seed is not None else self.config.corpus_seed)
        texts, _ = PreprocessingPipeline(self.config.preprocess).run(recipes)
        sequences = [self.tokenizer.encode(text) for text in texts]
        return NGramDraft.fit(sequences, self.tokenizer.vocab_size,
                              order=order)

    def build_retrieval_index(self, num_recipes: Optional[int] = None,
                              seed: Optional[int] = None,
                              embedding=None, lsh=None, registry=None):
        """Build a :class:`~repro.retrieval.RecipeIndex` over the corpus.

        Like :meth:`build_draft`, regenerates the training corpus from
        the pipeline's recorded ``num_recipes``/``corpus_seed`` so the
        index covers exactly what the model saw — which is what makes
        its nearest-neighbour novelty score a *memorization* measure
        rather than a generic similarity one.
        """
        from ..retrieval import RecipeIndex

        recipes = generate_corpus(
            num_recipes if num_recipes is not None else self.config.num_recipes,
            seed=seed if seed is not None else self.config.corpus_seed)
        return RecipeIndex.from_recipes(recipes, embedding=embedding,
                                        lsh=lsh, registry=registry)

    # ------------------------------------------------------------------
    # Generation (the web app backend operation)
    # ------------------------------------------------------------------
    def prepare_prompt(self, ingredients: Sequence[str],
                       generation: Optional[GenerationConfig] = None,
                       checklist: bool = False,
                       exemplars: Optional[Sequence[str]] = None
                       ) -> Tuple[str, List[int], GenerationConfig, list]:
        """Build the token-level request for an ingredient list.

        Returns ``(prompt_text, prompt_ids, config, processors)`` —
        everything a decoder (the in-process :func:`~repro.models.generate`
        or a :class:`~repro.serving.InferenceEngine`) needs.  Splitting
        this out of :meth:`generate` is what lets the serving engine
        stream tokens and still produce identical recipes.

        ``exemplars`` (retrieval-conditioned generation) prepends the
        given tagged recipe texts to the *token* prompt, in order —
        retrieved neighbours the model can imitate.  The returned
        ``prompt_text`` stays un-prefixed so downstream parsing
        (:meth:`finish_recipe`) sees exactly the recipe being
        generated, and the exemplar block forms a deterministic token
        prefix, which is what makes RAG prompts prefix-cache-friendly
        in the serving engine.  ``exemplars=None`` (or empty) is
        bit-identical to the pre-retrieval behaviour.
        """
        if not ingredients:
            raise ValueError("at least one ingredient is required")
        generation = generation or GenerationConfig(
            max_new_tokens=220, top_k=20, temperature=0.8,
            stop_token_id=None)
        prompt_text = encode_numbers(format_prompt(list(ingredients)))
        token_text = prompt_text
        if exemplars:
            prefix = " ".join(text.strip() for text in exemplars
                              if text and text.strip())
            if prefix:
                token_text = f"{prefix} {prompt_text}"
        prompt_ids = self.tokenizer.encode(token_text)
        if generation.stop_token_id is None:
            generation.stop_token_id = self.tokenizer.eos_id

        processors = []
        if checklist:
            token_sets = []
            for name in ingredients:
                ids = [i for i in self.tokenizer.encode(name)
                       if i != self.tokenizer.unk_id]
                if ids:
                    token_sets.append(ids)
            processors.append(ChecklistBonus(token_sets))
        return prompt_text, prompt_ids, generation, processors

    def finish_recipe(self, prompt_text: str, new_ids: Sequence[int],
                      ingredients: Sequence[str],
                      elapsed: float = 0.0) -> GeneratedRecipe:
        """Decode, parse and score a finished generation."""
        continuation = self.tokenizer.decode(list(new_ids))
        raw = f"{prompt_text} {continuation}"
        parsed = parse_recipe(raw)
        structure = score_structure(raw, prompt_ingredients=list(ingredients))
        return GeneratedRecipe(
            raw_text=raw,
            title=decode_numbers(parsed.title),
            ingredients=[decode_numbers(line) for line in parsed.ingredients],
            instructions=[decode_numbers(line) for line in parsed.instructions],
            prompt_ingredients=list(ingredients),
            is_valid=structure.is_valid,
            ingredient_coverage=structure.ingredient_coverage,
            generation_seconds=elapsed,
        )

    def generate(self, ingredients: Sequence[str],
                 generation: Optional[GenerationConfig] = None,
                 checklist: bool = False,
                 engine=None,
                 exemplars: Optional[Sequence[str]] = None
                 ) -> GeneratedRecipe:
        """Generate a recipe from an ingredient list.

        Parameters
        ----------
        ingredients:
            Ingredient lines (with or without quantities).
        generation:
            Decoding configuration; default samples with top-k 20.
        checklist:
            Enable the checklist-coverage extension (boost prompt
            ingredients the generation has not mentioned yet).
        engine:
            Optional :class:`~repro.serving.InferenceEngine` to decode
            through (continuous batching + prefix-cache reuse).  The
            engine's output is bit-identical to the in-process path,
            so this only changes throughput, never recipes.
        exemplars:
            Retrieved recipe texts to condition on (see
            :meth:`prepare_prompt`); ``None`` generates unconditioned.
        """
        prompt_text, prompt_ids, config, processors = self.prepare_prompt(
            ingredients, generation=generation, checklist=checklist,
            exemplars=exemplars)
        start = time.perf_counter()
        if engine is not None:
            new_ids = engine.generate(prompt_ids, config,
                                      processors=processors)
        else:
            new_ids = generate(self.model, prompt_ids, config,
                               processors=processors)
        elapsed = time.perf_counter() - start
        return self.finish_recipe(prompt_text, new_ids, ingredients, elapsed)

    # ------------------------------------------------------------------
    # Evaluation (the Table-I protocol)
    # ------------------------------------------------------------------
    def evaluate_bleu(self, eval_texts: Sequence[str],
                      max_samples: int = 20,
                      generation: Optional[GenerationConfig] = None,
                      seed: int = 0) -> Tuple[float, List[str]]:
        """Corpus BLEU of generated continuations against references.

        For each held-out recipe the model is prompted with everything
        up to ``<INSTR_START>`` and must regenerate the instructions;
        BLEU compares the generated continuation to the reference one.
        Returns ``(bleu, generated_texts)``.
        """
        candidates: List[List[str]] = []
        references: List[List[List[str]]] = []
        generated_texts: List[str] = []
        rng = np.random.default_rng(seed)
        texts = list(eval_texts)
        if len(texts) > max_samples:
            chosen = rng.choice(len(texts), size=max_samples, replace=False)
            texts = [texts[i] for i in chosen]

        for text in texts:
            cut = text.find(INSTR_START)
            if cut < 0:
                continue
            cut += len(INSTR_START)
            prompt_text, reference_text = text[:cut], text[cut:]
            reference_tokens = reference_text.split()
            if not reference_tokens:
                continue
            config = generation or GenerationConfig(
                max_new_tokens=0, top_k=20, temperature=0.8)
            # Give the model the same token budget the reference used.
            budget = len(self.tokenizer.encode(reference_text))
            config = GenerationConfig(
                max_new_tokens=max(budget, 8), strategy=config.strategy,
                temperature=config.temperature, top_k=config.top_k,
                top_p=config.top_p, beam_size=config.beam_size,
                repetition_penalty=config.repetition_penalty,
                stop_token_id=self.tokenizer.eos_id,
                seed=int(rng.integers(2 ** 31)))
            prompt_ids = self.tokenizer.encode(prompt_text)
            new_ids = generate(self.model, prompt_ids, config)
            continuation = self.tokenizer.decode(new_ids)
            generated_texts.append(f"{prompt_text} {continuation}")
            candidates.append(continuation.split())
            references.append([reference_tokens])

        if not candidates:
            raise ValueError("no evaluable texts (none contained <INSTR_START>)")
        result = corpus_bleu(candidates, references, smoothing=1)
        return result.bleu, generated_texts

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, directory) -> None:
        save_checkpoint(self.model, self.tokenizer, directory)

    @classmethod
    def load(cls, directory) -> "Ratatouille":
        model, tokenizer = load_checkpoint(directory)
        return cls(model, tokenizer)
