"""Model registry: Table-I model names → tokenizer + model factories.

The registry is the single mapping from the paper's model names
("Char-level LSTM", "Word-level LSTM", "DistilGPT2", "GPT-2 medium",
plus the future-work "GPT-Neo") to the code that builds them.  The
pipeline, the checkpoints store and every benchmark resolve models
through it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from ..models import (GPT2Config, GPT2Model, GPTNeoConfig, GPTNeoModel,
                      LanguageModel, LSTMConfig, LSTMLanguageModel, char_lstm,
                      distilgpt2, gpt2_medium, gpt_neo_small, word_lstm)
from ..tokenizers import (BPETokenizer, CharTokenizer, Tokenizer,
                          WordTokenizer)


@dataclass(frozen=True)
class ModelSpec:
    """How to build one named model family."""

    name: str
    display_name: str
    build_tokenizer: Callable[[Sequence[str]], Tokenizer]
    build_model: Callable[[int, int], LanguageModel]  # (vocab_size, seed)
    #: Table-I BLEU reported by the paper, for shape comparison
    paper_bleu: float


_REGISTRY: Dict[str, ModelSpec] = {}


def register(spec: ModelSpec) -> None:
    if spec.name in _REGISTRY:
        raise ValueError(f"model {spec.name!r} already registered")
    _REGISTRY[spec.name] = spec


def get_spec(name: str) -> ModelSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; available: {sorted(_REGISTRY)}") from None


def model_names() -> List[str]:
    return list(_REGISTRY)


def table1_models() -> List[str]:
    """The four models of the paper's Table I, in its row order."""
    return ["char-lstm", "word-lstm", "distilgpt2", "gpt2-medium"]


def build_from_config(config: dict) -> LanguageModel:
    """Reconstruct a model from its ``config_dict()`` (checkpoint load)."""
    config = dict(config)
    model_type = config.pop("model_type", None)
    if model_type == "lstm":
        return LSTMLanguageModel(LSTMConfig(**config))
    if model_type == "gpt2":
        return GPT2Model(GPT2Config(**config))
    if model_type == "gpt_neo":
        return GPTNeoModel(GPTNeoConfig(**config))
    raise ValueError(f"unknown model_type {model_type!r} in checkpoint")


register(ModelSpec(
    name="char-lstm",
    display_name="Char-level LSTM",
    # atomic_specials keeps structure tags whole; natural text is still
    # character-by-character.  The paper's char-LSTM trained to
    # convergence on an A100 and could learn to spell the tags; at
    # CPU-scale budgets that alone consumes the model (BLEU pins to 0),
    # so tags-as-symbols is the documented substitution (DESIGN.md).
    build_tokenizer=lambda texts: CharTokenizer(texts, atomic_specials=True),
    build_model=lambda vocab, seed: char_lstm(vocab, seed=seed),
    paper_bleu=0.347,
))
register(ModelSpec(
    name="word-lstm",
    display_name="Word-level LSTM",
    build_tokenizer=lambda texts: WordTokenizer(texts),
    build_model=lambda vocab, seed: word_lstm(vocab, seed=seed),
    paper_bleu=0.412,
))
register(ModelSpec(
    name="distilgpt2",
    display_name="DistilGPT2",
    build_tokenizer=lambda texts: BPETokenizer(texts, num_merges=800),
    build_model=lambda vocab, seed: distilgpt2(vocab, seed=seed),
    paper_bleu=0.442,
))
register(ModelSpec(
    name="gpt2-medium",
    display_name="GPT-2 medium",
    build_tokenizer=lambda texts: BPETokenizer(texts, num_merges=800),
    build_model=lambda vocab, seed: gpt2_medium(vocab, seed=seed),
    paper_bleu=0.806,
))
register(ModelSpec(
    name="gpt-neo",
    display_name="GPT-Neo (future work)",
    build_tokenizer=lambda texts: BPETokenizer(texts, num_merges=800),
    build_model=lambda vocab, seed: gpt_neo_small(vocab, seed=seed),
    paper_bleu=float("nan"),
))
