"""Core: the Ratatouille pipeline, configs, registry, checkpoints."""

from .checkpoints import load_checkpoint, save_checkpoint
from .config import PipelineConfig
from .pipeline import GeneratedRecipe, Ratatouille
from .registry import (ModelSpec, build_from_config, get_spec, model_names,
                       table1_models)

__all__ = [
    "GeneratedRecipe", "ModelSpec", "PipelineConfig", "Ratatouille",
    "build_from_config", "get_spec", "load_checkpoint", "model_names",
    "save_checkpoint", "table1_models",
]
