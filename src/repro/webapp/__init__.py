"""Web application: micro framework, backend + frontend services.

Reproduces Sec. VI: a decoupled two-service architecture — a JSON
generation backend (Flask in the paper, :mod:`.framework` here) and a
static ingredient-picker frontend (ReactJS in the paper) — plus the
dockerized-deployment config emitter (:mod:`.deploy`).
"""

from .backend import create_backend
from .client import (ApiError, CircuitBreaker, CircuitOpenError,
                     RatatouilleClient, RetryPolicy, StreamInterrupted)
from .deploy import (DeploymentConfig, ServiceSpec, render_compose,
                     render_dockerfile, scale_out, write_deployment)
from .framework import App, Request, Response, Server
from .jobs import SHUTDOWN_ERROR, Job, JobQueue, JobStatus, QueueFullError
from .middleware import (AccessRecord, MetricsMiddleware, RateLimiter,
                         RequestLog)
from .frontend import create_frontend, render_page

__all__ = [
    "ApiError", "App", "CircuitBreaker", "CircuitOpenError",
    "DeploymentConfig", "RatatouilleClient", "Request",
    "Response", "RetryPolicy", "SHUTDOWN_ERROR", "Server", "ServiceSpec",
    "StreamInterrupted", "create_backend", "create_frontend",
    "AccessRecord", "Job", "JobQueue", "JobStatus", "MetricsMiddleware",
    "QueueFullError", "RateLimiter", "RequestLog",
    "render_compose", "render_dockerfile", "render_page", "scale_out",
    "write_deployment",
]
