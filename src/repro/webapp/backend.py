"""The generation backend microservice (the paper's Flask service).

Endpoints:

* ``GET  /api/health``      — liveness + model info;
* ``GET  /api/ingredients`` — the catalog the frontend's picker lists;
* ``POST /api/generate``    — ingredients in, structured recipe out
  (Figs. 4–5 round trip);
* ``POST /api/suggest``     — flavor-pairing suggestions for a partial
  ingredient list (FlavorDB extension);
* ``POST /api/generate_async`` + ``GET /api/job?id=...`` — queued
  generation with backpressure (429 when the queue is full), the
  load-handling story of Sec. VI;
* ``GET /api/metrics`` — the observability exposition (JSON by
  default, ``?format=text`` for the Prometheus-style form); see
  ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.pipeline import Ratatouille
from ..models import GenerationConfig
from ..obs import (MetricsRegistry, Tracer, get_registry, get_tracer,
                   render_json, render_text)
from ..recipedb import IngredientCatalog, PairingGraph, default_catalog
from .framework import App, Request, Response
from .jobs import JobQueue, QueueFullError

MAX_INGREDIENTS = 20


def _parse_generation_request(payload: dict) -> tuple:
    """Validate a generation payload; returns (names, config, checklist)."""
    selected = payload.get("ingredients")
    if not isinstance(selected, list) or not selected:
        raise ValueError("'ingredients' must be a non-empty list")
    if len(selected) > MAX_INGREDIENTS:
        raise ValueError(f"at most {MAX_INGREDIENTS} ingredients supported")
    names = [str(name) for name in selected]
    config = GenerationConfig(
        max_new_tokens=int(payload.get("max_new_tokens", 220)),
        temperature=float(payload.get("temperature", 0.8)),
        top_k=int(payload.get("top_k", 20)),
        seed=int(payload.get("seed", 0)),
    )
    return names, config, bool(payload.get("checklist", False))


def _recipe_payload(recipe) -> dict:
    return {
        "title": recipe.title,
        "ingredients": recipe.ingredients,
        "instructions": recipe.instructions,
        "is_valid": recipe.is_valid,
        "ingredient_coverage": recipe.ingredient_coverage,
        "generation_seconds": recipe.generation_seconds,
    }


def create_backend(pipeline: Ratatouille,
                   catalog: Optional[IngredientCatalog] = None,
                   pairing: Optional[PairingGraph] = None,
                   job_queue: Optional[JobQueue] = None,
                   registry: Optional[MetricsRegistry] = None,
                   tracer: Optional[Tracer] = None) -> App:
    """Build the backend :class:`~repro.webapp.framework.App`.

    ``registry``/``tracer`` are what ``GET /api/metrics`` exposes and
    what the job queue reports into; they default to the process-wide
    instances.
    """
    catalog = catalog or default_catalog()
    registry = registry if registry is not None else get_registry()
    tracer = tracer if tracer is not None else get_tracer()
    jobs = job_queue or JobQueue(workers=1, max_pending=16, registry=registry)
    app = App(name="ratatouille-backend")

    @app.route("/api/health")
    def health(request: Request) -> Response:
        return Response.json({
            "status": "ok",
            "model": type(pipeline.model).__name__,
            "parameters": pipeline.model.num_parameters(),
            "vocab_size": pipeline.tokenizer.vocab_size,
        })

    @app.route("/api/ingredients")
    def ingredients(request: Request) -> Response:
        category = request.query.get("category", [None])[0]
        if category:
            items = catalog.by_category(category)
        else:
            items = catalog.all()
        limit = int(request.query.get("limit", ["100"])[0])
        return Response.json({
            "ingredients": [
                {"name": item.name, "category": item.category}
                for item in items[:limit]
            ],
            "total": len(items),
        })

    @app.route("/api/generate", methods=("POST",))
    def generate_recipe(request: Request) -> Response:
        names, config, checklist = _parse_generation_request(request.json())
        recipe = pipeline.generate(names, generation=config,
                                   checklist=checklist)
        return Response.json(_recipe_payload(recipe))

    @app.route("/api/generate_async", methods=("POST",))
    def generate_async(request: Request) -> Response:
        names, config, checklist = _parse_generation_request(request.json())

        def work():
            recipe = pipeline.generate(names, generation=config,
                                       checklist=checklist)
            return _recipe_payload(recipe)

        try:
            job_id = jobs.submit(work)
        except QueueFullError as exc:
            return Response.error(str(exc), status=429)
        return Response.json({"job_id": job_id, "status": "pending"},
                             status=202)

    @app.route("/api/job")
    def job_status(request: Request) -> Response:
        job_id = request.query.get("id", [None])[0]
        if not job_id:
            return Response.error("missing 'id' query parameter")
        try:
            job = jobs.get(job_id)
        except KeyError:
            return Response.error(f"unknown job {job_id}", status=404)
        return Response.json(job.snapshot())

    @app.route("/api/metrics")
    def metrics(request: Request) -> Response:
        fmt = request.query.get("format", ["json"])[0]
        if fmt == "text":
            return Response.text(render_text(registry))
        if fmt != "json":
            return Response.error(f"unknown format {fmt!r}; use json or text")
        include_trace = request.query.get("trace", ["0"])[0] in ("1", "true")
        return Response.json(
            render_json(registry, tracer if include_trace else None))

    @app.route("/api/suggest", methods=("POST",))
    def suggest(request: Request) -> Response:
        nonlocal pairing
        payload = request.json()
        selected = payload.get("ingredients")
        if not isinstance(selected, list) or not selected:
            return Response.error("'ingredients' must be a non-empty list")
        if pairing is None:
            pairing = PairingGraph(catalog)
        suggestions = pairing.suggest([str(s) for s in selected],
                                      limit=int(payload.get("limit", 5)))
        return Response.json({
            "suggestions": [
                {"name": name, "score": round(score, 4)}
                for name, score in suggestions
            ],
        })

    return app
