"""The generation backend microservice (the paper's Flask service).

Endpoints:

* ``GET  /api/health``      — liveness + model info;
* ``GET  /api/ingredients`` — the catalog the frontend's picker lists;
* ``POST /api/generate``    — ingredients in, structured recipe out
  (Figs. 4–5 round trip);
* ``POST /api/suggest``     — flavor-pairing suggestions for a partial
  ingredient list (FlavorDB extension);
* ``POST /api/generate_async`` + ``GET /api/job?id=...`` — queued
  generation with backpressure (429 when the queue is full), the
  load-handling story of Sec. VI;
* ``POST /api/generate_stream`` — server-sent-events token streaming
  through the serving engine (``docs/SERVING.md``);
* ``POST /api/search`` — semantic search over the training corpus
  (``docs/RETRIEVAL.md``); requires ``retrieval_index``;
* ``GET /api/retrieval`` — index structure and recall stats;
* ``GET /api/engine`` — serving-engine and prefix-cache stats;
* ``GET /api/metrics`` — the observability exposition (JSON by
  default, ``?format=text`` for the Prometheus-style form); see
  ``docs/OBSERVABILITY.md``.

Every decoding knob in a generation payload is validated server-side
(:meth:`~repro.models.GenerationConfig.validate` plus a
``max_new_tokens`` cap) and rejected with HTTP 400 before any model
work happens.
"""

from __future__ import annotations

import threading
import uuid
from typing import Dict, Optional, Sequence

from ..cluster import ClusterConfig, NoReplicaAvailableError, Router
from ..core.pipeline import Ratatouille
from ..decoding import (MIN_BUDGET, apply_constraints_to_prompt,
                        build_constrained_processors, parse_constraints,
                        run_constrained_generation, violations)
from ..durability import (CacheSpill, FleetCacheSpill, JobJournal,
                          JournalError)
from ..models import GenerationConfig
from ..obs import (MetricsRegistry, Tracer, get_registry, get_tracer,
                   render_json, render_text)
from ..recipedb import IngredientCatalog, PairingGraph, default_catalog
from ..resilience import (AdmissionController, OverloadShedError,
                          ResilienceConfig)
from ..retrieval import query_from_ingredients
from ..resilience.supervisor import (EngineSupervisor, EngineUnavailableError,
                                     sequential_fallback)
from ..serving import (DeadlineExceededError, EngineCrashedError,
                       EngineQueueFullError, EngineStoppedError,
                       InferenceEngine)
from .framework import App, Request, Response
from .jobs import JobQueue, QueueFullError

MAX_INGREDIENTS = 20

#: Server-side ceiling on requested generation length.  Client-supplied
#: ``max_new_tokens`` beyond this is a 400, not a silent clamp.
MAX_NEW_TOKENS_CAP = 512

#: Server-side ceiling on per-request ``speculative_k`` (draft tokens
#: per verify step).  Beyond ~16 the acceptance tail is empty and the
#: verify chunk just wastes work, so larger asks are a 400.
MAX_SPECULATIVE_K = 16

#: Server-side ceiling on per-request ``retrieve_k`` (RAG exemplars
#: prepended to the prompt).  Each exemplar is a full tagged recipe
#: (~100 tokens), so beyond a handful the prefix crowds out the decode
#: budget; larger asks are a 400.
MAX_RETRIEVE_K = 8

#: Server-side ceiling on per-request ``mcts_rollouts``.  Each rollout
#: is a full decode, so admission charges MCTS requests
#: ``max_new_tokens * (1 + mcts_rollouts)`` token-equivalents; the cap
#: bounds what one request may ask the gate for.  ``repro serve
#: --max-mcts-rollouts`` tunes it per deployment.
MAX_MCTS_ROLLOUTS = 64

#: Server-side ceiling on ``/api/search`` result count.
MAX_SEARCH_K = 50

#: Server-side ceiling on ``/api/search`` query length.
MAX_QUERY_CHARS = 2000

#: Admission cost (in token-equivalents) charged for one search.  A
#: search is two mat-vecs, far cheaper than decoding, but it must cost
#: *something* so a saturated server sheds search load too.
SEARCH_ADMISSION_COST = 16

_CONFIG_FIELDS = (
    ("max_new_tokens", int, 220),
    ("strategy", str, "sample"),
    ("temperature", float, 0.8),
    ("top_k", int, 20),
    ("top_p", float, 1.0),
    ("beam_size", int, 4),
    ("length_penalty", float, 0.7),
    ("repetition_penalty", float, 1.0),
    ("seed", int, 0),
    ("speculative_k", int, 0),
    ("mcts_rollouts", int, 12),
    ("mcts_c_puct", float, 1.4),
)


def _parse_generation_request(payload: dict,
                              max_new_tokens_cap: int = MAX_NEW_TOKENS_CAP,
                              default_speculative_k: int = 0,
                              catalog: Optional[IngredientCatalog] = None,
                              max_mcts_rollouts: int = MAX_MCTS_ROLLOUTS
                              ) -> tuple:
    """Validate a generation payload; returns (names, config, checklist).

    Raises :class:`ValueError` (→ HTTP 400) on anything malformed: a
    non-coercible knob, a value :meth:`GenerationConfig.validate`
    rejects, or a ``max_new_tokens`` beyond the server's cap.
    Constraint errors carry named codes (``unknown_diet:``,
    ``conflicting_constraints:``, ``diet_conflict:``,
    ``calories_exceeded:``, ``unknown_constraint:``) so clients can
    react without parsing prose.

    ``default_speculative_k`` is the server's speculative-decoding
    default (``repro serve --speculative``); a payload ``speculative_k``
    overrides it per request (``0`` opts out explicitly).

    A ``constraints`` object in the payload is parsed into
    :class:`~repro.decoding.Constraints`, ``include_ingredients`` are
    merged into the returned ``names`` (inclusion by construction), and
    conflicts are pre-checked here so an unsatisfiable request is a 400
    before any model work.
    """
    selected = payload.get("ingredients")
    if not isinstance(selected, list) or not selected:
        raise ValueError("'ingredients' must be a non-empty list")
    if len(selected) > MAX_INGREDIENTS:
        raise ValueError(f"at most {MAX_INGREDIENTS} ingredients supported")
    names = [str(name) for name in selected]
    values = {}
    for name, cast, default in _CONFIG_FIELDS:
        if name == "speculative_k":
            default = default_speculative_k
        raw = payload.get(name, default)
        try:
            values[name] = cast(raw)
        except (TypeError, ValueError):
            raise ValueError(
                f"'{name}' must be a {cast.__name__}, got {raw!r}") from None
    config = GenerationConfig(**values)
    config.validate()
    if config.max_new_tokens > max_new_tokens_cap:
        raise ValueError(
            f"max_new_tokens is capped at {max_new_tokens_cap} "
            f"(got {config.max_new_tokens})")
    if config.speculative_k > MAX_SPECULATIVE_K:
        raise ValueError(
            f"speculative_k is capped at {MAX_SPECULATIVE_K} "
            f"(got {config.speculative_k})")
    raw_constraints = payload.get("constraints")
    if raw_constraints is not None:
        constraints = parse_constraints(raw_constraints)
        if config.strategy == "beam":
            raise ValueError(
                "constrained decoding does not support beam search; "
                "use greedy, sample, or mcts")
        config.constraints = constraints
        names = apply_constraints_to_prompt(names, constraints, catalog,
                                            MAX_INGREDIENTS)
    if config.constraints is not None or config.strategy == "mcts":
        if config.max_new_tokens < MIN_BUDGET:
            raise ValueError(
                f"constrained decoding needs max_new_tokens >= "
                f"{MIN_BUDGET} to close the recipe grammar "
                f"(got {config.max_new_tokens})")
    if config.strategy == "mcts" and config.mcts_rollouts > max_mcts_rollouts:
        raise ValueError(
            f"mcts_rollouts is capped at {max_mcts_rollouts} "
            f"(got {config.mcts_rollouts})")
    return names, config, bool(payload.get("checklist", False))


def _admission_cost(config: GenerationConfig) -> int:
    """Token-equivalents one request may cost the serving fleet.

    MCTS decodes up to ``mcts_rollouts`` full rollouts plus the
    degraded-fallback decode, so it is charged the whole tree, not one
    decode — otherwise a saturated server would admit a request that
    costs 13x what the gate thinks.
    """
    if config.strategy == "mcts":
        return config.max_new_tokens * (1 + config.mcts_rollouts)
    return config.max_new_tokens


def _parse_retrieve_k(payload: dict, default_k: int,
                      retrieval_enabled: bool) -> int:
    """Validate ``retrieve_k``; raises ValueError (→ HTTP 400).

    ``default_k`` is the server default (``repro serve --retrieve-k``);
    the payload overrides per request, ``0`` opting out explicitly.
    Asking for exemplars on a server with no index is a client error,
    not a silent no-op.
    """
    raw = payload.get("retrieve_k")
    if raw is None:
        return default_k if retrieval_enabled else 0
    if isinstance(raw, bool) or not isinstance(raw, int):
        raise ValueError(f"'retrieve_k' must be an integer, got {raw!r}")
    if raw < 0 or raw > MAX_RETRIEVE_K:
        raise ValueError(
            f"'retrieve_k' must be in [0, {MAX_RETRIEVE_K}] (got {raw})")
    if raw > 0 and not retrieval_enabled:
        raise ValueError(
            "retrieval is not enabled on this server "
            "(start with repro serve --retrieval)")
    return raw


def _parse_deadline(payload: dict,
                    default_ms: Optional[float]) -> Optional[float]:
    """Per-request deadline: ``deadline_ms`` in the payload, else the
    server default (``None`` disables).  Raises ValueError (→ 400) on a
    non-positive or non-numeric value."""
    raw = payload.get("deadline_ms")
    if raw is None:
        return default_ms
    try:
        value = float(raw)
    except (TypeError, ValueError):
        raise ValueError(
            f"'deadline_ms' must be a number, got {raw!r}") from None
    if value <= 0:
        raise ValueError("'deadline_ms' must be > 0")
    return value


def _recipe_payload(recipe) -> dict:
    return {
        "title": recipe.title,
        "ingredients": recipe.ingredients,
        "instructions": recipe.instructions,
        "is_valid": recipe.is_valid,
        "ingredient_coverage": recipe.ingredient_coverage,
        "generation_seconds": recipe.generation_seconds,
    }


def create_backend(pipeline: Ratatouille,
                   catalog: Optional[IngredientCatalog] = None,
                   pairing: Optional[PairingGraph] = None,
                   job_queue: Optional[JobQueue] = None,
                   registry: Optional[MetricsRegistry] = None,
                   tracer: Optional[Tracer] = None,
                   use_engine: bool = True,
                   engine: Optional[InferenceEngine] = None,
                   max_new_tokens_cap: int = MAX_NEW_TOKENS_CAP,
                   resilience: Optional[ResilienceConfig] = None,
                   draft=None,
                   speculative_k: int = 0,
                   replicas: int = 1,
                   affinity_tokens: int = 32,
                   fleet_cache: bool = True,
                   publish_tokens: int = 128,
                   kernels: Optional[str] = None,
                   retrieval_index=None,
                   retrieve_k: int = 0,
                   journal_dir=None,
                   spill_dir=None,
                   max_mcts_rollouts: int = MAX_MCTS_ROLLOUTS) -> App:
    """Build the backend :class:`~repro.webapp.framework.App`.

    ``registry``/``tracer`` are what ``GET /api/metrics`` exposes and
    what the job queue and serving engine report into; they default to
    the process-wide instances.

    By default generation routes through a
    :class:`~repro.serving.InferenceEngine` (continuous batching +
    prefix KV-cache reuse); the engine's outputs are bit-identical to
    the in-process decoder, so this is purely a throughput change.
    Pass ``use_engine=False`` for the plain in-process path, or an
    ``engine`` to share one across apps.  The engine is stored as
    ``app.engine`` so embedding code can stop it.

    ``resilience`` (see ``docs/RESILIENCE.md``) adds the failure
    envelope: request deadlines (``deadline_ms`` in payloads, plus a
    server default → partial result or 504), admission control (503 +
    ``Retry-After`` past the watermark) and engine supervision
    (watchdog restarts; degraded sequential fallback marked
    ``"degraded": true``).  ``None`` — the default — changes nothing.

    ``draft``/``speculative_k`` enable speculative decoding (see
    ``docs/SERVING.md``): ``draft`` is a
    :class:`~repro.models.DraftModel` or a spec string like
    ``"ngram:3"`` (fitted on the pipeline's training corpus via
    :meth:`Ratatouille.build_draft`); ``speculative_k`` is the server
    default draft length per verify step (payload ``speculative_k``
    overrides per request, ``0`` opts out).  Greedy requests stay
    bit-identical to the sequential decoder; sampled requests keep the
    model's distribution via rejection sampling.

    ``replicas > 1`` serves through a :class:`~repro.cluster.Router`
    fleet instead of a single engine (see ``docs/CLUSTER.md``): N
    supervised engine replicas with isolated prefix caches,
    prefix-affinity placement over the first ``affinity_tokens``
    prompt ids, transparent bit-identical failover, and rolling
    drain/swap/readmit via ``app.router``.  The resilience knobs that
    applied to the single supervised engine (restart budget, shed
    watermark) apply per replica; fleet admission sheds only when
    every replica is past watermark.  A pre-built router can also be
    passed as ``engine=``.

    ``fleet_cache`` (default on, with ``replicas > 1``) adds the
    fleet-wide prefix-cache tier: each replica publishes its cached
    prefixes — capped at ``publish_tokens`` deep — into a shared
    :class:`~repro.cluster.FleetCacheIndex`, placement prefers the
    replica holding the longest published match, and diverted requests
    borrow the owner's frozen KV snapshot instead of recomputing
    prefill.  ``GET /api/cluster`` exposes the tier under
    ``cache_tier`` and placement-reason counters under ``placement``.

    ``kernels`` (``"fp32"`` or ``"int8"``, see ``docs/KERNELS.md``)
    routes decoding through the allocation-free inference kernels.
    The weights are frozen read-only and — because every replica
    serves the same model object — the whole fleet shares one weight
    copy.  ``"fp32"`` is bit-identical to the Tensor path; ``"int8"``
    trades a small perplexity delta for a smaller working set.

    ``retrieval_index`` (a :class:`~repro.retrieval.RecipeIndex`, see
    ``docs/RETRIEVAL.md``) enables the retrieval surface:
    ``POST /api/search``, retrieval-conditioned generation
    (``retrieve_k`` exemplars prepended to the prompt; ``retrieve_k``
    here is the server default, payloads override per request), and a
    nearest-corpus-neighbour ``novelty`` score attached to every
    generation response.  A faulted retrieval lookup *degrades* the
    request — un-conditioned generation plus
    ``"retrieval_degraded": true`` — it never fails it.  With
    ``retrieve_k=0`` (the default) generation output is bit-identical
    to a backend built without an index.

    ``journal_dir`` enables the write-ahead job journal (see
    ``docs/DURABILITY.md``): every ``POST /api/generate_async`` is
    fsync'd to disk *before* the 202 is returned, incomplete jobs are
    replayed through the engine on the next start, and completed
    results stay fetchable via ``GET /api/job`` across restarts.  The
    journal also backs ``Idempotency-Key`` deduplication: a retried
    submit with the same key maps to the already-journaled job instead
    of executing twice.

    ``spill_dir`` enables prefix-cache spill: the engine's (or each
    replica's) KV prefix cache is snapshotted on clean stop and
    mmap-reloaded on the next start, so restarts and rolling swaps
    serve warm instead of re-prefilling every prompt.

    Both feed ``app.shutdown_gracefully(deadline_seconds)`` — stop
    admission (503 + ``Retry-After``), drain in-flight jobs under the
    deadline, flush journal and spill, stop the engine — which
    ``repro serve`` runs on SIGTERM/SIGINT.

    ``max_mcts_rollouts`` caps the per-request ``mcts_rollouts`` knob
    (``repro serve --max-mcts-rollouts``); see ``docs/DECODING.md`` for
    the constrained/search-guided decoding surface
    (``constraints`` / ``strategy: "mcts"`` in generation payloads).
    """
    if replicas < 1:
        raise ValueError("replicas must be >= 1")
    if max_mcts_rollouts < 1:
        raise ValueError("max_mcts_rollouts must be >= 1")
    if kernels is not None:
        pipeline.model.enable_kernels(mode=kernels, freeze=True)
    catalog = catalog or default_catalog()
    registry = registry if registry is not None else get_registry()
    tracer = tracer if tracer is not None else get_tracer()
    jobs = job_queue or JobQueue(workers=1, max_pending=16, registry=registry)
    if isinstance(draft, str):
        spec = draft
        order = 3
        if ":" in spec:
            kind, _, suffix = spec.partition(":")
            order = int(suffix)
        else:
            kind = spec
        if kind != "ngram":
            raise ValueError(f"unknown draft spec {draft!r}")
        draft = pipeline.build_draft(order=order)
    if speculative_k < 0 or speculative_k > MAX_SPECULATIVE_K:
        raise ValueError(
            f"speculative_k must be in [0, {MAX_SPECULATIVE_K}]")
    journal = JobJournal(journal_dir) if journal_dir is not None else None
    spill = None
    if spill_dir is not None:
        if replicas > 1:
            spill = FleetCacheSpill(spill_dir, model=pipeline.model)
        else:
            spill = CacheSpill(spill_dir, model=pipeline.model)
    if engine is None and use_engine:
        if replicas > 1:
            def _engine_factory(name: str) -> InferenceEngine:
                return InferenceEngine(pipeline.model, registry=registry,
                                       tracer=tracer, draft=draft, name=name)
            cluster_config = ClusterConfig(
                replicas=replicas,
                affinity_tokens=affinity_tokens,
                fleet_cache=fleet_cache,
                publish_tokens=publish_tokens,
                watermark_tokens=(resilience.shed_watermark_tokens or None
                                  if resilience is not None else None),
                tokens_per_second_hint=(
                    resilience.tokens_per_second_hint
                    if resilience is not None
                    else ClusterConfig.tokens_per_second_hint),
                max_restarts=(resilience.max_restarts
                              if resilience is not None
                              else ClusterConfig.max_restarts),
                restart_backoff_seconds=(
                    resilience.restart_backoff_seconds
                    if resilience is not None
                    else ClusterConfig.restart_backoff_seconds))
            engine = Router(_engine_factory, cluster_config,
                            registry=registry, tracer=tracer, spill=spill)
        elif resilience is not None and resilience.supervise:
            def _factory() -> InferenceEngine:
                return InferenceEngine(pipeline.model, registry=registry,
                                       tracer=tracer, draft=draft)
            fallback = (sequential_fallback(pipeline.model)
                        if resilience.degraded_fallback else None)
            engine = EngineSupervisor(
                _factory,
                max_restarts=resilience.max_restarts,
                backoff_seconds=resilience.restart_backoff_seconds,
                fallback=fallback,
                registry=registry,
                spill=spill)
        else:
            engine = InferenceEngine(pipeline.model, registry=registry,
                                     tracer=tracer, draft=draft)
            if spill is not None:
                try:
                    spill.load_into(engine.prefix_cache)
                except Exception:  # noqa: BLE001 - corrupt spill => cold
                    pass
    supervisor = engine if isinstance(engine, EngineSupervisor) else None
    router = engine if isinstance(engine, Router) else None
    default_deadline_ms = (resilience.default_deadline_ms
                           if resilience is not None else None)
    # With no draft fitted, a server-level speculative_k would silently
    # decode sequentially; zero it so /api/health tells the truth.
    default_speculative_k = speculative_k if draft is not None else 0
    if retrieve_k < 0 or retrieve_k > MAX_RETRIEVE_K:
        raise ValueError(f"retrieve_k must be in [0, {MAX_RETRIEVE_K}]")
    if retrieve_k > 0 and retrieval_index is None:
        raise ValueError("retrieve_k > 0 requires a retrieval_index")
    default_retrieve_k = retrieve_k if retrieval_index is not None else 0
    retrieval_shed = None
    retrieval_degradations = None
    if retrieval_index is not None:
        retrieval_index.set_registry(registry)
        retrieval_shed = registry.counter(
            "retrieval_shed_total",
            help="Search requests shed by admission control")
        retrieval_degradations = registry.counter(
            "retrieval_degraded_total",
            help="Generations that degraded to un-conditioned output "
                 "because a retrieval lookup failed")
    # The router does its own fleet-level admission (shed only when
    # every replica is past watermark) — a single-queue gate in front
    # of it would shed spillable load.
    admission: Optional[AdmissionController] = None
    if (router is None and resilience is not None
            and resilience.shed_watermark_tokens):
        admission = AdmissionController(
            resilience.shed_watermark_tokens,
            tokens_per_second_hint=resilience.tokens_per_second_hint,
            registry=registry)
    app = App(name="ratatouille-backend")
    app.engine = engine
    app.router = router
    app.admission = admission
    app.retrieval_index = retrieval_index
    app.journal = journal
    app.spill = spill

    #: ``Idempotency-Key`` → ``{"job_id", "committed"}``.  A claim is
    #: provisional (``committed=False``) until the submit sticks
    #: (journal append + queue accept); only committed claims dedupe
    #: duplicate requests — a provisional claim can still roll back,
    #: and handing its job id to a duplicate would leave that client
    #: polling a job that never exists.  Seeded from the journal on
    #: replay (those submits stuck by definition).
    idempotency: Dict[str, dict] = {}
    idempotency_lock = threading.Lock()
    #: Completion snapshots restored from the journal — jobs that
    #: finished in a *previous* process but whose results must stay
    #: fetchable via ``GET /api/job``.
    restored: Dict[str, dict] = {}
    lifecycle = {"draining": False, "shutdown": None}

    def _admit(cost: int) -> Optional[Response]:
        """Acquire admission; a Response means "shed, answer with this".

        With a router the fleet-level gate runs inside dispatch; here
        we only *probe* it, so an async job that would queue behind a
        saturated fleet sheds at submit time (503 + Retry-After)
        instead of failing later inside the job worker.

        A draining server (graceful shutdown in progress) refuses all
        new work the same way — 503 + ``Retry-After`` — so clients
        with the standard retry policy land on the replacement process.
        """
        if lifecycle["draining"]:
            return Response.error(
                "server is draining for shutdown", status=503,
                headers={"Retry-After": "1"})
        if router is not None:
            try:
                router.check_admission(cost)
            except OverloadShedError as exc:
                return Response.error(
                    str(exc), status=503,
                    headers={"Retry-After": str(exc.retry_after)})
            return None
        if admission is None:
            return None
        try:
            admission.try_acquire(cost)
        except OverloadShedError as exc:
            return Response.error(
                str(exc), status=503,
                headers={"Retry-After": str(exc.retry_after)})
        return None

    def _release(cost: int) -> None:
        if admission is not None:
            admission.release(cost)

    def _fetch_exemplars(names, count: int):
        """Retrieve RAG exemplar texts; returns ``(texts, degraded)``.

        Any retrieval failure — an injected fault included — degrades
        to un-conditioned generation (``(None, True)``); it never
        propagates, so a broken index cannot fail a generation request.
        """
        if count <= 0 or retrieval_index is None:
            return None, False
        try:
            hits = retrieval_index.search_ingredients(names, k=count)
            return [hit.text for hit in hits], False
        except Exception:  # noqa: BLE001 - degrade, never fail the request
            retrieval_degradations.inc()
            return None, True

    def _generation_payload(recipe, exemplars, retrieval_degraded: bool
                            ) -> dict:
        """Recipe payload plus the retrieval surface (payload-only:
        the novelty score and flags never alter the generation)."""
        payload = _recipe_payload(recipe)
        if retrieval_index is None:
            return payload
        try:
            payload["novelty"] = retrieval_index.novelty(
                recipe.raw_text).to_dict()
        except Exception:  # noqa: BLE001 - degrade, never fail the request
            retrieval_degradations.inc()
            retrieval_degraded = True
        payload["retrieved_k"] = len(exemplars) if exemplars else 0
        if retrieval_degraded:
            payload["retrieval_degraded"] = True
        return payload

    def _engine_submit(state: dict):
        """The decode callable constrained generation rolls out through.

        ``None`` when the backend has no engine (the driver falls back
        to the in-process sequential decoder).  ``state["degraded"]``
        records a supervisor fallback so the payload can surface it.
        """
        if engine is None:
            return None

        def submit(prompt_ids, cfg, processors, submit_deadline_ms):
            if supervisor is not None:
                new_ids, deg = supervisor.generate_ex(
                    prompt_ids, cfg, processors,
                    deadline_ms=submit_deadline_ms)
                if deg:
                    state["degraded"] = True
                return new_ids
            return engine.generate(prompt_ids, cfg, processors,
                                   deadline_ms=submit_deadline_ms)
        return submit

    def _run_constrained(names, config, checklist, deadline_ms,
                         allow_partial: bool, exemplars,
                         retrieval_degraded: bool) -> dict:
        """Grammar/constraint/MCTS decoding through the shared driver."""
        clock = registry.clock
        start = clock.now()
        state = {"degraded": False}
        try:
            prompt_text, new_ids, config, info = run_constrained_generation(
                pipeline, names, config, checklist=checklist,
                exemplars=exemplars, submit=_engine_submit(state),
                catalog=catalog, retrieval_index=retrieval_index,
                registry=registry, deadline_ms=deadline_ms)
        except DeadlineExceededError as exc:
            if not (allow_partial and exc.tokens):
                raise
            # The driver raised before returning the prompt; re-derive
            # it (prepare_prompt is deterministic given the exemplars).
            prompt_text = pipeline.prepare_prompt(
                names, generation=config, checklist=checklist,
                exemplars=exemplars)[0]
            recipe = pipeline.finish_recipe(prompt_text, exc.tokens, names,
                                            elapsed=clock.now() - start)
            payload = _generation_payload(recipe, exemplars,
                                          retrieval_degraded)
            problems = violations(config.constraints, recipe.raw_text,
                                  catalog)
            payload["constraints_satisfied"] = not problems
            payload["partial"] = True
            payload["deadline_ms"] = exc.deadline_ms
            return payload
        recipe = pipeline.finish_recipe(prompt_text, new_ids, names,
                                        elapsed=clock.now() - start)
        payload = _generation_payload(recipe, exemplars, retrieval_degraded)
        payload.update(info)
        if state["degraded"]:
            payload["degraded"] = True
        return payload

    def _run_generation(names, config, checklist, deadline_ms,
                        allow_partial: bool, retrieve_count: int = 0) -> dict:
        """Generate through whatever decode path is configured.

        Returns the JSON payload; deadline expiry becomes either a
        partial recipe (``"partial": true``, when the client opted in
        and tokens exist) or re-raises for the 504 path.
        """
        exemplars, retrieval_degraded = _fetch_exemplars(names,
                                                         retrieve_count)
        if config.constraints is not None or config.strategy == "mcts":
            return _run_constrained(names, config, checklist, deadline_ms,
                                    allow_partial, exemplars,
                                    retrieval_degraded)
        if engine is None:
            if config.speculative_k > 0 and config.draft is None:
                config.draft = draft
            recipe = pipeline.generate(names, generation=config,
                                       checklist=checklist,
                                       exemplars=exemplars)
            return _generation_payload(recipe, exemplars,
                                       retrieval_degraded)
        prompt_text, prompt_ids, config, processors = pipeline.prepare_prompt(
            names, generation=config, checklist=checklist,
            exemplars=exemplars)
        clock = registry.clock
        start = clock.now()
        degraded = False
        try:
            if supervisor is not None:
                new_ids, degraded = supervisor.generate_ex(
                    prompt_ids, config, processors, deadline_ms=deadline_ms)
            else:
                new_ids = engine.generate(prompt_ids, config, processors,
                                          deadline_ms=deadline_ms)
        except DeadlineExceededError as exc:
            if not (allow_partial and exc.tokens):
                raise
            recipe = pipeline.finish_recipe(prompt_text, exc.tokens, names,
                                            elapsed=clock.now() - start)
            payload = _generation_payload(recipe, exemplars,
                                          retrieval_degraded)
            payload["partial"] = True
            payload["deadline_ms"] = exc.deadline_ms
            return payload
        recipe = pipeline.finish_recipe(prompt_text, new_ids, names,
                                        elapsed=clock.now() - start)
        payload = _generation_payload(recipe, exemplars, retrieval_degraded)
        if degraded:
            payload["degraded"] = True
        return payload

    def _fleet_health() -> dict:
        """Aggregate fleet state; a single engine is a fleet of one."""
        if router is not None:
            return router.fleet_health()
        if engine is None:
            # In-process decoding has no serving thread to die.
            return {"replicas": 1, "healthy": 1, "draining": 0,
                    "status": "ok"}
        if supervisor is not None:
            state = supervisor.state
            status = {"serving": "ok", "restarting": "degraded"}.get(
                state, "dead")
            return {"replicas": 1,
                    "healthy": int(state == "serving"),
                    "draining": 0, "status": status}
        alive = engine.running and engine.crashed is None
        return {"replicas": 1, "healthy": int(alive), "draining": 0,
                "status": "ok" if alive else "dead"}

    @app.route("/api/health")
    def health(request: Request) -> Response:
        fleet = _fleet_health()
        return Response.json({
            "status": ("draining" if lifecycle["draining"]
                       else fleet["status"]),
            "lifecycle": ("draining" if lifecycle["draining"]
                          else "serving"),
            "replicas": fleet["replicas"],
            "healthy": fleet["healthy"],
            "draining": fleet["draining"],
            "model": type(pipeline.model).__name__,
            "parameters": pipeline.model.num_parameters(),
            "vocab_size": pipeline.tokenizer.vocab_size,
            "speculative": {
                "draft": type(draft).__name__ if draft is not None else None,
                "default_k": default_speculative_k,
            },
            "retrieval": {
                "enabled": retrieval_index is not None,
                "documents": (len(retrieval_index)
                              if retrieval_index is not None else 0),
                "default_k": default_retrieve_k,
            },
            "durability": {
                "journal": journal is not None,
                "spill": spill is not None,
            },
            "decoding": {
                "strategies": ["greedy", "sample", "beam", "mcts"],
                "max_mcts_rollouts": max_mcts_rollouts,
                "constraints": ["include_ingredients",
                                "exclude_ingredients", "diet",
                                "max_calories"],
            },
        })

    @app.route("/api/ingredients")
    def ingredients(request: Request) -> Response:
        category = request.query.get("category", [None])[0]
        if category:
            items = catalog.by_category(category)
        else:
            items = catalog.all()
        limit = int(request.query.get("limit", ["100"])[0])
        return Response.json({
            "ingredients": [
                {"name": item.name, "category": item.category}
                for item in items[:limit]
            ],
            "total": len(items),
        })

    @app.route("/api/generate", methods=("POST",))
    def generate_recipe(request: Request) -> Response:
        payload = request.json()
        names, config, checklist = _parse_generation_request(
            payload, max_new_tokens_cap, default_speculative_k,
            catalog=catalog, max_mcts_rollouts=max_mcts_rollouts)
        deadline_ms = _parse_deadline(payload, default_deadline_ms)
        retrieve_count = _parse_retrieve_k(payload, default_retrieve_k,
                                           retrieval_index is not None)
        allow_partial = bool(payload.get("partial", False))
        cost = _admission_cost(config)
        shed = _admit(cost)
        if shed is not None:
            return shed
        try:
            body = _run_generation(names, config, checklist, deadline_ms,
                                   allow_partial, retrieve_count)
        except DeadlineExceededError as exc:
            return Response.error(str(exc), status=504)
        except EngineQueueFullError as exc:
            return Response.error(str(exc), status=429)
        except OverloadShedError as exc:
            return Response.error(
                str(exc), status=503,
                headers={"Retry-After": str(exc.retry_after)})
        except EngineCrashedError as exc:
            # The serving replica died mid-request.  502, not 503: the
            # response is deterministic, so an idempotent resend (the
            # client RetryPolicy does this) returns the identical
            # recipe — usually from a healthy replica.
            return Response.error(str(exc), status=502)
        except (EngineStoppedError, EngineUnavailableError,
                NoReplicaAvailableError) as exc:
            return Response.error(str(exc), status=503)
        finally:
            _release(cost)
        return Response.json(body)

    def _forget_idempotency(key: Optional[str], job_id: str) -> None:
        """Undo a provisional key claim when the submit did not stick."""
        if not key:
            return
        with idempotency_lock:
            claim = idempotency.get(key)
            if claim is not None and claim["job_id"] == job_id:
                del idempotency[key]

    def _commit_idempotency(key: Optional[str], job_id: str) -> None:
        """Publish the key → job mapping once the submit stuck."""
        if not key:
            return
        with idempotency_lock:
            claim = idempotency.get(key)
            if claim is not None and claim["job_id"] == job_id:
                claim["committed"] = True

    def _job_status_of(job_id: str) -> str:
        try:
            return jobs.get(job_id).status.value
        except KeyError:
            snap = restored.get(job_id)
            return snap["status"] if snap is not None else "pending"

    def _journal_completion(job_id: str, status: str, result=None,
                            error: Optional[str] = None) -> None:
        """Best-effort completion record; a dead disk must not take the
        job's actual result down with it (replay just re-executes)."""
        if journal is None:
            return
        try:
            journal.append_completed(job_id, status, result=result,
                                     error=error)
            journal.maybe_rotate()
        except Exception:  # noqa: BLE001
            pass

    def _make_work(job_id, names, config, checklist, deadline_ms,
                   allow_partial, retrieve_count, cost, admitted):
        """Build the queued callable for one async generation.

        Shared by the live submit path (``admitted=True`` — the
        admission cost is released when the job resolves, not when it
        is queued: queued-but-unstarted jobs are exactly the backlog
        admission control must count) and journal replay
        (``admitted=False`` — the original process's admission died
        with it).
        """
        def work():
            try:
                result = _run_generation(names, config, checklist,
                                         deadline_ms, allow_partial,
                                         retrieve_count)
            except Exception as exc:
                _journal_completion(job_id, "failed",
                                    error=f"{type(exc).__name__}: {exc}")
                raise
            finally:
                if admitted:
                    _release(cost)
            _journal_completion(job_id, "done", result=result)
            return result
        return work

    @app.route("/api/generate_async", methods=("POST",))
    def generate_async(request: Request) -> Response:
        payload = request.json()
        idem_key = request.headers.get("idempotency-key")
        if idem_key is None and payload.get("idempotency_key") is not None:
            idem_key = str(payload["idempotency_key"])
        names, config, checklist = _parse_generation_request(
            payload, max_new_tokens_cap, default_speculative_k,
            catalog=catalog, max_mcts_rollouts=max_mcts_rollouts)
        deadline_ms = _parse_deadline(payload, default_deadline_ms)
        retrieve_count = _parse_retrieve_k(payload, default_retrieve_k,
                                           retrieval_index is not None)
        allow_partial = bool(payload.get("partial", False))
        cost = _admission_cost(config)
        # The job id is minted before the journal append so journal and
        # queue agree; the idempotency claim is provisional until the
        # submit sticks (journal failure / full queue releases it).
        job_id = uuid.uuid4().hex[:12]
        if idem_key:
            with idempotency_lock:
                claim = idempotency.get(idem_key)
                if claim is None:
                    idempotency[idem_key] = {"job_id": job_id,
                                             "committed": False}
                else:
                    existing = claim["job_id"]
                    committed = claim["committed"]
            if claim is not None:
                if not committed:
                    # The original submit is still in flight and may
                    # yet roll back (journal error, full queue); its
                    # job id must not leak to a duplicate, so the
                    # duplicate retries instead.
                    return Response.error(
                        "a submit with this Idempotency-Key is in "
                        "flight; retry", status=503,
                        headers={"Retry-After": "1"})
                # A retry of a submit we already accepted: point the
                # client at the original job instead of running twice.
                return Response.json(
                    {"job_id": existing,
                     "status": _job_status_of(existing),
                     "deduplicated": True}, status=202)
        shed = _admit(cost)
        if shed is not None:
            _forget_idempotency(idem_key, job_id)
            return shed
        if journal is not None:
            try:
                journal.append_accepted(job_id, payload,
                                        idempotency_key=idem_key)
            except JournalError as exc:
                # Cannot make the acknowledgement durable => refuse the
                # work *before* the 202, never acknowledge-then-lose.
                _release(cost)
                _forget_idempotency(idem_key, job_id)
                return Response.error(
                    f"journal unavailable: {exc}", status=503,
                    headers={"Retry-After": "1"})
        work = _make_work(job_id, names, config, checklist, deadline_ms,
                          allow_partial, retrieve_count, cost, admitted=True)
        try:
            jobs.submit(work, job_id=job_id)
        except (QueueFullError, RuntimeError, ValueError) as exc:
            _release(cost)
            _forget_idempotency(idem_key, job_id)
            # Journaled but never queued: a "rejected" completion stops
            # replay from resurrecting work the client was refused.
            _journal_completion(job_id, "rejected", error=str(exc))
            status = 429 if isinstance(exc, QueueFullError) else 503
            return Response.error(str(exc), status=status)
        _commit_idempotency(idem_key, job_id)
        return Response.json({"job_id": job_id, "status": "pending"},
                             status=202)

    @app.route("/api/generate_stream", methods=("POST",))
    def generate_stream(request: Request) -> Response:
        if engine is None:
            return Response.error(
                "streaming requires the serving engine "
                "(backend started with use_engine=False)", status=503)
        payload = request.json()
        names, config, checklist = _parse_generation_request(
            payload, max_new_tokens_cap, default_speculative_k,
            catalog=catalog, max_mcts_rollouts=max_mcts_rollouts)
        deadline_ms = _parse_deadline(payload, default_deadline_ms)
        retrieve_count = _parse_retrieve_k(payload, default_retrieve_k,
                                           retrieval_index is not None)
        if config.strategy == "beam":
            return Response.error(
                "beam search cannot stream; use /api/generate")
        exemplars, retrieval_degraded = _fetch_exemplars(names,
                                                         retrieve_count)
        clock = registry.clock
        start = clock.now()
        cost = _admission_cost(config)
        if config.strategy == "mcts":
            # A tree search has no token stream until the search picks a
            # winner; run it to completion, then replay the winning
            # tokens as events so SSE clients keep one wire format.
            shed = _admit(cost)
            if shed is not None:
                return shed
            state = {"degraded": False}

            def mcts_events():
                try:
                    try:
                        prompt_text, new_ids, cfg, info = (
                            run_constrained_generation(
                                pipeline, names, config,
                                checklist=checklist, exemplars=exemplars,
                                submit=_engine_submit(state),
                                catalog=catalog,
                                retrieval_index=retrieval_index,
                                registry=registry,
                                deadline_ms=deadline_ms))
                        recipe = pipeline.finish_recipe(
                            prompt_text, new_ids, names,
                            elapsed=clock.now() - start)
                    except DeadlineExceededError as exc:
                        yield {"error": str(exc),
                               "deadline_exceeded": True,
                               "tokens_emitted": 0}
                        return
                    except Exception as exc:  # noqa: BLE001 - headers sent
                        yield {"error": str(exc)}
                        return
                    for token in new_ids:
                        yield {"token": int(token),
                               "text": pipeline.tokenizer.decode(
                                   [int(token)])}
                    body = _generation_payload(recipe, exemplars,
                                               retrieval_degraded)
                    body.update(info)
                    if state["degraded"]:
                        body["degraded"] = True
                    yield {"done": True, "recipe": body}
                finally:
                    _release(cost)

            return Response.event_stream(mcts_events())
        prompt_text, prompt_ids, config, processors = pipeline.prepare_prompt(
            names, generation=config, checklist=checklist,
            exemplars=exemplars)
        if config.constraints is not None:
            # Constraint decoding *can* stream: the grammar + phrase
            # masks ride the engine's logits path token by token (the
            # text-predicate retry of the non-streaming path is not
            # available once tokens are on the wire, so the final event
            # reports ``constraints_satisfied`` honestly instead).
            processors = build_constrained_processors(
                pipeline.tokenizer, config, config.constraints,
                catalog=catalog, registry=registry,
                user_processors=processors)
        shed = _admit(cost)
        if shed is not None:
            return shed
        try:
            handle = engine.submit(prompt_ids, config, processors,
                                   deadline_ms=deadline_ms)
        except EngineQueueFullError as exc:
            _release(cost)
            return Response.error(str(exc), status=429)
        except OverloadShedError as exc:
            _release(cost)
            return Response.error(
                str(exc), status=503,
                headers={"Retry-After": str(exc.retry_after)})
        except EngineCrashedError as exc:
            _release(cost)
            return Response.error(str(exc), status=502)
        except (EngineStoppedError, EngineUnavailableError,
                NoReplicaAvailableError) as exc:
            _release(cost)
            return Response.error(str(exc), status=503)

        def events():
            emitted = 0
            try:
                try:
                    for token in handle.tokens():
                        emitted += 1
                        yield {"token": int(token),
                               "text": pipeline.tokenizer.decode([int(token)])}
                    recipe = pipeline.finish_recipe(
                        prompt_text, handle.result(), names,
                        elapsed=clock.now() - start)
                except DeadlineExceededError as exc:
                    # headers already sent; the deadline becomes a
                    # terminal event instead of a 504 status.
                    yield {"error": str(exc), "deadline_exceeded": True,
                           "tokens_emitted": emitted}
                    return
                except Exception as exc:  # noqa: BLE001 - headers already sent
                    yield {"error": str(exc)}
                    return
                body = _generation_payload(recipe, exemplars,
                                           retrieval_degraded)
                if config.constraints is not None:
                    problems = violations(config.constraints,
                                          recipe.raw_text, catalog)
                    body["constraints_satisfied"] = not problems
                    if problems:
                        body["constraint_violations"] = problems
                yield {"done": True, "recipe": body}
            finally:
                # Runs on normal completion AND when the framework
                # closes an abandoned stream (client disconnected):
                # cancel so the engine does not keep decoding to
                # max_new_tokens in a batch slot nobody is reading,
                # and return the admitted work to the gate.
                _release(cost)
                if not handle.done:
                    handle.cancel()

        return Response.event_stream(events())

    @app.route("/api/search", methods=("POST",))
    def search(request: Request) -> Response:
        if retrieval_index is None:
            return Response.error(
                "retrieval is not enabled on this server "
                "(start with repro serve --retrieval)", status=503)
        payload = request.json()
        query = payload.get("query")
        selected = payload.get("ingredients")
        # Validation raises ValueError → the framework's 400 path, the
        # same contract every other endpoint uses.
        if query is not None:
            if not isinstance(query, str) or not query.strip():
                raise ValueError("'query' must be a non-empty string")
            if len(query) > MAX_QUERY_CHARS:
                raise ValueError(
                    f"'query' is capped at {MAX_QUERY_CHARS} characters "
                    f"(got {len(query)})")
        elif selected is not None:
            if not isinstance(selected, list) or not selected:
                raise ValueError("'ingredients' must be a non-empty list")
            if len(selected) > MAX_INGREDIENTS:
                raise ValueError(
                    f"at most {MAX_INGREDIENTS} ingredients supported")
            query = query_from_ingredients([str(name) for name in selected])
            if not query:
                raise ValueError("'ingredients' normalized to an empty query")
        else:
            raise ValueError("provide 'query' or 'ingredients'")
        k = payload.get("k", 5)
        if isinstance(k, bool) or not isinstance(k, int):
            raise ValueError(f"'k' must be an integer, got {k!r}")
        if not 1 <= k <= MAX_SEARCH_K:
            raise ValueError(f"'k' must be in [1, {MAX_SEARCH_K}] (got {k})")
        exact = bool(payload.get("exact", False))
        include_text = bool(payload.get("include_text", False))
        shed = _admit(SEARCH_ADMISSION_COST)
        if shed is not None:
            retrieval_shed.inc()
            return shed
        try:
            hits = retrieval_index.search(query, k=k, exact=exact)
        except Exception as exc:  # noqa: BLE001 - incl. injected faults
            # A search has nothing to degrade *to* — unlike generation —
            # so a faulted lookup is an explicit 503, never a hang/500.
            return Response.error(
                f"retrieval unavailable: {exc}", status=503)
        finally:
            _release(SEARCH_ADMISSION_COST)
        return Response.json({
            "hits": [hit.to_dict(include_text=include_text)
                     for hit in hits],
            "k": k,
            "mode": "exact" if exact else "ann",
            "documents": len(retrieval_index),
        })

    @app.route("/api/retrieval")
    def retrieval_stats(request: Request) -> Response:
        if retrieval_index is None:
            return Response.json({"enabled": False})
        return Response.json({
            "enabled": True,
            "default_retrieve_k": default_retrieve_k,
            **retrieval_index.stats(),
        })

    @app.route("/api/engine")
    def engine_stats(request: Request) -> Response:
        if engine is None:
            return Response.json({"enabled": False})
        return Response.json({"enabled": True, **engine.stats()})

    @app.route("/api/cluster")
    def cluster_stats(request: Request) -> Response:
        if router is None:
            return Response.json({"enabled": False})
        return Response.json({"enabled": True, **router.stats()})

    @app.route("/api/resilience")
    def resilience_stats(request: Request) -> Response:
        payload = {
            "enabled": resilience is not None,
            "default_deadline_ms": default_deadline_ms,
            "admission": admission.stats() if admission is not None else None,
            "supervisor": (engine.stats()["supervisor"]
                           if supervisor is not None else None),
        }
        return Response.json(payload)

    @app.route("/api/job")
    def job_status(request: Request) -> Response:
        job_id = request.query.get("id", [None])[0]
        if not job_id:
            return Response.error("missing 'id' query parameter")
        try:
            job = jobs.get(job_id)
        except KeyError:
            # Completed in a previous process: the journal restored the
            # result so a client that submitted before the restart can
            # still fetch it.
            snap = restored.get(job_id)
            if snap is not None:
                return Response.json(snap)
            return Response.error(f"unknown job {job_id}", status=404)
        return Response.json(job.snapshot())

    @app.route("/api/metrics")
    def metrics(request: Request) -> Response:
        fmt = request.query.get("format", ["json"])[0]
        if fmt == "text":
            return Response.text(render_text(registry))
        if fmt != "json":
            return Response.error(f"unknown format {fmt!r}; use json or text")
        include_trace = request.query.get("trace", ["0"])[0] in ("1", "true")
        return Response.json(
            render_json(registry, tracer if include_trace else None))

    @app.route("/api/suggest", methods=("POST",))
    def suggest(request: Request) -> Response:
        nonlocal pairing
        payload = request.json()
        selected = payload.get("ingredients")
        if not isinstance(selected, list) or not selected:
            return Response.error("'ingredients' must be a non-empty list")
        if pairing is None:
            pairing = PairingGraph(catalog)
        suggestions = pairing.suggest([str(s) for s in selected],
                                      limit=int(payload.get("limit", 5)))
        return Response.json({
            "suggestions": [
                {"name": name, "score": round(score, 4)}
                for name, score in suggestions
            ],
        })

    # ------------------------------------------------------------------
    # Journal replay: resurrect the previous process's state.
    # ------------------------------------------------------------------
    def _replay_journal() -> dict:
        """Fold the journal into live state; re-submit incomplete jobs.

        Completed jobs become ``restored`` snapshots (results stay
        fetchable); accepted-but-incomplete jobs re-enter the queue in
        acceptance order and execute exactly once *here* — engine
        output is deterministic, so even a job that did run before the
        crash (but lost its completion record) re-executes to the
        identical result.
        """
        state = journal.replay()
        with idempotency_lock:
            for key, jid in state.idempotency.items():
                idempotency.setdefault(key, {"job_id": jid,
                                             "committed": True})
        for jid, record in state.completed.items():
            status = record.get("status", "done")
            if status == "rejected":
                # Refused with a 4xx/5xx before the 202 — there is no
                # acknowledged job to restore.
                continue
            snap = {"job_id": jid, "status": status, "restored": True}
            if record.get("result") is not None:
                snap["result"] = record["result"]
            if record.get("error") is not None:
                snap["error"] = record["error"]
            restored[jid] = snap
        replayed = failed = 0
        for jid, record in state.incomplete():
            payload = record.get("request") or {}
            try:
                names, config, checklist = _parse_generation_request(
                    payload, max_new_tokens_cap, default_speculative_k,
                    catalog=catalog, max_mcts_rollouts=max_mcts_rollouts)
                deadline_ms = _parse_deadline(payload, default_deadline_ms)
                retrieve_count = _parse_retrieve_k(
                    payload, default_retrieve_k, retrieval_index is not None)
            except ValueError as exc:
                # Journaled under a different server config (cap,
                # retrieval) — resolve it rather than crash-loop on it.
                error = f"replay rejected: {exc}"
                _journal_completion(jid, "failed", error=error)
                restored[jid] = {"job_id": jid, "status": "failed",
                                 "error": error, "restored": True}
                failed += 1
                continue
            work = _make_work(jid, names, config, checklist, deadline_ms,
                              bool(payload.get("partial", False)),
                              retrieve_count, cost=0, admitted=False)
            try:
                # block=True: a backlog larger than max_pending must
                # re-enqueue completely, not lose its tail to a 429.
                jobs.submit(work, job_id=jid, block=True)
                replayed += 1
            except Exception as exc:  # noqa: BLE001
                error = f"replay submit failed: {type(exc).__name__}: {exc}"
                _journal_completion(jid, "failed", error=error)
                restored[jid] = {"job_id": jid, "status": "failed",
                                 "error": error, "restored": True}
                failed += 1
        return {"restored": len(restored), "replayed": replayed,
                "replay_failed": failed,
                "torn_records": state.torn_records}

    app.replay_summary = _replay_journal() if journal is not None else None

    # ------------------------------------------------------------------
    # Graceful shutdown
    # ------------------------------------------------------------------
    def begin_drain() -> None:
        """Stop admitting new work; in-flight jobs keep running."""
        lifecycle["draining"] = True

    def shutdown_gracefully(deadline_seconds: float = 10.0) -> dict:
        """SIGTERM path: drain, flush durable state, stop the engine.

        1. stop admission — every new request sheds with 503 +
           ``Retry-After`` while the drain runs;
        2. wait (up to ``deadline_seconds``) for queued + running jobs;
           leftovers are failed with the named shutdown error — their
           journal records stay incomplete, so the *next* process
           replays them;
        3. spill the prefix cache(s) — supervisors and routers do this
           inside their own ``stop()``, a bare engine is spilled here;
        4. compact + close the journal and stop the engine.

        Idempotent: a second call returns the first call's summary.
        """
        if lifecycle["shutdown"] is not None:
            return lifecycle["shutdown"]
        lifecycle["draining"] = True
        drained = jobs.wait_idle(timeout=deadline_seconds)
        leftover = jobs.unfinished
        jobs.shutdown()
        spilled = False
        if engine is not None:
            if supervisor is None and router is None:
                if spill is not None:
                    try:
                        spill.save(engine.prefix_cache)
                        spilled = True
                    except Exception:  # noqa: BLE001 - next start is cold
                        pass
                engine.stop()
            else:
                # Supervisor/router stop() spills each serving engine's
                # cache itself (and skips crashed ones); it records the
                # real outcome so the summary never claims a warm
                # snapshot that was not actually written.
                engine.stop()
                spilled = getattr(engine, "last_spill_saved", None) is True
        journal_stats = None
        if journal is not None:
            try:
                journal.rotate()
            except Exception:  # noqa: BLE001 - closing anyway
                pass
            journal_stats = journal.stats()
            journal.close()
        summary = {"drained": drained, "jobs_abandoned": leftover,
                   "spilled": spilled, "journal": journal_stats}
        lifecycle["shutdown"] = summary
        return summary

    app.begin_drain = begin_drain
    app.shutdown_gracefully = shutdown_gracefully

    return app
