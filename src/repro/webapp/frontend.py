"""The frontend microservice: the ingredient-picker page (Fig. 4).

The paper's frontend is a ReactJS bundle served separately from the
Flask backend.  We reproduce the architecture — a *static* service on
its own port that talks to the backend purely over its JSON API — with
a self-contained HTML page (vanilla JS standing in for React).
"""

from __future__ import annotations

from .framework import App, Request, Response

_PAGE_TEMPLATE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>Ratatouille — Novel Recipe Generation</title>
<style>
  body {{ font-family: sans-serif; max-width: 760px; margin: 2rem auto; }}
  h1 {{ color: #c0392b; }}
  #ingredients button {{ margin: 2px; }}
  #selected {{ min-height: 2rem; border: 1px dashed #aaa; padding: .5rem; }}
  #recipe {{ white-space: pre-wrap; background: #f8f8f8; padding: 1rem; }}
</style>
</head>
<body>
<h1>Ratatouille</h1>
<p>Pick ingredients, then generate a novel recipe.</p>
<div id="selected"></div>
<div id="ingredients">loading ingredient catalog…</div>
<button id="generate">Generate recipe</button>
<div id="recipe"></div>
<script>
const BACKEND = "{backend_url}";
const selected = [];
function renderSelected() {{
  document.getElementById("selected").textContent =
    selected.length ? selected.join(", ") : "(nothing selected)";
}}
fetch(BACKEND + "/api/ingredients?limit=60")
  .then(r => r.json())
  .then(data => {{
    const box = document.getElementById("ingredients");
    box.textContent = "";
    data.ingredients.forEach(item => {{
      const b = document.createElement("button");
      b.textContent = item.name;
      b.onclick = () => {{ selected.push(item.name); renderSelected(); }};
      box.appendChild(b);
    }});
  }});
document.getElementById("generate").onclick = () => {{
  fetch(BACKEND + "/api/generate", {{
    method: "POST",
    headers: {{"Content-Type": "application/json"}},
    body: JSON.stringify({{ingredients: selected}}),
  }})
    .then(r => r.json())
    .then(data => {{
      const out = document.getElementById("recipe");
      if (data.error) {{ out.textContent = "Error: " + data.error; return; }}
      out.textContent = data.title + "\\n\\nIngredients:\\n" +
        data.ingredients.map(i => "  - " + i).join("\\n") +
        "\\n\\nInstructions:\\n" +
        data.instructions.map((s, n) => "  " + (n + 1) + ". " + s).join("\\n");
    }});
}};
renderSelected();
</script>
</body>
</html>
"""


def render_page(backend_url: str) -> str:
    """The ingredient-picker page wired to ``backend_url``."""
    return _PAGE_TEMPLATE.format(backend_url=backend_url.rstrip("/"))


def create_frontend(backend_url: str) -> App:
    """Build the static frontend :class:`~repro.webapp.framework.App`."""
    app = App(name="ratatouille-frontend")
    page = render_page(backend_url)

    @app.route("/")
    def index(request: Request) -> Response:
        return Response.html(page)

    @app.route("/health")
    def health(request: Request) -> Response:
        return Response.json({"status": "ok", "backend": backend_url})

    return app
