"""Service entry point: ``python -m repro.webapp.serve backend|frontend``.

This is the command the deployment Dockerfiles run.  The backend
serves a trained checkpoint (or trains a small model on the fly when
none is given — useful for demos); the frontend serves the picker page
wired to a backend URL.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..core import PipelineConfig, Ratatouille
from ..resilience import ResilienceConfig
from ..training import TrainingConfig
from .backend import create_backend
from .framework import Server
from .frontend import create_frontend


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.webapp.serve",
        description="Run a Ratatouille microservice.")
    sub = parser.add_subparsers(dest="service", required=True)

    backend = sub.add_parser("backend", help="the JSON generation API")
    backend.add_argument("--port", type=int, default=8000,
                         help="listen port (0 = pick a free one)")
    backend.add_argument("--host", default="127.0.0.1")
    backend.add_argument("--checkpoint", default=None,
                         help="checkpoint directory from Ratatouille.save()")
    backend.add_argument("--train-recipes", type=int, default=120,
                         help="corpus size when training on the fly")
    backend.add_argument("--train-steps", type=int, default=200,
                         help="training steps when no checkpoint is given")
    backend.add_argument("--engine", action=argparse.BooleanOptionalAction,
                         default=True,
                         help="route generation through the continuous-"
                              "batching serving engine (--no-engine for the "
                              "in-process decoder)")
    backend.add_argument("--deadline-ms", type=float, default=None,
                         help="default per-request latency budget; expired "
                              "requests get a partial result or 504")
    backend.add_argument("--shed-watermark", type=int, default=None,
                         help="admission-control high-water mark in queued "
                              "decode tokens; beyond it requests shed with "
                              "503 + Retry-After")
    backend.add_argument("--supervise", action=argparse.BooleanOptionalAction,
                         default=None,
                         help="wrap the engine in a restarting watchdog "
                              "(defaults on when any resilience flag is set)")
    backend.add_argument("--max-restarts", type=int, default=3,
                         help="engine restart budget for the supervisor")
    backend.add_argument("--degraded-fallback",
                         action=argparse.BooleanOptionalAction, default=False,
                         help="serve sequential (slow, marked degraded) "
                              "responses while the engine is down")
    backend.add_argument("--speculative",
                         action=argparse.BooleanOptionalAction, default=False,
                         help="enable speculative decoding: an n-gram draft "
                              "fitted on the training corpus proposes tokens "
                              "the model verifies in one batched forward")
    backend.add_argument("--speculative-k", type=int, default=4,
                         help="draft tokens per verify step (with "
                              "--speculative; payload speculative_k "
                              "overrides per request)")
    backend.add_argument("--draft-order", type=int, default=3,
                         help="n-gram order of the speculative draft model")
    backend.add_argument("--kernels", choices=["off", "fp32", "int8"],
                         default="off",
                         help="inference kernel mode: preallocated "
                              "buffer-reusing decode path with frozen "
                              "shared weights (fp32 is bit-identical; "
                              "int8 quantizes the GEMM weights)")
    backend.add_argument("--replicas", type=int, default=1,
                         help="serve through a fleet of N supervised engine "
                              "replicas behind the prefix-affinity router "
                              "(1 = single engine; see docs/CLUSTER.md)")
    backend.add_argument("--affinity-tokens", type=int, default=32,
                         help="leading prompt tokens hashed for replica "
                              "placement (with --replicas > 1)")
    backend.add_argument("--fleet-cache",
                         action=argparse.BooleanOptionalAction, default=True,
                         help="fleet-wide prefix-cache tier: cache-aware "
                              "placement over published prefixes plus "
                              "cross-replica KV borrowing (with "
                              "--replicas > 1; see docs/CLUSTER.md)")
    backend.add_argument("--publish-tokens", type=int, default=128,
                         help="depth cap on prefixes replicas publish to "
                              "the fleet cache index (deeper entries stay "
                              "local-only)")
    backend.add_argument("--retrieval",
                         action=argparse.BooleanOptionalAction, default=False,
                         help="build (or load, with --index-dir) the "
                              "semantic recipe index: /api/search, RAG-"
                              "conditioned generation and novelty scoring "
                              "(see docs/RETRIEVAL.md)")
    backend.add_argument("--retrieve-k", type=int, default=0,
                         help="server-default retrieved exemplars prepended "
                              "to each generation prompt (payload "
                              "retrieve_k overrides; 0 = search/novelty "
                              "only)")
    backend.add_argument("--index-dir", default=None,
                         help="persisted index directory: loaded (mmap) "
                              "when complete, else built and saved there "
                              "so the next restart is warm")
    backend.add_argument("--journal-dir", default=None,
                         help="write-ahead job journal directory: async "
                              "jobs are fsync'd before the 202 and "
                              "replayed on restart (docs/DURABILITY.md)")
    backend.add_argument("--spill-dir", default=None,
                         help="prefix-cache spill directory: the KV cache "
                              "is snapshotted on clean shutdown and "
                              "mmap-reloaded on the next start")
    backend.add_argument("--max-mcts-rollouts", type=int, default=None,
                         help="cap on per-request mcts_rollouts for "
                              "strategy=mcts search decoding; admission "
                              "charges max_new_tokens * (1 + rollouts) "
                              "(docs/DECODING.md)")
    backend.add_argument("--drain-deadline", type=float, default=10.0,
                         help="graceful-shutdown budget in seconds: "
                              "SIGTERM stops admission, waits this long "
                              "for in-flight jobs, then flushes journal "
                              "and cache spill and exits 0")

    frontend = sub.add_parser("frontend", help="the static picker UI")
    frontend.add_argument("--port", type=int, default=8080)
    frontend.add_argument("--host", default="127.0.0.1")
    frontend.add_argument("--backend-url", default="http://127.0.0.1:8000",
                          help="where the generation API lives")
    return parser


def _load_or_build_index(pipeline: Ratatouille,
                         index_dir: Optional[str]):
    """The warm-restart path for ``--retrieval``.

    A complete ``--index-dir`` is loaded memory-mapped (milliseconds);
    otherwise the index is built from the pipeline's training corpus
    and, when a directory was named, saved there so the *next* restart
    is warm.
    """
    from ..retrieval import RecipeIndex, exists_on_disk

    if index_dir and exists_on_disk(index_dir):
        print(f"loading retrieval index from {index_dir} (mmap)",
              file=sys.stderr)
        return RecipeIndex.load(index_dir)
    print("building retrieval index over the training corpus",
          file=sys.stderr)
    index = pipeline.build_retrieval_index()
    if index_dir:
        index.save(index_dir)
        print(f"saved retrieval index to {index_dir}", file=sys.stderr)
    return index


def build_server(argv: List[str]) -> Server:
    """Construct (but do not block on) the requested service.

    Separated from :func:`main` so tests and embedding code can start
    and stop the service programmatically.
    """
    args = build_parser().parse_args(argv)
    if args.service == "backend":
        if args.checkpoint:
            pipeline = Ratatouille.load(args.checkpoint)
        else:
            print(f"no --checkpoint given; training a demo model "
                  f"({args.train_recipes} recipes, {args.train_steps} steps)",
                  file=sys.stderr)
            config = PipelineConfig(
                model_name="distilgpt2",
                training=TrainingConfig(max_steps=args.train_steps,
                                        batch_size=8, eval_every=10**9))
            pipeline = Ratatouille.quickstart(
                model_name="distilgpt2", num_recipes=args.train_recipes,
                seed=0, config=config)
        resilience = None
        wants_resilience = (args.deadline_ms is not None
                            or args.shed_watermark is not None
                            or args.supervise
                            or args.degraded_fallback)
        if wants_resilience:
            supervise = args.supervise
            if supervise is None:
                supervise = args.engine  # default on with the engine
            resilience = ResilienceConfig(
                default_deadline_ms=args.deadline_ms,
                shed_watermark_tokens=args.shed_watermark,
                supervise=bool(supervise and args.engine),
                max_restarts=args.max_restarts,
                degraded_fallback=args.degraded_fallback)
        draft = None
        speculative_k = 0
        if args.speculative:
            print(f"fitting ngram:{args.draft_order} speculative draft on "
                  f"the training corpus", file=sys.stderr)
            draft = pipeline.build_draft(order=args.draft_order)
            speculative_k = args.speculative_k
        if args.replicas > 1 and not args.engine:
            raise SystemExit("--replicas requires the serving engine "
                             "(drop --no-engine)")
        retrieval_index = None
        if args.retrieval or args.retrieve_k > 0:
            retrieval_index = _load_or_build_index(pipeline, args.index_dir)
        app = create_backend(pipeline, use_engine=args.engine,
                             resilience=resilience, draft=draft,
                             speculative_k=speculative_k,
                             replicas=args.replicas,
                             affinity_tokens=args.affinity_tokens,
                             fleet_cache=args.fleet_cache,
                             publish_tokens=args.publish_tokens,
                             kernels=(None if args.kernels == "off"
                                      else args.kernels),
                             retrieval_index=retrieval_index,
                             retrieve_k=args.retrieve_k,
                             journal_dir=args.journal_dir,
                             spill_dir=args.spill_dir,
                             **({"max_mcts_rollouts": args.max_mcts_rollouts}
                                if args.max_mcts_rollouts is not None
                                else {}))
        app.drain_deadline = args.drain_deadline
    else:
        app = create_frontend(args.backend_url)
    return Server(app, host=args.host, port=args.port)


def run_until_signalled(server: Server) -> int:
    """Serve until SIGTERM/SIGINT, then shut down gracefully; returns 0.

    The graceful path (``docs/DURABILITY.md``): stop admission (new
    requests shed 503 + ``Retry-After``), drain in-flight jobs under
    ``--drain-deadline``, spill the prefix cache, compact + close the
    journal, stop the engine, exit 0 — so an orchestrator's ordinary
    ``SIGTERM; wait; SIGKILL`` rollout never loses acknowledged work
    and never trips the kill escalation.
    """
    import signal
    import threading

    stop = threading.Event()

    def _on_signal(signum, frame):  # noqa: ARG001 - signal signature
        stop.set()

    try:
        previous = {sig: signal.signal(sig, _on_signal)
                    for sig in (signal.SIGTERM, signal.SIGINT)}
    except ValueError:
        # Not the main thread (embedded/test use): no handlers, block
        # on the event forever — the caller stops the server itself.
        previous = {}
    try:
        stop.wait()
    except KeyboardInterrupt:
        pass
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    shutdown = getattr(server.app, "shutdown_gracefully", None)
    if shutdown is not None:
        deadline = getattr(server.app, "drain_deadline", 10.0)
        summary = shutdown(deadline_seconds=deadline)
        print(f"graceful shutdown: {summary}", file=sys.stderr)
    server.stop()
    return 0


def main(argv: Optional[List[str]] = None) -> int:  # pragma: no cover
    server = build_server(argv if argv is not None else sys.argv[1:])
    server.start()
    print(f"serving on {server.url} — SIGTERM/Ctrl+C to stop",
          file=sys.stderr)
    return run_until_signalled(server)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
