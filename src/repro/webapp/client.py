"""HTTP client for the Ratatouille services (stdlib ``urllib``).

Used by the integration tests, the web-app benchmark (E6) and the
web-app example to exercise the services exactly as a browser would.

The client carries its share of the resilience layer
(``docs/RESILIENCE.md``):

* **retries** — capped exponential backoff, applied only where a
  retry is safe: idempotent GETs on transient transport errors and
  5xx, and *any* method on 503 (the backend sheds with 503 +
  ``Retry-After`` precisely because shed requests did no work and are
  safe to resend — the hint is honored);
* **circuit breaker** — after ``threshold`` consecutive failures the
  client fails fast with :class:`CircuitOpenError` for
  ``cooldown_seconds``, then lets one probe through (half-open);
* **typed stream interruption** — a mid-stream disconnect surfaces as
  :class:`StreamInterrupted` carrying the tokens received so far,
  instead of a silent truncation the caller cannot distinguish from a
  short recipe.
"""

from __future__ import annotations

import json
import socket
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional
from urllib.error import HTTPError, URLError
from urllib.request import Request as UrlRequest
from urllib.request import urlopen


class ApiError(RuntimeError):
    """Raised when the service returns an error payload.

    ``retry_after`` carries the server's ``Retry-After`` hint (seconds)
    when one was sent, e.g. on a 503 from admission control.
    """

    def __init__(self, status: int, message: str,
                 retry_after: Optional[float] = None) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        self.retry_after = retry_after


class CircuitOpenError(RuntimeError):
    """The client's circuit breaker is open; no request was attempted."""


class StreamInterrupted(RuntimeError):
    """A token stream died before its terminal event.

    ``tokens`` holds the token ids received before the interruption —
    the partial generation — so callers can salvage or resume rather
    than guess how much arrived.
    """

    def __init__(self, message: str, tokens: List[int]) -> None:
        super().__init__(f"{message} ({len(tokens)} tokens received)")
        self.tokens = list(tokens)


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff: attempt ``n`` (0-based) sleeps
    ``min(backoff_seconds * backoff_multiplier ** n, max_backoff_seconds)``
    — unless the server's ``Retry-After`` asks for longer."""

    max_retries: int = 2
    backoff_seconds: float = 0.05
    backoff_multiplier: float = 2.0
    max_backoff_seconds: float = 2.0

    def delay(self, attempt: int,
              retry_after: Optional[float] = None) -> float:
        computed = min(
            self.backoff_seconds * self.backoff_multiplier ** attempt,
            self.max_backoff_seconds)
        if retry_after is not None:
            computed = max(computed, min(retry_after,
                                         self.max_backoff_seconds))
        return computed


class CircuitBreaker:
    """Consecutive-failure breaker with a half-open probe.

    Closed → open after ``threshold`` consecutive failures; open →
    half-open after ``cooldown_seconds`` (one request allowed through);
    the probe's outcome closes or re-opens the circuit.
    """

    def __init__(self, threshold: int = 5, cooldown_seconds: float = 5.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if cooldown_seconds < 0:
            raise ValueError("cooldown_seconds must be >= 0")
        self.threshold = threshold
        self.cooldown_seconds = cooldown_seconds
        self._clock = clock
        self._failures = 0
        self._state = "closed"  # closed | open | half-open
        self._opened_at = 0.0

    @property
    def state(self) -> str:
        return self._state

    def allow(self) -> bool:
        if self._state == "closed":
            return True
        if self._state == "open":
            if self._clock() - self._opened_at >= self.cooldown_seconds:
                self._state = "half-open"
                return True
            return False
        return True  # half-open: the probe is in flight

    def record_success(self) -> None:
        self._failures = 0
        self._state = "closed"

    def record_failure(self) -> None:
        self._failures += 1
        if self._state == "half-open" or self._failures >= self.threshold:
            self._state = "open"
            self._opened_at = self._clock()


class RatatouilleClient:
    """Thin JSON client bound to one backend base URL.

    ``retry=None`` disables retries; ``breaker=None`` (the default)
    disables the circuit breaker.  ``sleep`` is injectable so tests can
    run retry schedules without real waiting.
    """

    def __init__(self, base_url: str, timeout: float = 30.0,
                 retry: Optional[RetryPolicy] = RetryPolicy(),
                 breaker: Optional[CircuitBreaker] = None,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retry = retry
        self.breaker = breaker
        self._sleep = sleep

    # ------------------------------------------------------------------
    # Transport with retries + breaker
    # ------------------------------------------------------------------
    def _open(self, method: str, path: str, payload: Optional[dict]):
        url = f"{self.base_url}{path}"
        data = None
        headers = {}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = UrlRequest(url, data=data, headers=headers, method=method)
        return urlopen(request, timeout=self.timeout)

    @staticmethod
    def _api_error(exc: HTTPError) -> ApiError:
        try:
            detail = json.loads(exc.read().decode("utf-8")).get("error", "")
        except Exception:  # noqa: BLE001 - best-effort error detail
            detail = exc.reason
        retry_after: Optional[float] = None
        raw = exc.headers.get("Retry-After") if exc.headers else None
        if raw is not None:
            try:
                retry_after = float(raw)
            except ValueError:
                pass
        return ApiError(exc.code, detail, retry_after=retry_after)

    def _should_retry(self, method: str, error: Exception) -> bool:
        if isinstance(error, ApiError):
            if error.status == 503:
                return True  # shed/unavailable: explicitly safe to resend
            if error.status == 502:
                # A serving replica died mid-request (EngineCrashedError
                # at the backend).  Generation is deterministic, so a
                # resend is idempotent — the retry returns the identical
                # recipe, usually from a replica that stayed up.
                return True
            return method == "GET" and error.status >= 500
        # Transport-level failure (connection refused, reset, timeout):
        # only a GET is known not to have caused side effects.
        return method == "GET" and isinstance(
            error, (URLError, socket.timeout, ConnectionError))

    def _with_resilience(self, method: str, attempt_fn: Callable[[], Any]
                         ) -> Any:
        if self.breaker is not None and not self.breaker.allow():
            raise CircuitOpenError(
                "circuit breaker is open; backend presumed down")
        attempts = (self.retry.max_retries if self.retry is not None else 0)
        attempt = 0
        while True:
            try:
                result = attempt_fn()
            except Exception as exc:  # noqa: BLE001 - classified below
                retryable = self._should_retry(method, exc)
                if self.breaker is not None and (
                        retryable or not isinstance(exc, ApiError)):
                    # 4xx responses are the *server working correctly*;
                    # only availability failures count against the circuit.
                    self.breaker.record_failure()
                if not retryable or attempt >= attempts:
                    raise
                retry_after = getattr(exc, "retry_after", None)
                self._sleep(self.retry.delay(attempt, retry_after))
                attempt += 1
                continue
            if self.breaker is not None:
                self.breaker.record_success()
            return result

    def _request(self, method: str, path: str,
                 payload: Optional[dict] = None) -> Any:
        def attempt() -> Any:
            try:
                with self._open(method, path, payload) as response:
                    body = response.read().decode("utf-8")
                    return json.loads(body) if body else None
            except HTTPError as exc:
                raise self._api_error(exc) from exc

        return self._with_resilience(method, attempt)

    # ------------------------------------------------------------------
    # Backend API
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/api/health")

    def ingredients(self, category: Optional[str] = None,
                    limit: int = 100) -> List[Dict[str, str]]:
        path = f"/api/ingredients?limit={limit}"
        if category:
            path += f"&category={category}"
        return self._request("GET", path)["ingredients"]

    def generate(self, ingredients: List[str],
                 strategy: Optional[str] = None,
                 constraints: Optional[Dict[str, Any]] = None,
                 **options) -> Dict[str, Any]:
        """Generate a recipe; see ``docs/DECODING.md`` for the knobs.

        ``strategy`` selects the decode loop (``greedy`` / ``sample`` /
        ``beam`` / ``mcts`` — the last is grammar-constrained tree
        search).  ``constraints`` is a dict of hard constraints
        (``include_ingredients``, ``exclude_ingredients``, ``diet``,
        ``max_calories``); the server validates it and answers an
        unsatisfiable request with HTTP 400 carrying a named error
        code (``unknown_diet: ...``, ``conflicting_constraints: ...``)
        raised here as :class:`ApiError`.
        """
        payload = {"ingredients": ingredients, **options}
        if strategy is not None:
            payload["strategy"] = strategy
        if constraints is not None:
            payload["constraints"] = dict(constraints)
        return self._request("POST", "/api/generate", payload)

    def generate_stream(self, ingredients: List[str],
                        strategy: Optional[str] = None,
                        constraints: Optional[Dict[str, Any]] = None,
                        **options) -> Iterator[Dict[str, Any]]:
        """Stream a generation as it decodes (server-sent events).

        Yields ``{"token": id, "text": piece}`` per generated token,
        then a final ``{"done": true, "recipe": {...}}`` event (or a
        terminal ``{"error": ...}`` event).  Retries apply only to
        *opening* the stream; once data has flowed, a disconnect
        before a terminal event raises :class:`StreamInterrupted` with
        the tokens received so far.

        ``strategy``/``constraints`` as in :meth:`generate`; with
        ``strategy="mcts"`` the token events arrive only after the
        search completes (a tree has no stream until it picks a
        winner).
        """
        payload = {"ingredients": ingredients, **options}
        if strategy is not None:
            payload["strategy"] = strategy
        if constraints is not None:
            payload["constraints"] = dict(constraints)

        def attempt():
            try:
                return self._open("POST", "/api/generate_stream", payload)
            except HTTPError as exc:
                raise self._api_error(exc) from exc

        response = self._with_resilience("POST", attempt)
        tokens: List[int] = []
        terminal = False
        try:
            with response:
                for line in response:
                    line = line.decode("utf-8").strip()
                    if not line.startswith("data: "):
                        continue
                    event = json.loads(line[len("data: "):])
                    if "token" in event:
                        tokens.append(int(event["token"]))
                    if "done" in event or "error" in event:
                        terminal = True
                    yield event
        except (URLError, ConnectionError, socket.timeout, OSError) as exc:
            raise StreamInterrupted(
                f"stream dropped mid-generation: {exc}", tokens) from exc
        if not terminal:
            # EOF without done/error: the server went away mid-stream.
            raise StreamInterrupted(
                "stream ended without a terminal event", tokens)

    def search(self, query: Optional[str] = None,
               ingredients: Optional[List[str]] = None, k: int = 5,
               exact: bool = False,
               include_text: bool = False) -> Dict[str, Any]:
        """Semantic corpus search (``POST /api/search``).

        Pass a free-text ``query`` or an ``ingredients`` list (exactly
        one).  Returns the full response payload — ``hits``, ``mode``
        and corpus ``documents`` count.
        """
        payload: Dict[str, Any] = {"k": k, "exact": exact,
                                   "include_text": include_text}
        if query is not None:
            payload["query"] = query
        if ingredients is not None:
            payload["ingredients"] = ingredients
        return self._request("POST", "/api/search", payload)

    def retrieval_stats(self) -> Dict[str, Any]:
        return self._request("GET", "/api/retrieval")

    def engine_stats(self) -> Dict[str, Any]:
        return self._request("GET", "/api/engine")

    def resilience_stats(self) -> Dict[str, Any]:
        return self._request("GET", "/api/resilience")

    def suggest(self, ingredients: List[str], limit: int = 5) -> List[Dict]:
        payload = {"ingredients": ingredients, "limit": limit}
        return self._request("POST", "/api/suggest", payload)["suggestions"]
