"""HTTP client for the Ratatouille services (stdlib ``urllib``).

Used by the integration tests, the web-app benchmark (E6) and the
web-app example to exercise the services exactly as a browser would.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterator, List, Optional
from urllib.error import HTTPError
from urllib.request import Request as UrlRequest
from urllib.request import urlopen


class ApiError(RuntimeError):
    """Raised when the service returns an error payload."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class RatatouilleClient:
    """Thin JSON client bound to one backend base URL."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _request(self, method: str, path: str,
                 payload: Optional[dict] = None) -> Any:
        url = f"{self.base_url}{path}"
        data = None
        headers = {}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = UrlRequest(url, data=data, headers=headers, method=method)
        try:
            with urlopen(request, timeout=self.timeout) as response:
                body = response.read().decode("utf-8")
                return json.loads(body) if body else None
        except HTTPError as exc:
            try:
                detail = json.loads(exc.read().decode("utf-8")).get("error", "")
            except Exception:  # noqa: BLE001 - best-effort error detail
                detail = exc.reason
            raise ApiError(exc.code, detail) from exc

    # ------------------------------------------------------------------
    # Backend API
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/api/health")

    def ingredients(self, category: Optional[str] = None,
                    limit: int = 100) -> List[Dict[str, str]]:
        path = f"/api/ingredients?limit={limit}"
        if category:
            path += f"&category={category}"
        return self._request("GET", path)["ingredients"]

    def generate(self, ingredients: List[str], **options) -> Dict[str, Any]:
        payload = {"ingredients": ingredients, **options}
        return self._request("POST", "/api/generate", payload)

    def generate_stream(self, ingredients: List[str],
                        **options) -> Iterator[Dict[str, Any]]:
        """Stream a generation as it decodes (server-sent events).

        Yields ``{"token": id, "text": piece}`` per generated token,
        then a final ``{"done": true, "recipe": {...}}`` event.
        """
        payload = {"ingredients": ingredients, **options}
        url = f"{self.base_url}/api/generate_stream"
        data = json.dumps(payload).encode("utf-8")
        request = UrlRequest(url, data=data,
                             headers={"Content-Type": "application/json"},
                             method="POST")
        try:
            with urlopen(request, timeout=self.timeout) as response:
                for line in response:
                    line = line.decode("utf-8").strip()
                    if line.startswith("data: "):
                        yield json.loads(line[len("data: "):])
        except HTTPError as exc:
            try:
                detail = json.loads(exc.read().decode("utf-8")).get("error", "")
            except Exception:  # noqa: BLE001 - best-effort error detail
                detail = exc.reason
            raise ApiError(exc.code, detail) from exc

    def engine_stats(self) -> Dict[str, Any]:
        return self._request("GET", "/api/engine")

    def suggest(self, ingredients: List[str], limit: int = 5) -> List[Dict]:
        payload = {"ingredients": ingredients, "limit": limit}
        return self._request("POST", "/api/suggest", payload)["suggestions"]
