"""Framework middleware: request logging and rate limiting.

The paper's scaling story ("if load increase ... replicate the
docker") needs per-service observability and protection; this module
adds both as composable wrappers around an :class:`~.framework.App`:

* :class:`RequestLog` — in-memory structured access log with latency
  percentiles (what you'd ship to a metrics backend);
* :class:`RateLimiter` — token-bucket limiting per client, returning
  429 when a client exceeds its budget.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from .framework import App, Request, Response


@dataclass
class AccessRecord:
    """One handled request."""

    method: str
    path: str
    status: int
    seconds: float
    timestamp: float = field(default_factory=time.time)


class RequestLog:
    """Wraps an app; records every dispatch with latency."""

    def __init__(self, app: App, capacity: int = 1000) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.app = app
        self.capacity = capacity
        self._records: List[AccessRecord] = []
        self._lock = threading.Lock()
        self._inner_dispatch = app.dispatch
        app.dispatch = self._dispatch  # type: ignore[method-assign]

    def _dispatch(self, request: Request) -> Response:
        start = time.perf_counter()
        response = self._inner_dispatch(request)
        elapsed = time.perf_counter() - start
        with self._lock:
            self._records.append(AccessRecord(
                method=request.method, path=request.path,
                status=response.status, seconds=elapsed))
            if len(self._records) > self.capacity:
                del self._records[:len(self._records) - self.capacity]
        return response

    @property
    def records(self) -> List[AccessRecord]:
        with self._lock:
            return list(self._records)

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-path request counts and latency percentiles."""
        by_path: Dict[str, List[float]] = {}
        errors: Dict[str, int] = {}
        for record in self.records:
            by_path.setdefault(record.path, []).append(record.seconds)
            if record.status >= 400:
                errors[record.path] = errors.get(record.path, 0) + 1
        summary: Dict[str, Dict[str, float]] = {}
        for path, latencies in by_path.items():
            arr = np.asarray(latencies)
            summary[path] = {
                "count": float(arr.size),
                "p50_ms": float(np.percentile(arr, 50) * 1000),
                "p95_ms": float(np.percentile(arr, 95) * 1000),
                "errors": float(errors.get(path, 0)),
            }
        return summary


class RateLimiter:
    """Token-bucket rate limiting keyed by a client-id header.

    Each client gets ``burst`` tokens refilled at ``rate`` tokens per
    second; a request with no tokens left is answered 429 without ever
    reaching the handlers.
    """

    CLIENT_HEADER = "x-client-id"

    def __init__(self, app: App, rate: float = 5.0, burst: int = 10,
                 clock: Optional[callable] = None) -> None:
        if rate <= 0 or burst < 1:
            raise ValueError("rate must be > 0 and burst >= 1")
        self.app = app
        self.rate = rate
        self.burst = burst
        self._clock = clock or time.monotonic
        self._buckets: Dict[str, tuple] = {}  # client -> (tokens, stamp)
        self._lock = threading.Lock()
        self._inner_dispatch = app.dispatch
        app.dispatch = self._dispatch  # type: ignore[method-assign]

    def _take_token(self, client: str) -> bool:
        now = self._clock()
        with self._lock:
            tokens, stamp = self._buckets.get(client, (float(self.burst), now))
            tokens = min(self.burst, tokens + (now - stamp) * self.rate)
            if tokens < 1.0:
                self._buckets[client] = (tokens, now)
                return False
            self._buckets[client] = (tokens - 1.0, now)
            return True

    def _dispatch(self, request: Request) -> Response:
        client = request.headers.get(self.CLIENT_HEADER, "anonymous")
        if not self._take_token(client):
            return Response.error("rate limit exceeded", status=429)
        return self._inner_dispatch(request)
