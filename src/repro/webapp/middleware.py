"""Framework middleware: request logging and rate limiting.

The paper's scaling story ("if load increase ... replicate the
docker") needs per-service observability and protection; this module
adds both as composable wrappers around an :class:`~.framework.App`:

* :class:`RequestLog` — in-memory structured access log with latency
  percentiles (what you'd ship to a metrics backend);
* :class:`RateLimiter` — token-bucket limiting per client, returning
  429 when a client exceeds its budget;
* :class:`MetricsMiddleware` — reports request counts and latency
  histograms into a :class:`~repro.obs.MetricsRegistry`, the wiring
  behind ``GET /api/metrics``.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..obs import MetricsRegistry, get_registry
from .framework import App, Request, Response


@dataclass
class AccessRecord:
    """One handled request."""

    method: str
    path: str
    status: int
    seconds: float
    timestamp: float = field(default_factory=time.time)


class RequestLog:
    """Wraps an app; records every dispatch with latency."""

    def __init__(self, app: App, capacity: int = 1000) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.app = app
        self.capacity = capacity
        self._records: List[AccessRecord] = []
        self._lock = threading.Lock()
        self._inner_dispatch = app.dispatch
        app.dispatch = self._dispatch  # type: ignore[method-assign]

    def _dispatch(self, request: Request) -> Response:
        start = time.perf_counter()
        response = self._inner_dispatch(request)
        elapsed = time.perf_counter() - start
        with self._lock:
            self._records.append(AccessRecord(
                method=request.method, path=request.path,
                status=response.status, seconds=elapsed))
            if len(self._records) > self.capacity:
                del self._records[:len(self._records) - self.capacity]
        return response

    @property
    def records(self) -> List[AccessRecord]:
        with self._lock:
            return list(self._records)

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-path request counts and latency percentiles."""
        by_path: Dict[str, List[float]] = {}
        errors: Dict[str, int] = {}
        for record in self.records:
            by_path.setdefault(record.path, []).append(record.seconds)
            if record.status >= 400:
                errors[record.path] = errors.get(record.path, 0) + 1
        summary: Dict[str, Dict[str, float]] = {}
        for path, latencies in by_path.items():
            arr = np.asarray(latencies)
            summary[path] = {
                "count": float(arr.size),
                "p50_ms": float(np.percentile(arr, 50) * 1000),
                "p95_ms": float(np.percentile(arr, 95) * 1000),
                "errors": float(errors.get(path, 0)),
            }
        return summary


class MetricsMiddleware:
    """Reports every dispatch into a metrics registry.

    Series (see ``docs/OBSERVABILITY.md``):

    * ``http_requests_total{route,status}`` — request counter;
    * ``http_request_seconds{route}`` — latency histogram;
    * ``http_inflight_requests`` — gauge of requests being handled.
    """

    def __init__(self, app: App,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.app = app
        self.registry = registry if registry is not None else get_registry()
        self._requests = self.registry.counter(
            "http_requests_total", help="HTTP requests by route and status")
        self._latency = self.registry.histogram(
            "http_request_seconds", help="HTTP request latency by route")
        self._inflight = self.registry.gauge(
            "http_inflight_requests", help="Requests currently being handled")
        self._inner_dispatch = app.dispatch
        app.dispatch = self._dispatch  # type: ignore[method-assign]

    def _dispatch(self, request: Request) -> Response:
        clock = self.registry.clock
        start = clock.now()
        self._inflight.inc()
        try:
            response = self._inner_dispatch(request)
        finally:
            self._inflight.dec()
        self._requests.labels(route=request.path,
                              status=str(response.status)).inc()
        self._latency.labels(route=request.path).observe(clock.now() - start)
        return response


class RateLimiter:
    """Token-bucket rate limiting keyed by a client-id header.

    Each client gets ``burst`` tokens refilled at ``rate`` tokens per
    second; a request with no tokens left is answered 429 without ever
    reaching the handlers.

    Buckets are pruned so memory stays bounded even when every request
    carries a fresh client id: a bucket idle for ``burst / rate``
    seconds has refilled completely and is indistinguishable from a
    brand-new client, so dropping it never changes behaviour.
    ``max_clients`` additionally caps the table hard — when exceeded,
    the least-recently-seen buckets are evicted first.
    """

    CLIENT_HEADER = "x-client-id"

    def __init__(self, app: App, rate: float = 5.0, burst: int = 10,
                 clock: Optional[callable] = None,
                 max_clients: int = 10_000) -> None:
        if rate <= 0 or burst < 1:
            raise ValueError("rate must be > 0 and burst >= 1")
        if max_clients < 1:
            raise ValueError("max_clients must be >= 1")
        self.app = app
        self.rate = rate
        self.burst = burst
        self.max_clients = max_clients
        self._clock = clock or time.monotonic
        self._buckets: Dict[str, tuple] = {}  # client -> (tokens, stamp)
        self._lock = threading.Lock()
        self._ops_since_prune = 0
        self._inner_dispatch = app.dispatch
        app.dispatch = self._dispatch  # type: ignore[method-assign]

    @property
    def tracked_clients(self) -> int:
        """How many token buckets are currently held."""
        with self._lock:
            return len(self._buckets)

    def _prune_locked(self, now: float) -> None:
        """Drop refilled (stale) buckets; enforce ``max_clients``."""
        idle_cutoff = now - self.burst / self.rate
        stale = [client for client, (_, stamp) in self._buckets.items()
                 if stamp <= idle_cutoff]
        for client in stale:
            del self._buckets[client]
        if len(self._buckets) > self.max_clients:
            # Evict to 90% of the cap so the O(n) pass amortizes instead
            # of running on every request once the table is full.
            target = max(1, int(self.max_clients * 0.9))
            oldest = sorted(self._buckets,
                            key=lambda c: self._buckets[c][1])
            for client in oldest[:len(self._buckets) - target]:
                del self._buckets[client]

    def _take_token(self, client: str) -> bool:
        now = self._clock()
        with self._lock:
            self._ops_since_prune += 1
            if (self._ops_since_prune >= 256
                    or len(self._buckets) >= self.max_clients):
                self._prune_locked(now)
                self._ops_since_prune = 0
            tokens, stamp = self._buckets.get(client, (float(self.burst), now))
            tokens = min(self.burst, tokens + (now - stamp) * self.rate)
            if tokens < 1.0:
                self._buckets[client] = (tokens, now)
                return False
            self._buckets[client] = (tokens - 1.0, now)
            return True

    def _dispatch(self, request: Request) -> Response:
        client = request.headers.get(self.CLIENT_HEADER, "anonymous")
        if not self._take_token(client):
            # One token refills in 1/rate seconds; tell the client when
            # to come back instead of letting it hot-loop on 429s.
            retry_after = max(1, math.ceil(1.0 / self.rate))
            return Response.error(
                "rate limit exceeded", status=429,
                headers={"Retry-After": str(retry_after)})
        return self._inner_dispatch(request)
