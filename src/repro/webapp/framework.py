"""Micro web framework on the standard library (the Flask substitute).

The paper's backend is Flask; offline we build the equivalent from
``http.server``: decorator-based routing, JSON request/response
helpers, CORS headers (the frontend is served from a different port —
the paper's "completely decoupled" microservice split), and a
threaded server that runs in-process for tests and examples.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Iterable, Iterator, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from ..resilience.faults import InjectedFault, fault_check

Handler = Callable[["Request"], "Response"]


@dataclass
class Request:
    """A parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, list]
    headers: Dict[str, str]
    body: bytes = b""

    def json(self) -> Any:
        """Parse the body as JSON; raises ``ValueError`` on bad input."""
        if not self.body:
            raise ValueError("empty request body")
        try:
            return json.loads(self.body.decode("utf-8"))
        except json.JSONDecodeError as exc:
            raise ValueError(f"invalid JSON body: {exc}") from exc


@dataclass
class Response:
    """An HTTP response; use the class helpers to construct one.

    A response is either *buffered* (``body`` bytes, the default) or
    *streamed*: when ``stream`` is set the server sends no
    Content-Length, writes each chunk as it is produced and flushes
    after every write — the transport for server-sent events.
    """

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)
    stream: Optional[Iterable[bytes]] = None

    @classmethod
    def json(cls, payload: Any, status: int = 200) -> "Response":
        return cls(status=status,
                   body=json.dumps(payload, ensure_ascii=False).encode("utf-8"))

    @classmethod
    def event_stream(cls, events: Iterable[Any],
                     status: int = 200) -> "Response":
        """A server-sent-events response.

        ``events`` yields JSON-serializable payloads, each framed as
        one ``data: {...}\\n\\n`` SSE message.  The iterable is pulled
        lazily inside the server thread, so a generator that blocks on
        an :class:`~repro.serving.EngineRequest` streams tokens to the
        client as the engine produces them.
        """
        def frames() -> Iterator[bytes]:
            try:
                for event in events:
                    payload = json.dumps(event, ensure_ascii=False)
                    yield f"data: {payload}\n\n".encode("utf-8")
            finally:
                # Deterministically close the source generator when the
                # stream is abandoned (client disconnect), so its own
                # cleanup — e.g. cancelling an engine request — runs
                # now, not at some later garbage collection.
                close = getattr(events, "close", None)
                if close is not None:
                    close()
        return cls(status=status, content_type="text/event-stream",
                   headers={"Cache-Control": "no-cache"}, stream=frames())

    @classmethod
    def text(cls, text: str, status: int = 200,
             content_type: str = "text/plain; charset=utf-8") -> "Response":
        return cls(status=status, body=text.encode("utf-8"),
                   content_type=content_type)

    @classmethod
    def html(cls, markup: str, status: int = 200) -> "Response":
        return cls.text(markup, status=status,
                        content_type="text/html; charset=utf-8")

    @classmethod
    def error(cls, message: str, status: int = 400,
              headers: Optional[Dict[str, str]] = None) -> "Response":
        """A JSON error body; ``headers`` carries hints like Retry-After."""
        response = cls.json({"error": message}, status=status)
        if headers:
            response.headers.update(headers)
        return response


class App:
    """Route table + request dispatch (the Flask-like object)."""

    def __init__(self, name: str = "app") -> None:
        self.name = name
        self._routes: Dict[Tuple[str, str], Handler] = {}

    def route(self, path: str, methods: Tuple[str, ...] = ("GET",)):
        """Decorator registering a handler for ``path``."""
        def decorator(handler: Handler) -> Handler:
            for method in methods:
                key = (method.upper(), path)
                if key in self._routes:
                    raise ValueError(f"duplicate route {method} {path}")
                self._routes[key] = handler
            return handler
        return decorator

    def dispatch(self, request: Request) -> Response:
        """Resolve and invoke the handler; errors become JSON responses."""
        handler = self._routes.get((request.method, request.path))
        if handler is None:
            if any(path == request.path for _, path in self._routes):
                return Response.error("method not allowed", status=405)
            return Response.error(f"no route for {request.path}", status=404)
        try:
            return handler(request)
        except ValueError as exc:
            return Response.error(str(exc), status=400)
        except Exception as exc:  # noqa: BLE001 - a server must not die
            return Response.error(f"internal error: {exc}", status=500)


class _RequestHandler(BaseHTTPRequestHandler):
    """Bridges ``http.server`` to :class:`App` dispatch."""

    app: App  # injected by Server

    def _handle(self, method: str) -> None:
        parsed = urlparse(self.path)
        length = int(self.headers.get("Content-Length", 0) or 0)
        body = self.rfile.read(length) if length else b""
        request = Request(
            method=method,
            path=parsed.path,
            query=parse_qs(parsed.query),
            headers={k.lower(): v for k, v in self.headers.items()},
            body=body,
        )
        response = self.app.dispatch(request)
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        if response.stream is None:
            self.send_header("Content-Length", str(len(response.body)))
        else:
            # Streamed: no length up front; the connection close marks
            # the end of the body (we speak HTTP/1.0, no chunked coding).
            self.send_header("Connection", "close")
        # CORS: the decoupled frontend lives on another origin.
        self.send_header("Access-Control-Allow-Origin", "*")
        self.send_header("Access-Control-Allow-Headers", "Content-Type")
        self.send_header("Access-Control-Allow-Methods", "GET, POST, OPTIONS")
        for key, value in response.headers.items():
            self.send_header(key, value)
        self.end_headers()
        if response.stream is None:
            self.wfile.write(response.body)
            return
        try:
            for chunk in response.stream:
                # "framework.write": chaos point modelling the client
                # hanging up mid-stream — same handling as a real
                # broken pipe, so the test suite can prove the engine
                # slot is always released.
                fault_check("framework.write")
                self.wfile.write(chunk)
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError, InjectedFault):
            pass  # client went away mid-stream
        finally:
            # Tell the stream it is done either way, so generator
            # backends can release resources held for the client
            # (the serving engine's batch slot, most importantly).
            close = getattr(response.stream, "close", None)
            if close is not None:
                close()

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._handle("POST")

    def do_OPTIONS(self) -> None:  # noqa: N802 - CORS preflight
        self.send_response(204)
        self.send_header("Access-Control-Allow-Origin", "*")
        self.send_header("Access-Control-Allow-Headers", "Content-Type")
        self.send_header("Access-Control-Allow-Methods", "GET, POST, OPTIONS")
        self.end_headers()

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # keep tests and benchmarks quiet


class Server:
    """A threaded HTTP server hosting one :class:`App`.

    ``port=0`` picks a free port (use :attr:`port` after start).
    """

    def __init__(self, app: App, host: str = "127.0.0.1", port: int = 0) -> None:
        self.app = app
        handler = type(f"{app.name}Handler", (_RequestHandler,), {"app": app})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "Server":
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=5)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "Server":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
