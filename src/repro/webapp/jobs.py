"""Background job queue for asynchronous generation.

Sec. VI motivates the decoupled backend with load: "To handle more
user requests and prevents breakage of application".  Synchronous
generation holds an HTTP worker for the full decode; this module adds
the standard fix — a bounded job queue with worker threads — which the
backend exposes as ``POST /api/generate_async`` + ``GET /api/job``.
"""

from __future__ import annotations

import queue
import threading
import time
import uuid
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Dict, Optional

from ..obs import MetricsRegistry, get_registry
from ..resilience.faults import fault_check

#: The error message shutdown stamps on still-pending jobs; clients
#: polling ``GET /api/job`` see it verbatim and can tell "the service
#: restarted" apart from "your recipe failed".
SHUTDOWN_ERROR = "JobQueueShutdown: queue shut down before job ran"


class JobStatus(str, Enum):
    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


@dataclass
class Job:
    """One queued unit of work and its lifecycle."""

    job_id: str
    func: Callable[[], Any]
    status: JobStatus = JobStatus.PENDING
    result: Any = None
    error: Optional[str] = None
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None

    def snapshot(self) -> Dict[str, Any]:
        """JSON view of the job (result included once done)."""
        payload: Dict[str, Any] = {
            "job_id": self.job_id,
            "status": self.status.value,
        }
        if self.status is JobStatus.DONE:
            payload["result"] = self.result
        if self.status is JobStatus.FAILED:
            payload["error"] = self.error
        if self.started_at and self.finished_at:
            payload["seconds"] = round(self.finished_at - self.started_at, 3)
        return payload


class JobQueue:
    """A bounded FIFO queue drained by daemon worker threads.

    Parameters
    ----------
    workers:
        Number of worker threads (1 is the right choice for CPU-bound
        generation on one core; more only helps with I/O).
    max_pending:
        Submissions beyond this raise :class:`QueueFullError` — the
        backpressure signal the HTTP layer turns into a 429.
    registry:
        Metrics sink (defaults to the process-wide registry): queue
        depth gauge, submit/reject/complete counters, wait/run-time
        histograms — the numbers ``GET /api/metrics`` exposes.
    clock:
        Timestamp source for job lifecycle durations; inject a
        :class:`~repro.obs.ManualClock` for deterministic tests.
    """

    def __init__(self, workers: int = 1, max_pending: int = 16,
                 registry: Optional[MetricsRegistry] = None,
                 clock: Optional[Callable[[], float]] = None) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self._queue: "queue.Queue[Job]" = queue.Queue(maxsize=max_pending)
        self._jobs: Dict[str, Job] = {}
        self._lock = threading.Lock()
        self._shutdown = False
        self._clock = clock or time.time
        registry = registry if registry is not None else get_registry()
        self._depth = registry.gauge(
            "jobs_queue_depth", help="Jobs waiting in the queue")
        self._submitted = registry.counter(
            "jobs_submitted_total", help="Jobs accepted into the queue")
        self._rejected = registry.counter(
            "jobs_rejected_total", help="Submissions refused (queue full)")
        self._completed = registry.counter(
            "jobs_completed_total", help="Jobs finished, by outcome status")
        self._wait_seconds = registry.histogram(
            "jobs_wait_seconds", help="Queue wait (submit to start)")
        self._run_seconds = registry.histogram(
            "jobs_run_seconds", help="Execution time (start to finish)")
        self._threads = [
            threading.Thread(target=self._worker, daemon=True,
                             name=f"jobqueue-worker-{i}")
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def submit(self, func: Callable[[], Any], job_id: Optional[str] = None,
               block: bool = False, block_timeout: float = 30.0) -> str:
        """Queue ``func``; returns the job id.

        Parameters
        ----------
        job_id:
            Caller-chosen id (the durability layer journals the id
            *before* submitting, so the journal and queue must agree).
            Defaults to a fresh ``uuid4`` fragment.  Re-using a live id
            raises :class:`ValueError`.
        block / block_timeout:
            With ``block=True`` a full queue waits up to
            ``block_timeout`` seconds instead of raising — the journal
            replay path uses this so a backlog larger than
            ``max_pending`` re-enqueues completely.

        Raises
        ------
        QueueFullError
            When ``max_pending`` jobs are already waiting (and the wait
            expired, if blocking).
        RuntimeError
            After :meth:`shutdown`.
        """
        if self._shutdown:
            raise RuntimeError("queue is shut down")
        job = Job(job_id=job_id or uuid.uuid4().hex[:12], func=func,
                  submitted_at=self._clock())
        with self._lock:
            if job.job_id in self._jobs:
                raise ValueError(f"job id {job.job_id!r} already exists")
            self._jobs[job.job_id] = job
        try:
            if block:
                self._queue.put(job, timeout=block_timeout)
            else:
                self._queue.put_nowait(job)
        except (queue.Full, TimeoutError):
            with self._lock:
                del self._jobs[job.job_id]
            self._rejected.inc()
            raise QueueFullError(
                f"job queue full ({self._queue.maxsize} pending)") from None
        if self._shutdown:
            # Lost the race with shutdown(): the drain may already have
            # passed our job by.  Fail it here (idempotently — the
            # worker/drain skips non-PENDING jobs) rather than leave a
            # job id that never resolves.
            self._fail_pending(job)
            raise RuntimeError("queue is shut down")
        self._submitted.inc()
        self._depth.set(self._queue.qsize())
        return job.job_id

    def get(self, job_id: str) -> Job:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise KeyError(f"unknown job {job_id!r}") from None

    def wait(self, job_id: str, timeout: float = 60.0,
             poll: float = 0.02) -> Job:
        """Block until the job finishes (or ``timeout`` seconds pass).

        The budget is measured against a monotonic deadline, so wall
        clock adjustments (NTP steps) can neither cut the wait short
        nor extend it.
        """
        deadline = time.monotonic() + timeout
        while True:
            job = self.get(job_id)
            if job.status in (JobStatus.DONE, JobStatus.FAILED):
                return job
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            time.sleep(min(poll, remaining))
        raise TimeoutError(f"job {job_id} still {self.get(job_id).status.value} "
                           f"after {timeout}s")

    @property
    def pending(self) -> int:
        return self._queue.qsize()

    @property
    def unfinished(self) -> int:
        """Jobs not yet DONE/FAILED — queued *and* running.

        ``pending`` only counts the queue; the graceful-shutdown drain
        needs to wait for in-flight work too.
        """
        with self._lock:
            return sum(job.status in (JobStatus.PENDING, JobStatus.RUNNING)
                       for job in self._jobs.values())

    def wait_idle(self, timeout: float = 10.0, poll: float = 0.02) -> bool:
        """Block until no job is pending or running; True if drained.

        Returns False when ``timeout`` expires with work still in
        flight — the graceful-shutdown path then fails the leftovers
        via :meth:`shutdown` rather than waiting forever.
        """
        deadline = time.monotonic() + timeout
        while self.unfinished > 0:
            if time.monotonic() >= deadline:
                return False
            time.sleep(poll)
        return True

    def shutdown(self) -> None:
        """Stop accepting work and fail every still-pending job.

        Pre-fix behaviour left queued jobs ``PENDING`` forever — a
        client polling ``GET /api/job`` after a restart would wait
        until its own timeout with no signal.  Now each undrained job
        resolves ``FAILED`` with the named :data:`SHUTDOWN_ERROR`.
        One sentinel suffices regardless of worker count: each exiting
        worker re-posts it for the next (a bounded queue may not have
        room for one sentinel per worker).
        """
        self._shutdown = True
        # Drain jobs still waiting; a worker may race us for any given
        # job — whoever dequeues it resolves it, and _fail_pending /
        # the RUNNING transition are both under the lock so exactly one
        # side wins.
        while True:
            try:
                job = self._queue.get_nowait()
            except queue.Empty:
                break
            if job is None:
                continue
            self._fail_pending(job)
            self._queue.task_done()
        self._depth.set(0)
        try:
            self._queue.put_nowait(None)  # type: ignore[arg-type]
        except queue.Full:
            pass  # a worker will drain and re-post; shutdown flag is set

    def _fail_pending(self, job: Job) -> None:
        """Resolve a never-started job as FAILED (shutdown path)."""
        with self._lock:
            if job.status is not JobStatus.PENDING:
                return
            job.status = JobStatus.FAILED
        job.error = SHUTDOWN_ERROR
        job.finished_at = self._clock()
        self._completed.labels(status=JobStatus.FAILED.value).inc()

    # ------------------------------------------------------------------
    # Worker loop
    # ------------------------------------------------------------------
    def _worker(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                # Re-post the sentinel so one wakes every worker even
                # when the bounded queue could not hold one per thread.
                try:
                    self._queue.put_nowait(None)  # type: ignore[arg-type]
                except queue.Full:
                    pass
                return
            self._depth.set(self._queue.qsize())
            with self._lock:
                if job.status is not JobStatus.PENDING:
                    # shutdown() already failed it while it sat queued
                    self._queue.task_done()
                    continue
                if self._shutdown:
                    job.status = JobStatus.FAILED
                else:
                    job.status = JobStatus.RUNNING
            if job.status is JobStatus.FAILED:
                job.error = SHUTDOWN_ERROR
                job.finished_at = self._clock()
                self._completed.labels(status=JobStatus.FAILED.value).inc()
                self._queue.task_done()
                continue
            job.started_at = self._clock()
            self._wait_seconds.observe(job.started_at - job.submitted_at)
            try:
                fault_check("jobs.worker")
                job.result = job.func()
                job.status = JobStatus.DONE
            except Exception as exc:  # noqa: BLE001 - job errors are data
                job.error = f"{type(exc).__name__}: {exc}"
                job.status = JobStatus.FAILED
            finally:
                job.finished_at = self._clock()
                self._run_seconds.observe(job.finished_at - job.started_at)
                self._completed.labels(status=job.status.value).inc()
                self._queue.task_done()


class QueueFullError(RuntimeError):
    """Raised when the queue is at capacity (HTTP layer: 429)."""
