"""Ratatouille reproduction: novel recipe generation from scratch.

A full reproduction of *"Ratatouille: A tool for Novel Recipe
Generation"* (Goel et al., ICDE 2022): a synthetic RecipeDB substrate,
the preprocessing pipeline, char/word LSTM and GPT-2 recipe
generators built on a from-scratch numpy autograd engine, BLEU
evaluation, and the decoupled web application.

Quickstart::

    from repro import Ratatouille
    app = Ratatouille.quickstart(model_name="distilgpt2", num_recipes=200)
    print(app.generate(["chicken breast", "garlic", "rice"]).pretty())
"""

from .core import GeneratedRecipe, PipelineConfig, Ratatouille

__version__ = "1.0.0"

__all__ = ["GeneratedRecipe", "PipelineConfig", "Ratatouille", "__version__"]
