"""Resilience: deadlines, load shedding, supervision, fault injection.

The serving stack built in earlier PRs is fast but brittle: a slow
request holds its HTTP worker forever, overload grows the queue without
bound, and a dead engine thread strands every in-flight caller.  This
package adds the failure-handling layer:

- :mod:`repro.resilience.faults` — deterministic fault injection at
  named failure points (``fault_check``), driving the chaos suite;
- :mod:`repro.resilience.admission` — token-denominated load shedding
  with 503 + ``Retry-After`` beyond a high-water mark;
- :mod:`repro.resilience.supervisor` — engine watchdog with bounded
  restarts and an optional degraded sequential fallback.

Request *deadlines* live in the engine itself
(:class:`repro.serving.DeadlineExceededError` carries the partial
generation) and in :meth:`repro.webapp.jobs.JobQueue.wait`; this
package configures them via :class:`ResilienceConfig`.

Import note: :mod:`.supervisor` imports :mod:`repro.serving`, which in
turn imports :func:`.faults.fault_check` from here — so this package
eagerly exposes only ``faults`` and ``admission`` and resolves the
supervisor names lazily (PEP 562) to keep the import graph acyclic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from .admission import AdmissionController, OverloadShedError
from .faults import (FAULT_POINTS, FaultInjector, FaultSpec, InjectedFault,
                     fault_check, get_fault_injector, inject_faults,
                     set_fault_injector)

_SUPERVISOR_EXPORTS = (
    "EngineSupervisor",
    "EngineUnavailableError",
    "sequential_fallback",
)

__all__ = [
    "AdmissionController",
    "FAULT_POINTS",
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "OverloadShedError",
    "ResilienceConfig",
    "fault_check",
    "get_fault_injector",
    "inject_faults",
    "set_fault_injector",
    *_SUPERVISOR_EXPORTS,
]


@dataclass
class ResilienceConfig:
    """Knobs the serving entrypoints (`repro serve`, tests) wire up.

    ``None`` / ``False`` values disable the corresponding pillar, so a
    default-constructed config is inert and a backend built without one
    behaves exactly as before this layer existed.
    """

    #: Deadline applied to requests that do not send ``deadline_ms``.
    default_deadline_ms: Optional[float] = None
    #: Queued-work ceiling for admission control (tokens); None = off.
    shed_watermark_tokens: Optional[int] = None
    #: Decode-rate hint used for ``Retry-After`` estimates.
    tokens_per_second_hint: float = 200.0
    #: Wrap the engine in an :class:`EngineSupervisor`.
    supervise: bool = False
    #: Restart budget and backoff for the supervisor.
    max_restarts: int = 3
    restart_backoff_seconds: float = 0.05
    #: Serve sequential degraded responses while the engine is down.
    degraded_fallback: bool = False

    def __post_init__(self) -> None:
        if (self.default_deadline_ms is not None
                and self.default_deadline_ms <= 0):
            raise ValueError("default_deadline_ms must be > 0")
        if (self.shed_watermark_tokens is not None
                and self.shed_watermark_tokens < 1):
            raise ValueError("shed_watermark_tokens must be >= 1")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if self.restart_backoff_seconds < 0:
            raise ValueError("restart_backoff_seconds must be >= 0")


def __getattr__(name: str) -> Any:
    if name in _SUPERVISOR_EXPORTS:
        from . import supervisor

        return getattr(supervisor, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
