"""Admission control: shed load *before* it queues, not after it hurts.

An unprotected serving queue converts overload into unbounded latency:
every admitted request waits behind all earlier ones, so at 4x offered
load the p99 grows without limit while throughput stays flat.  The
standard fix (and the one deployed recipe services use) is a
load-shedding gate: estimate the work already queued, and beyond a
high-water mark answer *immediately* with 503 + ``Retry-After`` so the
requests that are admitted still meet their latency targets.

Work is estimated in **decode tokens** — each generation request costs
its ``max_new_tokens`` budget, the engine's actual unit of work — and
tracked with explicit :meth:`~AdmissionController.try_acquire` /
:meth:`~AdmissionController.release` bracketing by the HTTP layer
(sync, async-job and streaming endpoints alike), so the gate sits in
front of both the engine and the job queue.

Verified by ``benchmarks/run_overload_shedding.py``: at 4x offered
load the p99 latency of *admitted* requests stays within 2x of the
uncontended p99 while excess traffic sheds with 503.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Dict, Optional

from ..obs import MetricsRegistry, get_registry


class OverloadShedError(RuntimeError):
    """Request refused by admission control (HTTP layer: 503).

    ``retry_after`` is the client hint, in whole seconds, for when the
    queued backlog should have drained.
    """

    def __init__(self, message: str, retry_after: int) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class AdmissionController:
    """Token-denominated load-shedding gate with a high-water mark.

    Parameters
    ----------
    watermark_tokens:
        Queued-work ceiling.  A request whose cost would push the total
        beyond this is shed — unless the gate is completely idle, in
        which case one oversized request is still admitted (a request
        larger than the watermark must not starve forever).
    tokens_per_second_hint:
        Rough decode throughput used to turn excess backlog into a
        ``Retry-After`` hint.  Precision does not matter — the hint
        only needs the right order of magnitude.
    registry:
        Metrics sink; exposes ``admission_admitted_total``,
        ``admission_shed_total`` and the ``admission_queued_tokens``
        gauge via ``GET /api/metrics``.
    """

    def __init__(self, watermark_tokens: int,
                 tokens_per_second_hint: float = 200.0,
                 registry: Optional[MetricsRegistry] = None) -> None:
        if watermark_tokens < 1:
            raise ValueError("watermark_tokens must be >= 1")
        if tokens_per_second_hint <= 0:
            raise ValueError("tokens_per_second_hint must be > 0")
        self.watermark_tokens = watermark_tokens
        self.tokens_per_second_hint = tokens_per_second_hint
        self._queued = 0
        self._lock = threading.Lock()
        registry = registry if registry is not None else get_registry()
        self._admitted = registry.counter(
            "admission_admitted_total",
            help="Requests admitted past the load-shedding gate")
        self._shed = registry.counter(
            "admission_shed_total",
            help="Requests shed with 503 by admission control")
        self._gauge = registry.gauge(
            "admission_queued_tokens",
            help="Estimated queued decode work, in tokens")

    # ------------------------------------------------------------------
    def try_acquire(self, cost_tokens: int) -> None:
        """Admit ``cost_tokens`` of work or raise :class:`OverloadShedError`.

        Every successful acquire must be paired with exactly one
        :meth:`release` when the request resolves (success, error,
        deadline or cancellation alike).
        """
        if cost_tokens < 0:
            raise ValueError("cost_tokens must be >= 0")
        with self._lock:
            over = self._queued + cost_tokens > self.watermark_tokens
            if over and self._queued > 0:
                retry_after = self._retry_after_locked(cost_tokens)
                self._shed.inc()
                raise OverloadShedError(
                    f"overloaded: {self._queued} tokens of work queued "
                    f"(watermark {self.watermark_tokens}); retry in "
                    f"~{retry_after}s", retry_after)
            self._queued += cost_tokens
            self._gauge.set(self._queued)
        self._admitted.inc()

    def release(self, cost_tokens: int) -> None:
        """Return admitted work to the gate when its request resolves."""
        with self._lock:
            self._queued = max(0, self._queued - cost_tokens)
            self._gauge.set(self._queued)

    def _retry_after_locked(self, cost_tokens: int) -> int:
        backlog = self._queued + cost_tokens - self.watermark_tokens
        drain = max(backlog, self._queued - self.watermark_tokens // 2)
        return max(1, math.ceil(drain / self.tokens_per_second_hint))

    # ------------------------------------------------------------------
    @property
    def queued_tokens(self) -> int:
        with self._lock:
            return self._queued

    def would_shed(self, cost_tokens: int) -> bool:
        """Read-only probe: would :meth:`try_acquire` shed this cost?"""
        with self._lock:
            return (self._queued > 0
                    and self._queued + cost_tokens > self.watermark_tokens)

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            queued = self._queued
        return {
            "watermark_tokens": self.watermark_tokens,
            "queued_tokens": queued,
            "admitted_total": self._admitted.value,
            "shed_total": self._shed.value,
        }
