"""Engine supervision: a watchdog that survives a dead engine thread.

The serving engine owns one background thread; before this module, an
exception escaping that thread's loop (a poisoned prefix-cache entry, a
model bug, an injected fault) killed it silently — queued requests and
their HTTP handlers then blocked forever.  :class:`EngineSupervisor`
closes that hole:

1. **detect** — a watchdog polls the engine thread; a death without a
   clean :meth:`~repro.serving.InferenceEngine.stop` is a crash;
2. **fail fast** — every queued and in-flight request is resolved with
   a named :class:`~repro.serving.EngineCrashedError` (never a hang);
3. **restart** — a fresh engine (fresh prefix cache — the crash may
   have been a poisoned snapshot) is built from the factory, with
   exponential backoff, at most ``max_restarts`` times;
4. **degrade** — while no engine is serving (mid-backoff, or restarts
   exhausted) an optional fallback decodes sequentially and the
   response is marked ``"degraded": true`` upstream.

The supervisor intentionally mirrors the engine's ``submit`` /
``generate`` / ``stats`` / ``stop`` surface so callers (the webapp
backend, ``Ratatouille.generate``) can hold either without caring.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..models import GenerationConfig, LanguageModel, LogitsProcessor
from ..models import generate as sequential_generate
from ..obs import (MetricsRegistry, NullRegistry, NullTracer, get_registry)
from ..serving.engine import (EngineCrashedError, EngineRequest,
                              EngineStoppedError, InferenceEngine)

Fallback = Callable[[Sequence[int], GenerationConfig,
                     Sequence[LogitsProcessor]], List[int]]


class EngineUnavailableError(RuntimeError):
    """No engine is currently serving and no fallback is configured."""


def sequential_fallback(model: LanguageModel) -> Fallback:
    """Degraded-mode decoder: the plain sequential generate loop.

    The engine crashing is a *serving-layer* failure — the model
    weights are still sound — so the cheapest useful fallback is the
    unbatched in-process decoder (one request at a time, no prefix
    cache, no instrumentation).  Correct but slow: exactly what
    "degraded" should mean.
    """

    def run(prompt_ids: Sequence[int], config: GenerationConfig,
            processors: Sequence[LogitsProcessor] = ()) -> List[int]:
        return sequential_generate(model, prompt_ids, config, processors,
                                   registry=NullRegistry(),
                                   tracer=NullTracer())

    return run


class EngineSupervisor:
    """Watchdog + restart policy around a replaceable inference engine.

    Parameters
    ----------
    factory:
        Zero-argument callable building a fresh
        :class:`~repro.serving.InferenceEngine`.  Called once at
        construction and once per restart — each call gets a brand-new
        prefix cache by construction.
    max_restarts:
        Restart budget.  Once spent, the supervisor stops replacing
        engines and serves only the fallback (or errors).
    backoff_seconds / backoff_multiplier:
        Restart ``n`` (1-based) waits ``backoff_seconds *
        backoff_multiplier ** (n - 1)`` before building the new engine.
    poll_seconds:
        Watchdog check interval.
    fallback:
        Optional degraded decoder (see :func:`sequential_fallback`).
    spill:
        Optional :class:`~repro.durability.CacheSpill`-shaped object
        (``load_into(cache)`` / ``save(cache)``).  When set, every
        engine the supervisor builds — the first one and each restart
        replacement — is warm-loaded from the spill, and a clean
        :meth:`stop` of a *serving* engine snapshots its cache first
        so the next supervisor starts warm.  A crashed engine's cache
        is never saved: the crash may have been a poisoned snapshot.
    """

    def __init__(self, factory: Callable[[], InferenceEngine],
                 max_restarts: int = 3,
                 backoff_seconds: float = 0.05,
                 backoff_multiplier: float = 2.0,
                 poll_seconds: float = 0.02,
                 fallback: Optional[Fallback] = None,
                 registry: Optional[MetricsRegistry] = None,
                 spill: Optional[Any] = None) -> None:
        if max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if backoff_seconds < 0 or backoff_multiplier < 1.0:
            raise ValueError("backoff_seconds must be >= 0 and "
                             "backoff_multiplier >= 1")
        self._factory = factory
        self.max_restarts = max_restarts
        self.backoff_seconds = backoff_seconds
        self.backoff_multiplier = backoff_multiplier
        self.poll_seconds = poll_seconds
        self.fallback = fallback
        self.spill = spill
        #: Outcome of the spill attempt made by :meth:`stop`: ``True``
        #: once a snapshot was written, ``False`` when a configured
        #: spill did not produce one (save failed, or the engine was
        #: crashed/stopped), ``None`` when no spill is configured or
        #: ``stop`` has not run.  Shutdown summaries read this instead
        #: of guessing from configuration.
        self.last_spill_saved: Optional[bool] = None
        registry = registry if registry is not None else get_registry()
        self._restarts_total = registry.counter(
            "engine_restarts_total",
            help="Engine restarts performed by the supervisor")
        self._crashes_total = registry.counter(
            "engine_crashes_total",
            help="Engine thread deaths detected by the supervisor")
        self._degraded_total = registry.counter(
            "engine_degraded_requests_total",
            help="Requests served by the degraded fallback")
        self._up_gauge = registry.gauge(
            "engine_supervisor_up",
            help="1 while a live engine is serving, 0 otherwise")
        self._lock = threading.Lock()
        self._restarts = 0
        self._state = "serving"  # serving | restarting | failed | stopped
        self._engine = factory()
        self._warm_reload(self._engine)
        self._up_gauge.set(1)
        self._stop_event = threading.Event()
        self._thread = threading.Thread(target=self._watch,
                                        name="repro-engine-supervisor",
                                        daemon=True)
        self._thread.start()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def engine(self) -> InferenceEngine:
        """The current engine (replaced across restarts)."""
        return self._engine

    @property
    def state(self) -> str:
        return self._state

    @property
    def restarts(self) -> int:
        """How many replacement engines have been built."""
        return self._restarts

    @property
    def running(self) -> bool:
        return self._state == "serving" and self._engine.running

    @property
    def prefix_cache(self):
        return self._engine.prefix_cache

    def stats(self) -> Dict[str, Any]:
        stats = self._engine.stats()
        stats["supervisor"] = {
            "state": self._state,
            "restarts": self._restarts,
            "max_restarts": self.max_restarts,
            "degraded_available": self.fallback is not None,
        }
        return stats

    # ------------------------------------------------------------------
    # Serving surface (mirrors InferenceEngine)
    # ------------------------------------------------------------------
    def submit(self, prompt_ids: Sequence[int],
               config: Optional[GenerationConfig] = None,
               processors: Sequence[LogitsProcessor] = (),
               deadline_ms: Optional[float] = None) -> EngineRequest:
        """Submit to the current engine.

        Raises :class:`EngineUnavailableError` while no engine is
        serving (streaming has no degraded mode — the fallback decoder
        cannot stream).
        """
        engine, state = self._engine, self._state
        if state != "serving":
            raise EngineUnavailableError(
                f"engine is not serving (supervisor state: {state})")
        return engine.submit(prompt_ids, config, processors,
                             deadline_ms=deadline_ms)

    def generate(self, prompt_ids: Sequence[int],
                 config: Optional[GenerationConfig] = None,
                 processors: Sequence[LogitsProcessor] = (),
                 deadline_ms: Optional[float] = None) -> List[int]:
        """Engine-or-fallback synchronous generation (degraded flag dropped).

        Matches ``InferenceEngine.generate`` so a supervisor can stand
        in for an engine anywhere (e.g. ``Ratatouille.generate``).
        """
        tokens, _ = self.generate_ex(prompt_ids, config, processors,
                                     deadline_ms=deadline_ms)
        return tokens

    def generate_ex(self, prompt_ids: Sequence[int],
                    config: Optional[GenerationConfig] = None,
                    processors: Sequence[LogitsProcessor] = (),
                    deadline_ms: Optional[float] = None
                    ) -> Tuple[List[int], bool]:
        """Generate, returning ``(tokens, degraded)``.

        Tries the live engine first; on *unavailability* errors only
        (crash, stop, supervisor outage) falls back to the degraded
        decoder when one is configured.  Request-level errors —
        deadline expiry, validation — always propagate: degrading must
        not change their meaning.
        """
        config = config or GenerationConfig()
        if self._state == "serving":
            engine = self._engine
            try:
                return engine.generate(prompt_ids, config, processors,
                                       deadline_ms=deadline_ms), False
            except (EngineCrashedError, EngineStoppedError):
                if self._stop_event.is_set():
                    raise
                # fall through to degraded mode (or re-raise below)
        if self._stop_event.is_set():
            raise EngineStoppedError("supervisor has been stopped")
        if self.fallback is None:
            raise EngineUnavailableError(
                f"engine is not serving (supervisor state: {self._state}) "
                "and no degraded fallback is configured")
        config.validate()
        tokens = self.fallback(prompt_ids, config, processors)
        self._degraded_total.inc()
        return tokens, True

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the watchdog and the current engine.

        When a spill is configured and the engine is being stopped
        *cleanly* (it was serving, not crashed or failed), its prefix
        cache is snapshotted first so the next supervisor — a process
        restart or a cluster swap — starts warm.  Spill failure is
        logged into the fault machinery by the spill itself and never
        blocks shutdown; the real outcome lands in
        :attr:`last_spill_saved` for shutdown summaries.
        """
        self._stop_event.set()
        with self._lock:
            was_serving = self._state == "serving"
            self._state = "stopped"
        self._thread.join(timeout=timeout)
        if self.spill is not None and self.last_spill_saved is None:
            # First stop() decides the outcome; a repeated stop() must
            # not clobber a recorded success with False.
            self.last_spill_saved = False
            if was_serving and self._engine.crashed is None:
                try:
                    self.spill.save(self._engine.prefix_cache)
                    self.last_spill_saved = True
                except Exception:  # noqa: BLE001 - next start is cold
                    pass
        self._engine.stop(timeout=timeout)
        self._up_gauge.set(0)

    def _warm_reload(self, engine: InferenceEngine) -> None:
        """Best-effort warm load of a fresh engine's prefix cache."""
        if self.spill is None:
            return
        try:
            self.spill.load_into(engine.prefix_cache)
        except Exception:  # noqa: BLE001 - corrupt spill => cold start
            pass

    def __enter__(self) -> "EngineSupervisor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Watchdog thread
    # ------------------------------------------------------------------
    def _watch(self) -> None:
        while not self._stop_event.wait(self.poll_seconds):
            engine = self._engine
            if engine._thread.is_alive():
                continue
            if self._stop_event.is_set():
                return
            if engine.crashed is None and engine._stop_event.is_set():
                continue  # clean external stop(); nothing to supervise
            self._handle_crash(engine)

    def _handle_crash(self, engine: InferenceEngine) -> None:
        self._crashes_total.inc()
        self._up_gauge.set(0)
        # Belt and braces: the engine fails its own in-flight work when
        # it crashes via an exception, but a hard-killed thread cannot —
        # fail_inflight is idempotent either way.
        engine.fail_inflight(EngineCrashedError(
            f"engine thread died: {engine.crashed!r}"))
        if self._restarts >= self.max_restarts:
            with self._lock:
                if self._state != "stopped":
                    self._state = "failed"
            return
        with self._lock:
            if self._state == "stopped":
                return
            self._state = "restarting"
        attempt = self._restarts + 1
        backoff = (self.backoff_seconds
                   * self.backoff_multiplier ** (attempt - 1))
        if self._stop_event.wait(backoff):
            return
        try:
            replacement = self._factory()
            self._warm_reload(replacement)
        except BaseException:  # noqa: BLE001 - factory itself failed
            # Burn the attempt; the watchdog will see the dead engine
            # again next poll and retry until the budget runs out.
            self._restarts = attempt
            return
        with self._lock:
            if self._state == "stopped":
                replacement.stop()
                return
            self._restarts = attempt
            self._engine = replacement
            self._state = "serving"
        self._restarts_total.inc()
        self._up_gauge.set(1)
