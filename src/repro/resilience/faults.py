"""Deterministic fault injection: named failure points on a seeded schedule.

The chaos suite (``tests/test_chaos.py``) needs to prove a negative —
*no request ever hangs, whatever breaks* — which requires breaking
things on purpose, reproducibly.  This module provides the switchboard:
production code calls :func:`fault_check` at named **failure points**,
a no-op unless a test (or an operator drill) has installed a
:class:`FaultInjector`; the injector raises :class:`InjectedFault` or
injects latency according to a seeded, fully deterministic plan.

Registered failure points (see ``docs/RESILIENCE.md``):

=====================  =====================================================
``model.forward``       a batched decode/prefill forward pass in the
                        serving engine — fails the affected requests with a
                        named error, the engine itself survives;
``prefix_cache.get``    a prefix-cache lookup during admission — escapes
                        the engine loop and *kills the engine thread*, the
                        scenario :class:`~repro.resilience.EngineSupervisor`
                        exists for;
``jobs.worker``         a job-queue worker about to run a job — the job
                        resolves ``FAILED`` with a named error;
``framework.write``     an HTTP response write — simulates a client that
                        disconnected mid-stream;
``retrieval.search``    a retrieval-index lookup (search, RAG exemplar
                        fetch, novelty scoring) — the backend degrades to
                        un-conditioned generation with
                        ``"retrieval_degraded": true``, never a failed or
                        hung request;
``journal.append``      a write-ahead job-journal append — an async submit
                        that cannot be made durable is refused with 503 +
                        Retry-After *before* the 202, never acknowledged
                        and then lost;
``spill.save``          a prefix-cache spill snapshot — a failed spill
                        degrades the *next* restart to a cold cache, it
                        never fails shutdown, swap, or serving;
``fleet_cache.borrow``  a cross-replica KV borrow — the replica falls back
                        to recomputing the prefix locally;
``decoding.reward``     an MCTS rollout-reward evaluation — the search
                        degrades to constrained greedy decoding with
                        ``"search_degraded": true``, never a failed or
                        hung request.
=====================  =====================================================

Determinism contract: a given ``(seed, plan)`` produces the same fault
at the same call index at every point, every run — each point draws
from its own ``default_rng`` stream, so adding a point (or calls to
one) never perturbs another's schedule.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, Optional, Tuple

import numpy as np

#: The failure points production code is instrumented with.
FAULT_POINTS: Tuple[str, ...] = (
    "model.forward",
    "prefix_cache.get",
    "jobs.worker",
    "framework.write",
    "retrieval.search",
    "journal.append",
    "spill.save",
    "fleet_cache.borrow",
    "decoding.reward",
)


class InjectedFault(RuntimeError):
    """The named error a triggered failure point raises.

    Carries the point and the 0-based call index that fired so chaos
    tests can assert *which* scheduled fault a request died of.
    """

    def __init__(self, point: str, index: int) -> None:
        super().__init__(f"injected fault at {point!r} (call #{index})")
        self.point = point
        self.index = index


@dataclass(frozen=True)
class FaultSpec:
    """What one failure point does when checked.

    ``rate`` fires faults at random (seeded — deterministic per
    injector); ``schedule`` fires at exact 0-based call indices;
    both compose.  ``delay_seconds`` sleeps before deciding, modelling
    a slow dependency rather than a dead one.  ``max_faults`` caps the
    total raises so a "crash once" plan is one line.
    """

    rate: float = 0.0
    schedule: FrozenSet[int] = field(default_factory=frozenset)
    delay_seconds: float = 0.0
    max_faults: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be within [0, 1]")
        if self.delay_seconds < 0:
            raise ValueError("delay_seconds must be >= 0")
        if self.max_faults is not None and self.max_faults < 0:
            raise ValueError("max_faults must be >= 0 or None")
        object.__setattr__(self, "schedule", frozenset(self.schedule))


@dataclass
class _PointState:
    spec: FaultSpec
    rng: np.random.Generator
    calls: int = 0
    faults: int = 0
    delayed: int = 0


class FaultInjector:
    """Seeded fault plan over the named failure points.

    Parameters
    ----------
    plan:
        ``{point: FaultSpec}``; points absent from the plan never fire.
        Unknown point names are rejected so a typo cannot silently
        disable a chaos scenario.
    seed:
        Root seed; each point derives an independent
        ``default_rng([seed, point_index])`` stream.
    sleep:
        Injectable sleeper for ``delay_seconds`` (tests pass a stub so
        latency plans do not slow the suite).
    """

    def __init__(self, plan: Dict[str, FaultSpec], seed: int = 0,
                 sleep=time.sleep) -> None:
        unknown = set(plan) - set(FAULT_POINTS)
        if unknown:
            raise ValueError(
                f"unknown fault point(s) {sorted(unknown)}; "
                f"registered: {list(FAULT_POINTS)}")
        self._sleep = sleep
        self._lock = threading.Lock()
        self._points: Dict[str, _PointState] = {
            point: _PointState(
                spec=spec,
                rng=np.random.default_rng([seed, FAULT_POINTS.index(point)]))
            for point, spec in plan.items()
        }

    def check(self, point: str) -> None:
        """Run the plan for one call at ``point``.

        Raises :class:`InjectedFault` when the schedule says so; sleeps
        first when latency is planned.  Points not in the plan return
        immediately.
        """
        state = self._points.get(point)
        if state is None:
            return
        with self._lock:
            index = state.calls
            state.calls += 1
            spec = state.spec
            fire = index in spec.schedule
            if not fire and spec.rate > 0.0:
                fire = bool(state.rng.random() < spec.rate)
            if fire and (spec.max_faults is not None
                         and state.faults >= spec.max_faults):
                fire = False
            if fire:
                state.faults += 1
            delay = spec.delay_seconds
            if delay > 0.0:
                state.delayed += 1
        if delay > 0.0:
            self._sleep(delay)
        if fire:
            raise InjectedFault(point, index)

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        """Per-point call/fault/delay counts (for tests and stats)."""
        with self._lock:
            return {
                point: {"calls": state.calls, "faults": state.faults,
                        "delayed": state.delayed}
                for point, state in self._points.items()
            }


# ---------------------------------------------------------------------------
# Process-wide switchboard.  ``fault_check`` is on hot paths (one call
# per decode step), so the disabled case must be a single attribute
# read — no lock, no dict lookup.
# ---------------------------------------------------------------------------
_active: Optional[FaultInjector] = None


def set_fault_injector(injector: Optional[FaultInjector]
                       ) -> Optional[FaultInjector]:
    """Install (or clear, with ``None``) the process-wide injector.

    Returns the previously installed injector so callers can restore it.
    """
    global _active
    previous = _active
    _active = injector
    return previous


def get_fault_injector() -> Optional[FaultInjector]:
    return _active


def fault_check(point: str) -> None:
    """Hook production code calls at a named failure point.

    No-op (one attribute read) unless an injector is installed.
    """
    injector = _active
    if injector is not None:
        injector.check(point)


@contextmanager
def inject_faults(injector: FaultInjector) -> Iterator[FaultInjector]:
    """Scoped installation for tests: restores the previous injector."""
    previous = set_fault_injector(injector)
    try:
        yield injector
    finally:
        set_fault_injector(previous)
