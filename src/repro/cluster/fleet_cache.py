"""Fleet-global prefix-cache index: who holds which prefix, right now.

The router's consistent-hash ring knows where a prefix *should* live;
it cannot know where a prefix actually *is* after saturation spills,
drains, crashes and rolling swaps have moved traffic around.  The
:class:`FleetCacheIndex` closes that gap: every replica's
:class:`~repro.serving.PrefixCache` publishes the token paths it
stores (depth-capped, refreshed incrementally on insert and evict
through the cache's listener hook), and the router consults the index
on the dispatch path to prefer the replica already holding the longest
matching prefix over the static ring (see ``docs/CLUSTER.md``).

Design constraints:

* **Compact** — the index stores token paths only (ints in a trie),
  never KV bytes; the snapshots stay in the owning replica's cache.
  Publishing is capped at ``publish_tokens`` so one replica's million
  deep full-prompt entries cannot balloon the shared trie: deep
  entries are still served locally, they just aren't advertised.
* **Lock-cheap reads** — one mutex, O(depth) walks, no allocation on
  the read path beyond the holder tuple.  Listeners call in while
  holding their cache's lock, so the index never calls back into any
  cache (lock order is always cache → index, making deadlock
  impossible by construction).
* **Crash-consistent** — each replica registration is gated on the
  *cache object identity*: publishes from a dead engine's cache are
  refused the moment a replacement registers (or the replica is
  dropped), so the index never resurrects entries from a cache that is
  no longer serving.  The router additionally drops a replica's
  entries on failover and on observed death.

Eligibility mirrors the cache's chunk-alignment gate: a published
depth only counts as a match when resuming from it would replay the
exact trunk calls of a cold run (``depth % chunk_size == 0`` or the
entry covers the whole query) — the bit-identity contract the serving
layer enforces everywhere else.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

__all__ = ["FleetCacheIndex"]


class _IndexNode:
    """One shared-trie node; ``holders`` are replicas with an entry here."""

    __slots__ = ("children", "parent", "token", "holders")

    def __init__(self, parent: Optional["_IndexNode"] = None,
                 token: Optional[int] = None) -> None:
        self.children: Dict[int, "_IndexNode"] = {}
        self.parent = parent
        self.token = token
        self.holders: Set[str] = set()


class _Publisher:
    """Per-cache listener bridging ``PrefixCache`` events to the index.

    Holds the cache it was attached to so the index can refuse stale
    events once a replacement cache registers under the same replica
    name (a restart, swap, or warm reload racing a dying engine).
    """

    __slots__ = ("index", "replica", "cache")

    def __init__(self, index: "FleetCacheIndex", replica: str,
                 cache: Any) -> None:
        self.index = index
        self.replica = replica
        self.cache = cache

    def on_insert(self, key: Tuple[int, ...]) -> None:
        self.index.publish(self.replica, self.cache, key)

    def on_evict(self, key: Tuple[int, ...]) -> None:
        self.index.unpublish(self.replica, self.cache, key)

    def on_clear(self) -> None:
        self.index.drop_replica(self.replica, if_cache=self.cache)


class FleetCacheIndex:
    """Compact fleet-wide token trie of published cache prefixes.

    Parameters
    ----------
    publish_tokens:
        Depth cap: prefixes longer than this are not advertised (they
        are still served by the owning replica's own cache).
    chunk_size:
        The engines' prefill chunk, for the eligibility gate in
        :meth:`longest_match`; ``None`` disables the gate.  When left
        ``None`` it is adopted from the first attached cache.
    """

    def __init__(self, publish_tokens: int = 128,
                 chunk_size: Optional[int] = None) -> None:
        if publish_tokens < 1:
            raise ValueError("publish_tokens must be >= 1")
        self.publish_tokens = publish_tokens
        self.chunk_size = chunk_size
        self._lock = threading.Lock()
        self._root = _IndexNode()
        #: replica -> set of published keys (for O(keys) drops).
        self._keys: Dict[str, Set[Tuple[int, ...]]] = {}
        #: replica -> the cache whose events are currently accepted.
        self._active: Dict[str, Any] = {}
        self.published_total = 0
        self.unpublished_total = 0
        self.dropped_replicas_total = 0

    # ------------------------------------------------------------------
    # Registration + lifecycle
    # ------------------------------------------------------------------
    def attach(self, replica: str, cache: Any) -> _Publisher:
        """Register ``cache`` as ``replica``'s live cache.

        Atomically drops whatever the replica had published before (a
        fresh engine starts with a fresh — possibly warm-reloaded —
        cache) and returns the listener to install on the cache.
        Events from any previously attached cache are refused from
        this point on.
        """
        with self._lock:
            self._drop_locked(replica)
            self._active[replica] = cache
            if self.chunk_size is None:
                self.chunk_size = getattr(cache, "chunk_size", None)
        return _Publisher(self, replica, cache)

    def drop_replica(self, replica: str,
                     if_cache: Optional[Any] = None) -> int:
        """Remove every entry ``replica`` published; returns how many.

        With ``if_cache`` the drop only applies while that cache is
        still the replica's active one (used by the clear-event path so
        a stale cache clearing after a swap cannot wipe the
        replacement's entries).  A plain drop also deactivates the
        replica: publishes are refused until the next :meth:`attach`
        (death path — the crashed engine's cache must not repopulate
        the index).
        """
        with self._lock:
            if if_cache is not None and self._active.get(replica) is not if_cache:
                return 0
            dropped = self._drop_locked(replica)
            if if_cache is None:
                self._active[replica] = None
            if dropped:
                self.dropped_replicas_total += 1
            return dropped

    def _drop_locked(self, replica: str) -> int:
        keys = self._keys.pop(replica, None)
        if not keys:
            return 0
        for key in keys:
            self._remove_locked(replica, key)
        return len(keys)

    # ------------------------------------------------------------------
    # Publish / unpublish (called under the owning cache's lock)
    # ------------------------------------------------------------------
    def publish(self, replica: str, cache: Any,
                tokens: Iterable[int]) -> bool:
        """Advertise that ``replica`` holds an entry at exactly ``tokens``.

        Refused (returns False) when the key exceeds the depth cap or
        ``cache`` is no longer the replica's active cache.
        """
        key = tuple(int(t) for t in tokens)
        if not key or len(key) > self.publish_tokens:
            return False
        with self._lock:
            if self._active.get(replica) is not cache:
                return False
            published = self._keys.setdefault(replica, set())
            if key in published:
                return True
            node = self._root
            for token in key:
                child = node.children.get(token)
                if child is None:
                    child = _IndexNode(parent=node, token=token)
                    node.children[token] = child
                node = child
            node.holders.add(replica)
            published.add(key)
            self.published_total += 1
            return True

    def unpublish(self, replica: str, cache: Any,
                  tokens: Iterable[int]) -> bool:
        """Withdraw one published key (the owning cache evicted it)."""
        key = tuple(int(t) for t in tokens)
        with self._lock:
            if self._active.get(replica) is not cache:
                return False
            published = self._keys.get(replica)
            if published is None or key not in published:
                return False
            published.discard(key)
            self._remove_locked(replica, key)
            self.unpublished_total += 1
            return True

    def _remove_locked(self, replica: str, key: Tuple[int, ...]) -> None:
        node = self._root
        for token in key:
            node = node.children.get(token)
            if node is None:
                return
        node.holders.discard(replica)
        # Prune empty branches so dropped replicas free their nodes.
        while (node.parent is not None and not node.children
               and not node.holders):
            parent = node.parent
            del parent.children[node.token]
            node.parent = None
            node = parent

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def _eligible(self, depth: int, query_len: int) -> bool:
        if self.chunk_size is None:
            return True
        return depth == query_len or depth % self.chunk_size == 0

    def longest_match(self, tokens: Iterable[int]
                      ) -> Tuple[int, Tuple[str, ...]]:
        """Deepest eligible published prefix of ``tokens`` and its holders.

        Returns ``(depth, holders)``; ``(0, ())`` when nothing
        matches.  Holders are sorted for deterministic placement.
        """
        key = tuple(int(t) for t in tokens)
        with self._lock:
            best_depth = 0
            best: Optional[_IndexNode] = None
            node = self._root
            for depth, token in enumerate(key, start=1):
                node = node.children.get(token)
                if node is None:
                    break
                if node.holders and self._eligible(depth, len(key)):
                    best_depth = depth
                    best = node
            if best is None:
                return 0, ()
            return best_depth, tuple(sorted(best.holders))

    def holders(self, tokens: Iterable[int]) -> Tuple[str, ...]:
        """Replicas holding an entry at exactly ``tokens`` (for tests)."""
        key = tuple(int(t) for t in tokens)
        with self._lock:
            node = self._root
            for token in key:
                node = node.children.get(token)
                if node is None:
                    return ()
            return tuple(sorted(node.holders))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        with self._lock:
            per_replica = {name: len(keys)
                           for name, keys in self._keys.items() if keys}
            return {
                "publish_tokens": self.publish_tokens,
                "chunk_size": self.chunk_size,
                "entries": sum(per_replica.values()),
                "per_replica": per_replica,
                "published_total": self.published_total,
                "unpublished_total": self.unpublished_total,
                "dropped_replicas_total": self.dropped_replicas_total,
            }

    def __len__(self) -> int:
        with self._lock:
            return sum(len(keys) for keys in self._keys.values())
