"""Replicated serving: N supervised engines behind one router.

A single :class:`~repro.serving.InferenceEngine` is a single point of
failure and a hard ceiling on concurrency, cache capacity and upgrade
agility.  ``repro.cluster`` runs N replicas — each its own engine with
an *isolated* prefix cache, wrapped in its own
:class:`~repro.resilience.EngineSupervisor` — behind a :class:`Router`
that mirrors the engine's ``submit`` / ``generate`` / ``stats`` /
``stop`` surface, so the webapp backend can hold either without
caring.

Placement is **prefix-affine**: recipe prompts share long prefixes
(every request starts with the same ``<RECIPE_START>`` /
ingredient-list scaffold), and a prefix-cache hit is only possible on
the replica whose trie already holds that path.  The router therefore
consistent-hashes the first ``affinity_tokens`` prompt ids onto a ring
of virtual nodes: requests sharing a leading chunk land on the same
replica, keeping each cache's working set disjoint instead of
duplicating every prefix N times.  When the affinity target is
saturated the router spills balance-of-two style to the least-queued
eligible replica — affinity is a heuristic for cache locality, never a
correctness constraint, because engine output is bit-identical on
every replica.

The hash ring knows where a prefix *should* live; the **fleet cache
tier** (on by default, ``ClusterConfig.fleet_cache``) knows where it
actually *is*.  Every replica's prefix cache publishes its stored
prefixes into a shared :class:`FleetCacheIndex`, and placement prefers
the eligible replica holding the longest published match over the
static ring — subject to the same saturation load guard, so a hot
holder still spills balance-of-two.  When placement must divert off
every holder (saturation, drain, death), the chosen replica *borrows*
the owner's frozen KV snapshot read-through instead of recomputing
prefill — safe because frozen :class:`~repro.nn.KVCache` snapshots are
copy-on-append and weights are already fleet-shared.  See
``docs/CLUSTER.md`` for tuning and semantics.

That same determinism makes **failover transparent**: a request whose
replica dies mid-decode is re-dispatched to a survivor and the retried
result is byte-equal to an unfailed run (chaos-tested with a seeded
:class:`~repro.resilience.FaultInjector`).  Failover is driven by the
consumer side of :class:`ClusterRequest` — the first ``result()`` /
``tokens()`` caller to observe the replica's named crash error
re-dispatches — so there is no extra watcher thread per request; a
streaming consumer skips the tokens it already delivered, which is
sound only because the replay emits the identical stream.

Rolling operations: :meth:`Router.drain` stops new admissions to one
replica and waits for its in-flight work, :meth:`Router.swap` replaces
the drained replica's engine (new weights, new config — anything the
factory builds), :meth:`Router.readmit` returns it to rotation.  A
drain → swap → readmit cycle drops zero requests by construction.
"""

from __future__ import annotations

import bisect
import hashlib
import threading
import time
from dataclasses import dataclass
from typing import (Any, Callable, Dict, Iterator, List, Optional, Sequence,
                    Set, Tuple)

from ..models import GenerationConfig, LogitsProcessor
from ..obs import MetricsRegistry, Tracer, get_registry, get_tracer
from ..resilience.admission import OverloadShedError
from ..resilience.faults import InjectedFault, fault_check
from ..resilience.supervisor import EngineSupervisor, EngineUnavailableError
from ..serving.engine import (DeadlineExceededError, EngineCrashedError,
                              EngineQueueFullError, EngineRequest,
                              EngineStoppedError, InferenceEngine)
from .admission import ClusterAdmissionController
from .fleet_cache import FleetCacheIndex

__all__ = ["ClusterConfig", "ClusterRequest", "NoReplicaAvailableError",
           "Router"]

#: Errors that mean "this replica cannot finish the request" — the
#: router re-dispatches to a survivor.  Request-level errors (deadline
#: expiry, validation) are deliberately absent: failing over cannot
#: change their meaning.
_FAILOVER_ERRORS = (EngineCrashedError, EngineStoppedError,
                    EngineUnavailableError)

#: Health-state severity, worst last.  ``draining`` outranks
#: ``degraded`` for fleet rollups: an operator took it out on purpose.
_SEVERITY = ("healthy", "degraded", "draining", "dead")


class NoReplicaAvailableError(RuntimeError):
    """Every replica is dead, draining, or excluded by prior failures."""


@dataclass(frozen=True)
class ClusterConfig:
    """Fleet knobs (independent of per-engine :class:`EngineConfig`)."""

    replicas: int = 2
    #: Leading prompt ids hashed for placement.  One prefill chunk (32)
    #: keys on exactly the prefix the cache can reuse; see
    #: ``docs/CLUSTER.md`` for the tuning trade-off against load skew.
    affinity_tokens: int = 32
    #: Queued-token level past which the affinity target spills
    #: balance-of-two to the least-queued eligible replica.
    saturation_tokens: int = 1024
    #: Per-replica admission watermark; ``None`` disables shedding.
    watermark_tokens: Optional[int] = None
    tokens_per_second_hint: float = 200.0
    #: Re-dispatch budget per request before its crash error surfaces.
    max_failovers: int = 2
    max_restarts: int = 3
    restart_backoff_seconds: float = 0.05
    heartbeat_seconds: float = 0.05
    virtual_nodes: int = 64
    #: Fleet cache tier: replicas publish cached prefixes into a shared
    #: :class:`FleetCacheIndex` and placement prefers the replica
    #: holding the longest published match over the static ring.
    fleet_cache: bool = True
    #: Depth cap on published prefixes; deeper entries are still served
    #: by the owning replica's cache, just never advertised fleet-wide.
    publish_tokens: int = 128
    #: Read-through KV borrowing when placement diverts off every
    #: holder (saturation, drain, death) — the chosen replica copies
    #: the owner's frozen snapshot instead of recomputing prefill.
    borrow: bool = True

    def validate(self) -> None:
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")
        if self.affinity_tokens < 1:
            raise ValueError("affinity_tokens must be >= 1")
        if self.saturation_tokens < 0:
            raise ValueError("saturation_tokens must be >= 0")
        if self.max_failovers < 0:
            raise ValueError("max_failovers must be >= 0")
        if self.virtual_nodes < 1:
            raise ValueError("virtual_nodes must be >= 1")
        if self.heartbeat_seconds <= 0:
            raise ValueError("heartbeat_seconds must be > 0")
        if self.publish_tokens < 1:
            raise ValueError("publish_tokens must be >= 1")


class _Attempt:
    """One dispatch of a request to one replica."""

    __slots__ = ("replica", "handle")

    def __init__(self, replica: "_Replica", handle: EngineRequest) -> None:
        self.replica = replica
        self.handle = handle


@dataclass(frozen=True)
class _Placement:
    """Why a dispatch landed where it did (drives borrowing + metrics).

    ``reason`` is one of ``affinity`` (landed on the ring home),
    ``cache`` (diverted to a published-prefix holder), ``spill``
    (load guard diverted off the preferred target), ``fallback``
    (home unavailable, no usable holder).  ``depth``/``holders`` echo
    the fleet index's longest published match for the prompt.
    """

    reason: str
    home: str
    depth: int
    holders: Tuple[str, ...]


class _Replica:
    """One supervised engine plus the router's bookkeeping about it."""

    def __init__(self, name: str, supervisor: EngineSupervisor,
                 factory: Callable[[], InferenceEngine]) -> None:
        self.name = name
        self.supervisor = supervisor
        self.factory = factory
        self.draining = False
        self.lock = threading.Lock()
        #: Outstanding work: id(entry) -> (handle-or-None, cost).
        #: Entries with a handle self-prune once the handle resolves;
        #: handle-less entries (the beam/sequential path) are removed
        #: explicitly by their dispatcher.
        self._outstanding: Dict[int, Tuple[Optional[EngineRequest], int]] = {}
        self.dispatches = 0
        self.failovers = 0

    # -- health -------------------------------------------------------
    @property
    def state(self) -> str:
        if self.draining:
            return "draining"
        supervisor_state = self.supervisor.state
        if supervisor_state == "serving":
            return "healthy"
        if supervisor_state == "restarting":
            return "degraded"
        return "dead"  # failed | stopped

    # -- queued-token accounting --------------------------------------
    def track(self, handle: Optional[EngineRequest], cost: int) -> int:
        entry = (handle, cost)
        key = id(entry)
        with self.lock:
            self._outstanding[key] = entry
        return key

    def untrack(self, key: int) -> None:
        with self.lock:
            self._outstanding.pop(key, None)

    def queued_tokens(self) -> int:
        """Outstanding decode-token cost; prunes resolved handles."""
        with self.lock:
            done = [key for key, (handle, _) in self._outstanding.items()
                    if handle is not None and handle.done]
            for key in done:
                del self._outstanding[key]
            return sum(cost for _, cost in self._outstanding.values())

    def outstanding(self) -> int:
        self.queued_tokens()  # prune
        with self.lock:
            return len(self._outstanding)


class ClusterRequest:
    """Routed request handle, mirroring :class:`EngineRequest`.

    ``result()`` / ``tokens()`` transparently re-dispatch to a
    surviving replica when the serving one dies; a streaming consumer
    skips the replayed prefix it already delivered (sound because the
    engine's output is bit-identical across replicas).  Timeouts are
    per attempt, not per request.
    """

    def __init__(self, router: "Router", request_id: int,
                 prompt_ids: List[int], config: GenerationConfig,
                 processors: Sequence[LogitsProcessor],
                 deadline_ms: Optional[float], cost: int) -> None:
        self._router = router
        self.request_id = request_id
        self.prompt_ids = prompt_ids
        self.config = config
        self.processors = processors
        self.deadline_ms = deadline_ms
        self.cost = cost
        self.submitted_at = router._clock.now()
        self.failovers = 0
        self._cancelled = False
        self._lock = threading.Lock()
        self._attempt: Optional[_Attempt] = None
        self._track_key: Optional[int] = None

    # -- introspection ------------------------------------------------
    @property
    def replica(self) -> Optional[str]:
        """Name of the replica currently serving this request."""
        attempt = self._attempt
        return attempt.replica.name if attempt is not None else None

    @property
    def done(self) -> bool:
        attempt = self._attempt
        return attempt is not None and attempt.handle.done

    def remaining_deadline_ms(self) -> Optional[float]:
        """Deadline budget left, on the router clock; None if unset."""
        if self.deadline_ms is None:
            return None
        elapsed = self._router._clock.now() - self.submitted_at
        return self.deadline_ms - elapsed * 1000.0

    # -- consumption --------------------------------------------------
    def result(self, timeout: Optional[float] = None) -> List[int]:
        """Block for the full token list, failing over as needed."""
        while True:
            attempt = self._attempt
            assert attempt is not None
            try:
                return attempt.handle.result(timeout=timeout)
            except _FAILOVER_ERRORS as error:
                self._router._failover(self, attempt, error)

    def tokens(self, timeout: Optional[float] = None) -> Iterator[int]:
        """Stream tokens as they decode, deduplicating across failover."""
        delivered = 0
        while True:
            attempt = self._attempt
            assert attempt is not None
            # A failed-over attempt replays the whole stream from the
            # start; skip the prefix this consumer already yielded
            # (byte-equal by the engine's determinism contract).
            skip = delivered
            try:
                for token in attempt.handle.tokens(timeout=timeout):
                    if skip > 0:
                        skip -= 1
                        continue
                    delivered += 1
                    yield token
                return
            except _FAILOVER_ERRORS as error:
                self._router._failover(self, attempt, error)

    def cancel(self) -> bool:
        """Cancel the current attempt; no further failover happens."""
        with self._lock:
            self._cancelled = True
            attempt = self._attempt
        return attempt.handle.cancel() if attempt is not None else False


class _ClusterMetrics:
    """Cluster metric handles, resolved once at construction."""

    def __init__(self, registry: MetricsRegistry) -> None:
        self.dispatches = registry.counter(
            "cluster_dispatches_total",
            help="Requests dispatched, by serving replica")
        self.failovers = registry.counter(
            "cluster_failovers_total",
            help="Re-dispatches after a replica failure, by failed replica")
        self.affinity_hits = registry.counter(
            "cluster_affinity_hits_total",
            help="Dispatches that landed on the prefix-affinity target"
        ).labels()
        self.affinity_spills = registry.counter(
            "cluster_affinity_spills_total",
            help="Dispatches spilled off the affinity target (saturation, "
                 "drain, death, or failover exclusion)").labels()
        self.affinity_hit_rate = registry.gauge(
            "cluster_affinity_hit_rate",
            help="Lifetime fraction of dispatches on the affinity target"
        ).labels()
        self.placement = registry.counter(
            "cluster_placement",
            help="Placement decisions, by reason "
                 "(affinity|cache|spill|fallback)")
        self.spill_total = registry.counter(
            "cluster_spill_total",
            help="Dispatches diverted off the preferred target by the "
                 "saturation load guard (balance of two)").labels()
        self.borrows = registry.counter(
            "cluster_kv_borrows_total",
            help="Cross-replica KV snapshot borrows, by borrowing replica")
        self.borrow_tokens = registry.counter(
            "cluster_kv_borrow_tokens_total",
            help="Prompt tokens whose prefill was skipped by borrowing "
                 "another replica's frozen KV snapshot").labels()
        self.cache_hit_token_rate = registry.gauge(
            "cluster_cache_hit_token_rate",
            help="Fleet-aggregated fraction of looked-up prompt tokens "
                 "served from prefix caches").labels()
        self.queued_tokens = registry.gauge(
            "cluster_queued_tokens",
            help="Outstanding decode-token cost, by replica")
        self.replica_up = registry.gauge(
            "cluster_replica_up",
            help="1 while the replica is healthy, 0 otherwise")
        self.healthy = registry.gauge(
            "cluster_replicas_healthy",
            help="Replicas currently healthy").labels()
        self.draining = registry.gauge(
            "cluster_replicas_draining",
            help="Replicas currently draining").labels()
        self.drain_seconds = registry.histogram(
            "cluster_drain_seconds",
            help="Wall-clock duration of drain() waits").labels()


class Router:
    """Prefix-affinity router over N supervised engine replicas.

    Parameters
    ----------
    engine_factory:
        Called with the replica *name* (``"r0"`` … ``"rN-1"``) to build
        each engine — and again on supervisor restarts and
        :meth:`swap`.  Pass the name through to
        ``InferenceEngine(name=...)`` so metric series carry the
        per-replica ``engine=`` / ``cache=`` labels.
    config:
        :class:`ClusterConfig`; the default runs two replicas.
    spill:
        Optional :class:`~repro.durability.FleetCacheSpill`-shaped
        object (``for_replica(name)``).  Each replica's supervisor gets
        its own per-replica spill directory, so restarts, ``swap`` and
        process restarts reload that replica's own prefix working set —
        warm caches stay disjoint exactly like the live ones.
    """

    def __init__(self, engine_factory: Callable[[str], InferenceEngine],
                 config: Optional[ClusterConfig] = None,
                 registry: Optional[MetricsRegistry] = None,
                 tracer: Optional[Tracer] = None,
                 spill: Optional[Any] = None) -> None:
        self.config = config or ClusterConfig()
        self.config.validate()
        self.spill = spill
        #: Whether :meth:`stop` wrote at least one replica's warm
        #: snapshot; ``None`` until stop runs or when no spill is
        #: configured (mirrors ``EngineSupervisor.last_spill_saved``).
        self.last_spill_saved: Optional[bool] = None
        self.registry = registry if registry is not None else get_registry()
        self.tracer = tracer if tracer is not None else get_tracer()
        self._clock = self.registry.clock
        self._metrics = _ClusterMetrics(self.registry)
        self.admission = ClusterAdmissionController(
            watermark_tokens=self.config.watermark_tokens,
            tokens_per_second_hint=self.config.tokens_per_second_hint,
            registry=self.registry)
        #: Shared fleet-wide prefix index; built before the replicas so
        #: the bound factories can attach each engine's cache to it.
        self.fleet_index: Optional[FleetCacheIndex] = (
            FleetCacheIndex(publish_tokens=self.config.publish_tokens)
            if self.config.fleet_cache else None)
        self._replicas: Dict[str, _Replica] = {}
        for index in range(self.config.replicas):
            name = f"r{index}"
            factory = self._bind_factory(engine_factory, name)
            self._replicas[name] = _Replica(
                name, self._build_supervisor(factory, name), factory)
        self._ring = self._build_ring(list(self._replicas))
        self._next_id = 0
        self._id_lock = threading.Lock()
        self._stop_event = threading.Event()
        self._heartbeat = threading.Thread(target=self._heartbeat_loop,
                                           name="repro-cluster-heartbeat",
                                           daemon=True)
        self._heartbeat.start()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _bind_factory(self, engine_factory: Callable[[str], InferenceEngine],
                      name: str) -> Callable[[], InferenceEngine]:
        def build() -> InferenceEngine:
            engine = engine_factory(name)
            self._attach_fleet_cache(name, engine)
            return engine
        return build

    def _attach_fleet_cache(self, name: str,
                            engine: InferenceEngine) -> None:
        """Wire a fresh engine's prefix cache into the fleet index.

        Runs on every engine build — construction, supervisor restarts
        and :meth:`swap` — so the index always tracks the *live* cache:
        attaching drops the replica's stale entries and invalidates the
        old cache's publisher.  The supervisor's warm reload happens
        after the factory returns, so spilled entries re-publish
        through the listener as they are re-inserted.
        """
        if self.fleet_index is None:
            return
        cache = getattr(engine, "prefix_cache", None)
        if cache is None:
            return
        cache.listener = self.fleet_index.attach(name, cache)

    def _build_supervisor(self, factory: Callable[[], InferenceEngine],
                          name: str) -> EngineSupervisor:
        # No sequential fallback: the fleet's degraded mode is another
        # replica, which is both faster and bit-identical.
        replica_spill = (self.spill.for_replica(name)
                         if self.spill is not None else None)
        return EngineSupervisor(
            factory, max_restarts=self.config.max_restarts,
            backoff_seconds=self.config.restart_backoff_seconds,
            poll_seconds=min(0.02, self.config.heartbeat_seconds),
            fallback=None, registry=self.registry, spill=replica_spill)

    def _build_ring(self, names: List[str]) -> List[Tuple[int, str]]:
        ring = [(self._hash(f"{name}#{vnode}".encode("utf-8")), name)
                for name in names
                for vnode in range(self.config.virtual_nodes)]
        ring.sort()
        return ring

    @staticmethod
    def _hash(data: bytes) -> int:
        # Stable across processes (unlike the salted builtin hash), so
        # a restarted router routes the same prefixes the same way.
        return int.from_bytes(
            hashlib.blake2b(data, digest_size=8).digest(), "big")

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def _affinity_key(self, prompt_ids: Sequence[int]) -> bytes:
        head = prompt_ids[:self.config.affinity_tokens]
        return ",".join(str(int(token)) for token in head).encode("ascii")

    def _ring_order(self, prompt_ids: Sequence[int]) -> List[str]:
        """Replica names in affinity order for this prompt's leading chunk.

        The first entry is the prompt's *home*; later entries are the
        deterministic fallback order, so a dead home always spills to
        the same survivor (keeping spilled prefixes cache-warm too).
        """
        point = self._hash(self._affinity_key(prompt_ids))
        index = bisect.bisect_left(self._ring, (point, ""))
        order: List[str] = []
        for offset in range(len(self._ring)):
            _, name = self._ring[(index + offset) % len(self._ring)]
            if name not in order:
                order.append(name)
                if len(order) == len(self._replicas):
                    break
        return order

    def affinity_replica(self, prompt_ids: Sequence[int]) -> str:
        """The prompt's home replica, ignoring health (for tests/benchmarks)."""
        return self._ring_order(prompt_ids)[0]

    def check_admission(self, cost_tokens: int) -> None:
        """Advisory fleet-admission probe for the HTTP layer.

        Raises :class:`~repro.resilience.OverloadShedError` when every
        live replica is past its watermark — the same decision dispatch
        would make — without recording an admission (dispatch does
        that when it actually happens).
        """
        queued = {name: replica.queued_tokens()
                  for name, replica in self._replicas.items()
                  if replica.state in ("healthy", "degraded")}
        if queued:
            self.admission.eligible(queued, cost_tokens, record_admit=False)

    def _place(self, prompt_ids: Sequence[int], cost: int,
               exclude: Set[str], enforce_admission: bool
               ) -> Tuple[_Replica, _Placement]:
        candidates = {name: replica
                      for name, replica in self._replicas.items()
                      if name not in exclude
                      and replica.state in ("healthy", "degraded")}
        if not candidates:
            raise NoReplicaAvailableError(
                "no replica available: "
                + ", ".join(f"{name}={replica.state}"
                            + (" (excluded)" if name in exclude else "")
                            for name, replica in self._replicas.items()))
        queued = {name: replica.queued_tokens()
                  for name, replica in candidates.items()}
        if enforce_admission:
            eligible = self.admission.eligible(queued, cost)
        else:
            # Failover re-dispatch: the request was already admitted
            # once; shedding it now would turn a survivable replica
            # death into a dropped request.
            eligible = list(candidates)
        order = self._ring_order(prompt_ids)
        home = order[0]
        eligible_set = set(eligible)
        # Cache-aware preference: the eligible replica holding the
        # longest published matching prefix, tie-broken in ring order
        # (so the home wins when it is itself a holder and cold traffic
        # keeps the ring's disjoint working sets).
        depth, holders = ((0, ()) if self.fleet_index is None
                          else self.fleet_index.longest_match(prompt_ids))
        target = None
        if depth > 0:
            target = next((name for name in order
                           if name in holders and name in eligible_set), None)
        if target is not None:
            reason = "affinity" if target == home else "cache"
        else:
            target = next((name for name in order if name in eligible_set),
                          None)
            reason = "affinity" if target == home else "fallback"
        if target is None:
            chosen = min(eligible, key=lambda name: queued[name])
            reason = "fallback"
        elif (queued[target] + cost <= self.config.saturation_tokens
              or len(eligible) == 1):
            chosen = target
        else:
            # Balance of two: the preferred target is saturated, so
            # compare it against the least-queued alternative only —
            # enough to flatten skew without scattering every prefix.
            alternative = min((name for name in eligible if name != target),
                              key=lambda name: queued[name])
            if queued[alternative] < queued[target]:
                chosen = alternative
                reason = "spill"
                self._metrics.spill_total.inc()
            else:
                chosen = target
        self._metrics.placement.labels(reason=reason).inc()
        if chosen == home:
            self._metrics.affinity_hits.inc()
        else:
            self._metrics.affinity_spills.inc()
        hits = self._metrics.affinity_hits.value
        spills = self._metrics.affinity_spills.value
        self._metrics.affinity_hit_rate.set(hits / (hits + spills))
        return candidates[chosen], _Placement(reason=reason, home=home,
                                              depth=depth, holders=holders)

    def _cache_of(self, replica: _Replica):
        try:
            return replica.supervisor.prefix_cache
        except Exception:  # noqa: BLE001 - engine mid-restart or dead
            return None

    def _maybe_borrow(self, replica: _Replica, placement: _Placement,
                      prompt_ids: Sequence[int]) -> bool:
        """Read-through cross-replica KV borrow, best-effort.

        When placement diverted off every holder of the longest
        published prefix (saturation, drain, death, failover
        exclusion), copy the owner's frozen snapshot into the chosen
        replica's cache — marked ``borrowed`` so the spill layer never
        persists it a second time — instead of recomputing prefill.
        Sharing the snapshot object is safe because frozen
        :class:`~repro.nn.KVCache` snapshots are copy-on-append and the
        cached logits row is read-only by contract.  Every failure mode
        (owner died, entry evicted since published, injected transfer
        fault) degrades to a cold prefill, never to a failed request.
        """
        if (self.fleet_index is None or not self.config.borrow
                or placement.depth == 0
                or replica.name in placement.holders):
            return False
        try:
            fault_check("fleet_cache.borrow")
        except InjectedFault:
            return False
        key = tuple(int(token) for token in prompt_ids[:placement.depth])
        target_cache = self._cache_of(replica)
        if target_cache is None:
            return False
        if target_cache.match_depth(key) >= placement.depth:
            return False  # already at least as warm locally
        for owner_name in placement.holders:
            owner = self._replicas.get(owner_name)
            # A draining owner is alive and readable — diverting off it
            # is precisely the case borrowing exists for; only a dead
            # owner's cache is off limits.
            if owner is None or owner.state == "dead":
                continue
            owner_cache = self._cache_of(owner)
            if owner_cache is None:
                continue
            found = owner_cache.peek(key)
            if found is None:
                continue  # index lag: the owner evicted it after publishing
            value, nbytes = found
            # Pin the owner's copy: a fleet-hot prefix that other
            # replicas borrow should outlive the owner's cold churn.
            owner_cache.pin(key)
            if target_cache.insert(key, value, nbytes, borrowed=True):
                self._metrics.borrows.labels(replica=replica.name).inc()
                self._metrics.borrow_tokens.inc(placement.depth)
                return True
        return False

    # ------------------------------------------------------------------
    # Serving surface (mirrors InferenceEngine)
    # ------------------------------------------------------------------
    def submit(self, prompt_ids: Sequence[int],
               config: Optional[GenerationConfig] = None,
               processors: Sequence[LogitsProcessor] = (),
               deadline_ms: Optional[float] = None) -> ClusterRequest:
        """Place and dispatch a request; returns a failover-aware handle.

        Raises :class:`OverloadShedError` when every live replica is
        past its admission watermark, :class:`NoReplicaAvailableError`
        when none is live at all, and whatever the chosen engine's
        ``submit`` raises for invalid requests (validation errors are
        never failed over).
        """
        if self._stop_event.is_set():
            raise EngineStoppedError("router has been stopped")
        config = config or GenerationConfig()
        if config.strategy == "beam":
            raise ValueError("beam search is not batched; use generate()")
        with self._id_lock:
            request_id = self._next_id
            self._next_id += 1
        request = ClusterRequest(self, request_id, list(prompt_ids), config,
                                 processors, deadline_ms,
                                 cost=config.max_new_tokens)
        self._dispatch(request, exclude=set(), enforce_admission=True)
        return request

    def generate(self, prompt_ids: Sequence[int],
                 config: Optional[GenerationConfig] = None,
                 processors: Sequence[LogitsProcessor] = (),
                 deadline_ms: Optional[float] = None) -> List[int]:
        """Synchronous generation through the fleet.

        Beam search (which the engine serves via its sequential
        fallback) is routed the same way and still fails over.
        """
        config = config or GenerationConfig()
        if config.strategy == "beam":
            return self._generate_unbatched(prompt_ids, config, processors,
                                            deadline_ms)
        return self.submit(prompt_ids, config, processors,
                           deadline_ms=deadline_ms).result()

    def _generate_unbatched(self, prompt_ids: Sequence[int],
                            config: GenerationConfig,
                            processors: Sequence[LogitsProcessor],
                            deadline_ms: Optional[float]) -> List[int]:
        exclude: Set[str] = set()
        failovers = 0
        while True:
            replica, placement = self._place(prompt_ids,
                                             config.max_new_tokens, exclude,
                                             enforce_admission=not exclude)
            self._maybe_borrow(replica, placement, prompt_ids)
            key = replica.track(None, config.max_new_tokens)
            self._note_dispatch(replica)
            try:
                return replica.supervisor.generate(prompt_ids, config,
                                                   processors,
                                                   deadline_ms=deadline_ms)
            except _FAILOVER_ERRORS:
                if failovers >= self.config.max_failovers:
                    raise
                failovers += 1
                exclude.add(replica.name)
                self._note_failover(replica)
            finally:
                replica.untrack(key)

    # ------------------------------------------------------------------
    # Dispatch + failover
    # ------------------------------------------------------------------
    def _note_dispatch(self, replica: _Replica) -> None:
        replica.dispatches += 1
        self._metrics.dispatches.labels(replica=replica.name).inc()
        self._metrics.queued_tokens.labels(replica=replica.name).set(
            replica.queued_tokens())

    def _note_failover(self, replica: _Replica) -> None:
        replica.failovers += 1
        self._metrics.failovers.labels(replica=replica.name).inc()
        if self.fleet_index is not None:
            # The dead engine's published prefixes died with its cache;
            # a restarted engine re-attaches (and republishes its warm
            # reload) through the bound factory.
            self.fleet_index.drop_replica(replica.name)

    def _dispatch(self, request: ClusterRequest, exclude: Set[str],
                  enforce_admission: bool) -> None:
        """Place ``request`` and submit it, skipping replicas that fail.

        On success the request's current attempt is replaced.  Raises
        the last submit error once every candidate is exhausted.
        """
        excluded = set(exclude)
        last_error: Optional[BaseException] = None
        while True:
            try:
                replica, placement = self._place(request.prompt_ids,
                                                 request.cost, excluded,
                                                 enforce_admission)
            except NoReplicaAvailableError:
                if last_error is not None:
                    raise last_error
                raise
            remaining_ms = request.remaining_deadline_ms()
            if remaining_ms is not None and remaining_ms <= 0:
                raise DeadlineExceededError(request.request_id,
                                            request.deadline_ms or 0.0, [])
            # Borrow before submit so the engine's prefill lookup finds
            # the snapshot already in its cache.
            self._maybe_borrow(replica, placement, request.prompt_ids)
            try:
                handle = replica.supervisor.submit(
                    request.prompt_ids, request.config, request.processors,
                    deadline_ms=remaining_ms)
            except _FAILOVER_ERRORS + (EngineQueueFullError,) as error:
                # Stale health or a full queue: skip this replica and
                # keep trying the rest of the affinity order.
                excluded.add(replica.name)
                last_error = error
                continue
            key = replica.track(handle, request.cost)
            old_key = request._track_key
            if old_key is not None and request._attempt is not None:
                request._attempt.replica.untrack(old_key)
            request._attempt = _Attempt(replica, handle)
            request._track_key = key
            self._note_dispatch(replica)
            return

    def _failover(self, request: ClusterRequest, attempt: _Attempt,
                  error: BaseException) -> None:
        """Re-dispatch ``request`` after ``attempt``'s replica failed.

        Consumer-driven and idempotent: whichever of ``result()`` /
        ``tokens()`` observes the crash first re-dispatches; a racing
        consumer finds the attempt already replaced and simply retries
        it.  Raises ``error`` when the failover budget is spent, the
        request was cancelled, or no survivor can take it.
        """
        with request._lock:
            if request._attempt is not attempt:
                return  # a racing consumer already failed over
            if request._cancelled:
                raise error
            if request.failovers >= self.config.max_failovers:
                raise error
            request.failovers += 1
            self._note_failover(attempt.replica)
            try:
                self._dispatch(request, exclude={attempt.replica.name},
                               enforce_admission=False)
            except NoReplicaAvailableError:
                raise error

    # ------------------------------------------------------------------
    # Rolling operations
    # ------------------------------------------------------------------
    def drain(self, name: str, timeout: float = 30.0) -> float:
        """Stop new admissions to ``name`` and wait for in-flight work.

        Returns the wall-clock drain duration (also observed on the
        ``cluster_drain_seconds`` histogram).  Raises
        :class:`TimeoutError` if in-flight work outlives ``timeout`` —
        the replica stays draining so the operator can retry or kill.
        """
        replica = self._replica(name)
        replica.draining = True
        start = time.monotonic()
        while replica.outstanding() > 0:
            if time.monotonic() - start > timeout:
                raise TimeoutError(
                    f"drain of {name!r} timed out after {timeout}s with "
                    f"{replica.outstanding()} request(s) in flight")
            time.sleep(0.005)
        seconds = time.monotonic() - start
        self._metrics.drain_seconds.observe(seconds)
        return seconds

    def swap(self, name: str,
             engine_factory: Optional[Callable[[str], InferenceEngine]]
             = None, timeout: float = 5.0) -> None:
        """Replace a drained replica's engine (model/config upgrade).

        Requires a completed :meth:`drain` — swapping a replica with
        in-flight work would drop it, which the fleet's whole design
        refuses to do.  With ``engine_factory`` the replica is rebuilt
        from the new factory (and future restarts use it too);
        without, the existing factory builds a fresh engine.
        """
        replica = self._replica(name)
        if not replica.draining:
            raise RuntimeError(f"swap requires drain: replica {name!r} is "
                               f"still admitting")
        if replica.outstanding() > 0:
            raise RuntimeError(f"swap requires an idle replica: {name!r} "
                               f"has in-flight work (drain first)")
        if engine_factory is not None:
            replica.factory = self._bind_factory(engine_factory, name)
        replica.supervisor.stop(timeout=timeout)
        replica.supervisor = self._build_supervisor(replica.factory, name)

    def readmit(self, name: str) -> None:
        """Return a drained replica to the placement rotation."""
        replica = self._replica(name)
        replica.draining = False

    def _replica(self, name: str) -> _Replica:
        try:
            return self._replicas[name]
        except KeyError:
            raise KeyError(f"unknown replica {name!r}; have "
                           f"{sorted(self._replicas)}") from None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return (not self._stop_event.is_set()
                and any(replica.state in ("healthy", "degraded")
                        for replica in self._replicas.values()))

    def replica_names(self) -> List[str]:
        return list(self._replicas)

    def weight_bytes(self) -> Dict[str, Any]:
        """Fleet weight-memory accounting, deduplicated by array identity.

        Replicas attached to one shared
        :class:`~repro.nn.kernels.WeightStore` (or one shared model)
        reference the same ndarrays, so ``unique_bytes`` stays ~1x the
        model size regardless of replica count — the invariant the
        shared-weight kernels exist to provide.  Isolated per-replica
        models show up as ~N x.  Quantized (int8) copies are counted
        once per store alongside the fp32 arrays they derive from.
        """
        unique: Dict[int, int] = {}
        models: Dict[int, Any] = {}
        for replica in self._replicas.values():
            model = replica.supervisor.engine.model
            models[id(model)] = model
        for model in models.values():
            for param in model.parameters():
                unique[id(param.data)] = param.data.nbytes
            kernels = getattr(model, "kernels", None)
            if kernels is not None:
                for arr in kernels.store.all_arrays():
                    unique[id(arr)] = arr.nbytes
        return {
            "replicas": len(self._replicas),
            "model_copies": len(models),
            "unique_bytes": sum(unique.values()),
        }

    def fleet_health(self) -> Dict[str, Any]:
        """Aggregate fleet state for ``/api/health``.

        ``status`` is the worst replica state — ``"ok"`` when every
        replica is healthy, matching the single-engine payload.
        """
        states = [replica.state for replica in self._replicas.values()]
        worst = max(states, key=_SEVERITY.index)
        return {
            "replicas": len(states),
            "healthy": states.count("healthy"),
            "draining": states.count("draining"),
            "status": "ok" if worst == "healthy" else worst,
        }

    def _cache_tier_snapshot(self) -> Dict[str, float]:
        """Aggregate fleet hit-token accounting; refreshes the gauge.

        Each replica contributes one atomic ``stats_snapshot`` taken
        under that cache's lock, so a replica's numerator and
        denominator are never torn; the cross-replica sum is then a
        consistent-enough rollup for the
        ``cluster_cache_hit_token_rate`` gauge.
        """
        hit_tokens = 0.0
        lookup_tokens = 0.0
        for replica in self._replicas.values():
            cache = self._cache_of(replica)
            if cache is None:
                continue
            snap = cache.stats_snapshot()
            hit_tokens += snap["hit_tokens"]
            lookup_tokens += snap["lookup_tokens"]
        rate = (hit_tokens / lookup_tokens) if lookup_tokens else 0.0
        self._metrics.cache_hit_token_rate.set(rate)
        return {"hit_tokens": hit_tokens, "lookup_tokens": lookup_tokens,
                "hit_token_rate": rate}

    def stats(self) -> Dict[str, Any]:
        """Point-in-time fleet stats (for ``/api/cluster`` and the CLI)."""
        hits = self._metrics.affinity_hits.value
        spills = self._metrics.affinity_spills.value
        lookups = hits + spills
        replicas = {}
        for name, replica in self._replicas.items():
            supervisor = replica.supervisor
            replicas[name] = {
                "state": replica.state,
                "draining": replica.draining,
                "queued_tokens": replica.queued_tokens(),
                "outstanding": replica.outstanding(),
                "dispatches": replica.dispatches,
                "failovers": replica.failovers,
                "supervisor": {
                    "state": supervisor.state,
                    "restarts": supervisor.restarts,
                },
                "prefix_cache": supervisor.prefix_cache.stats_snapshot(),
            }
        return {
            "replicas": replicas,
            "fleet": self.fleet_health(),
            "weights": self.weight_bytes(),
            "affinity": {
                "affinity_tokens": self.config.affinity_tokens,
                "hits": hits,
                "spills": spills,
                "hit_rate": (hits / lookups) if lookups else 0.0,
            },
            "placement": {
                "reasons": {
                    reason: self._metrics.placement.labels(
                        reason=reason).value
                    for reason in ("affinity", "cache", "spill", "fallback")},
                "spill_total": self._metrics.spill_total.value,
            },
            "cache_tier": {
                "enabled": self.fleet_index is not None,
                "borrow": (self.config.borrow
                           and self.fleet_index is not None),
                **self._cache_tier_snapshot(),
                "borrows": sum(child.value for _, child
                               in self._metrics.borrows.series()),
                "borrow_tokens": self._metrics.borrow_tokens.value,
                "index": (self.fleet_index.stats()
                          if self.fleet_index is not None else None),
            },
            "admission": self.admission.stats(),
        }

    # ------------------------------------------------------------------
    # Heartbeats + lifecycle
    # ------------------------------------------------------------------
    def _heartbeat_loop(self) -> None:
        while not self._stop_event.wait(self.config.heartbeat_seconds):
            self._observe_health()

    def _observe_health(self) -> None:
        healthy = draining = 0
        for name, replica in self._replicas.items():
            state = replica.state
            healthy += state == "healthy"
            draining += state == "draining"
            if state == "dead" and self.fleet_index is not None:
                self.fleet_index.drop_replica(name)
            self._metrics.replica_up.labels(replica=name).set(
                1 if state == "healthy" else 0)
            self._metrics.queued_tokens.labels(replica=name).set(
                replica.queued_tokens())
        self._metrics.healthy.set(healthy)
        self._metrics.draining.set(draining)
        self._cache_tier_snapshot()

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the heartbeat and every replica's supervisor + engine.

        With a spill configured, :attr:`last_spill_saved` records
        whether *any* replica actually wrote a warm snapshot during
        this stop (``None`` when no spill is configured), so shutdown
        summaries report the real outcome rather than the config.
        """
        self._stop_event.set()
        self._heartbeat.join(timeout=timeout)
        for replica in self._replicas.values():
            replica.supervisor.stop(timeout=timeout)
        if self.spill is not None and self.last_spill_saved is None:
            self.last_spill_saved = any(
                replica.supervisor.last_spill_saved is True
                for replica in self._replicas.values())
        self._observe_health()

    def __enter__(self) -> "Router":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
