"""``repro.cluster`` — a replicated serving fleet behind one router.

N :class:`~repro.serving.InferenceEngine` replicas, each supervised
and each with an isolated prefix cache, behind a :class:`Router` that
does cache-aware prefix-affinity placement (a fleet-wide
:class:`FleetCacheIndex` of published prefixes, falling back to
consistent hashing over the prompt's leading chunk), balance-of-two
spill under saturation, read-through cross-replica KV borrowing,
fleet-level admission control, transparent bit-identical failover, and
rolling drain → swap → readmit operations.  See ``docs/CLUSTER.md``.
"""

from .admission import ClusterAdmissionController
from .fleet_cache import FleetCacheIndex
from .router import (ClusterConfig, ClusterRequest, NoReplicaAvailableError,
                     Router)

__all__ = [
    "ClusterAdmissionController",
    "ClusterConfig",
    "ClusterRequest",
    "FleetCacheIndex",
    "NoReplicaAvailableError",
    "Router",
]
