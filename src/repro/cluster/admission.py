"""Fleet-level admission: shed only when *every* replica is saturated.

The single-engine :class:`~repro.resilience.AdmissionController`
guards one queue.  A fleet has N queues, and shedding while any
replica still has headroom throws away capacity: the router should
*spill* to the least-loaded replica instead.  So the cluster gate
works on the aggregate — it takes the per-replica queued-token map the
router maintains and answers "which replicas can take this request?",
raising :class:`~repro.resilience.OverloadShedError` (HTTP 503 +
``Retry-After``) only when the answer is none.

The per-replica budget semantics mirror the single-engine gate:

* work is denominated in decode tokens (``max_new_tokens``);
* a replica is eligible while ``queued + cost <= watermark``;
* an *idle* replica admits one oversized request (a request larger
  than the watermark must not starve forever);
* ``Retry-After`` is the smallest backlog across replicas divided by
  the throughput hint — the soonest any replica should have room.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional

from ..obs import MetricsRegistry, get_registry
from ..resilience.admission import OverloadShedError

__all__ = ["ClusterAdmissionController"]


class ClusterAdmissionController:
    """Aggregate load-shedding gate over per-replica queued-token budgets.

    Parameters
    ----------
    watermark_tokens:
        Per-replica queued-work ceiling, or ``None`` to disable
        shedding (every replica is always eligible).
    tokens_per_second_hint:
        Rough per-replica decode throughput, used only to size the
        ``Retry-After`` hint.
    """

    def __init__(self, watermark_tokens: Optional[int] = None,
                 tokens_per_second_hint: float = 200.0,
                 registry: Optional[MetricsRegistry] = None) -> None:
        if watermark_tokens is not None and watermark_tokens < 1:
            raise ValueError("watermark_tokens must be >= 1 or None")
        if tokens_per_second_hint <= 0:
            raise ValueError("tokens_per_second_hint must be > 0")
        self.watermark_tokens = watermark_tokens
        self.tokens_per_second_hint = tokens_per_second_hint
        registry = registry if registry is not None else get_registry()
        self._admitted = registry.counter(
            "cluster_admission_admitted_total",
            help="Requests admitted by the fleet-level gate")
        self._shed = registry.counter(
            "cluster_admission_shed_total",
            help="Requests shed with 503 because every replica was "
                 "past its watermark")

    def eligible(self, queued_by_replica: Dict[str, int],
                 cost_tokens: int,
                 record_admit: bool = True) -> List[str]:
        """Replica names with budget headroom for ``cost_tokens``.

        Raises :class:`OverloadShedError` when no replica qualifies —
        and only then; one under-watermark (or idle) replica is enough
        to admit.  ``record_admit=False`` makes a passing check an
        advisory probe (sheds still count — a shed probe IS the
        response the client gets).
        """
        if cost_tokens < 0:
            raise ValueError("cost_tokens must be >= 0")
        if not queued_by_replica:
            return []
        if self.watermark_tokens is None:
            if record_admit:
                self._admitted.inc()
            return list(queued_by_replica)
        under = [name for name, queued in queued_by_replica.items()
                 if queued + cost_tokens <= self.watermark_tokens]
        if not under:
            # Idle-oversized escape hatch, per replica: a request
            # bigger than the watermark is admitted by any replica
            # with nothing queued at all.
            under = [name for name, queued in queued_by_replica.items()
                     if queued == 0]
        if not under:
            retry_after = self._retry_after(queued_by_replica, cost_tokens)
            self._shed.inc()
            raise OverloadShedError(
                f"overloaded: all {len(queued_by_replica)} replica(s) past "
                f"the {self.watermark_tokens}-token watermark; retry in "
                f"~{retry_after}s", retry_after)
        if record_admit:
            self._admitted.inc()
        return under

    def _retry_after(self, queued_by_replica: Dict[str, int],
                     cost_tokens: int) -> int:
        assert self.watermark_tokens is not None
        backlog = min(
            max(queued + cost_tokens - self.watermark_tokens,
                queued - self.watermark_tokens // 2)
            for queued in queued_by_replica.values())
        return max(1, math.ceil(backlog / self.tokens_per_second_hint))

    def stats(self) -> Dict[str, Any]:
        return {
            "watermark_tokens": self.watermark_tokens,
            "admitted_total": self._admitted.value,
            "shed_total": self._shed.value,
        }
