"""Lightweight span tracing: a timing tree for the hot path.

``with tracer.span("decode", strategy="sample"):`` opens a span; spans
opened inside it become children, so a request produces a tree like::

    generate (0.412s)
    ├─ prefill (0.018s)
    └─ decode (0.391s)
       ├─ token (0.002s)
       └─ ...

Spans nest per-thread (a thread-local stack), finished root spans are
kept in a bounded ring so long-lived servers cannot leak, and the
clock is injectable so tests can assert exact durations.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .clock import Clock, SystemClock


@dataclass
class Span:
    """One timed region; ``children`` are the regions opened inside it."""

    name: str
    start: float
    end: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)
    error: Optional[str] = None

    @property
    def duration(self) -> float:
        """Elapsed seconds (0.0 while the span is still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def to_dict(self) -> Dict[str, Any]:
        """JSON view of the subtree rooted here."""
        payload: Dict[str, Any] = {
            "name": self.name,
            "duration_seconds": round(self.duration, 9),
        }
        if self.attrs:
            payload["attrs"] = dict(self.attrs)
        if self.error:
            payload["error"] = self.error
        if self.children:
            payload["children"] = [child.to_dict() for child in self.children]
        return payload

    def tree(self, indent: int = 0) -> str:
        """Indented text rendering of the subtree."""
        label = f"{'  ' * indent}{self.name} ({self.duration:.6f}s)"
        if self.error:
            label += f" !{self.error}"
        lines = [label]
        lines.extend(child.tree(indent + 1) for child in self.children)
        return "\n".join(lines)

    def find(self, name: str) -> List["Span"]:
        """All descendant spans (including self) with this name."""
        found = [self] if self.name == name else []
        for child in self.children:
            found.extend(child.find(name))
        return found


class Tracer:
    """Collects span trees; at most ``max_roots`` finished roots kept."""

    #: False on :class:`NullTracer`; hot loops check this to skip
    #: building leaf spans entirely when tracing is off.
    enabled = True

    def __init__(self, clock: Optional[Clock] = None,
                 max_roots: int = 64) -> None:
        if max_roots < 1:
            raise ValueError("max_roots must be >= 1")
        self.clock = clock or SystemClock()
        self.max_roots = max_roots
        self._roots: List[Span] = []
        self._dropped = 0
        self._local = threading.local()
        self._lock = threading.Lock()

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def span(self, name: str, **attrs: Any) -> "_SpanHandle":
        """Open a span; nests under the thread's current open span."""
        return _SpanHandle(self, name, attrs)

    def _finish_root(self, node: Span) -> None:
        with self._lock:
            self._roots.append(node)
            if len(self._roots) > self.max_roots:
                drop = len(self._roots) - self.max_roots
                del self._roots[:drop]
                self._dropped += drop

    def current(self) -> Optional[Span]:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def roots(self) -> List[Span]:
        """Finished root spans, oldest first."""
        with self._lock:
            return list(self._roots)

    @property
    def dropped(self) -> int:
        """Roots evicted by the ring bound since the last reset."""
        return self._dropped

    def to_dict(self) -> Dict[str, Any]:
        return {
            "dropped": self._dropped,
            "spans": [root.to_dict() for root in self.roots()],
        }

    def reset(self) -> None:
        with self._lock:
            self._roots.clear()
            self._dropped = 0


class _SpanHandle:
    """Class-based context manager for one span (cheaper than a
    generator-based one — this sits on the per-token hot path)."""

    __slots__ = ("_tracer", "_name", "_attrs", "_node", "_stack")

    def __init__(self, tracer: Tracer, name: str, attrs: Dict[str, Any]
                 ) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> Span:
        tracer = self._tracer
        node = Span(name=self._name, start=tracer.clock.now(),
                    attrs=self._attrs)
        stack = tracer._stack()
        if stack:
            stack[-1].children.append(node)
        stack.append(node)
        self._node = node
        self._stack = stack
        return node

    def __exit__(self, exc_type, exc, tb) -> bool:
        node = self._node
        if exc is not None:
            node.error = f"{type(exc).__name__}: {exc}"
        node.end = self._tracer.clock.now()
        self._stack.pop()
        if not self._stack:
            self._tracer._finish_root(node)
        return False


class _NullSpanHandle:
    """The do-nothing span handle :class:`NullTracer` hands out."""

    __slots__ = ()
    _SPAN = Span(name="null", start=0.0, end=0.0)

    def __enter__(self) -> Span:
        return self._SPAN

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


class NullTracer(Tracer):
    """Tracing 'off': spans cost one context-manager frame, keep nothing."""

    enabled = False
    _HANDLE = _NullSpanHandle()

    def __init__(self) -> None:
        super().__init__()

    def span(self, name: str, **attrs: Any) -> "_NullSpanHandle":
        return self._HANDLE

    def roots(self) -> List[Span]:
        return []


# ----------------------------------------------------------------------
# Process-wide default
# ----------------------------------------------------------------------
_default_tracer = Tracer()
_default_lock = threading.Lock()


def get_tracer() -> Tracer:
    """The process-wide tracer instrumented code defaults to."""
    return _default_tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the process-wide tracer; returns the previous one."""
    global _default_tracer
    with _default_lock:
        previous = _default_tracer
        _default_tracer = tracer
    return previous
