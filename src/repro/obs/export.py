"""Exposition formats: render a registry (and tracer) as text or JSON.

The text format is Prometheus-flavored — ``# TYPE`` headers, labeled
series as ``name{k="v"} value``, histograms expanded into ``_count`` /
``_sum`` / quantile series — close enough that the output drops into
any scrape-based pipeline.  The JSON format is the structured
equivalent served by ``GET /api/metrics`` and consumed by the tests.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Tuple

from .metrics import Counter, Gauge, Histogram, LabelKey, MetricsRegistry
from .trace import Tracer

_QUANTILES = (0.5, 0.9, 0.99)


def _format_labels(key: LabelKey, extra: Tuple[Tuple[str, str], ...] = ()
                   ) -> str:
    pairs = list(key) + list(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in pairs)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value != value:  # nan
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_text(registry: MetricsRegistry) -> str:
    """Prometheus-style exposition of every series in the registry."""
    lines = []
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for key, child in family.series():
            if isinstance(child, Histogram):
                lines.append(f"{family.name}_count{_format_labels(key)} "
                             f"{_format_value(child.count)}")
                lines.append(f"{family.name}_sum{_format_labels(key)} "
                             f"{_format_value(child.sum)}")
                for q in _QUANTILES:
                    labels = _format_labels(key, (("quantile", str(q)),))
                    lines.append(f"{family.name}{labels} "
                                 f"{_format_value(child.percentile(q * 100))}")
            elif isinstance(child, (Counter, Gauge)):
                lines.append(f"{family.name}{_format_labels(key)} "
                             f"{_format_value(child.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def render_json(registry: MetricsRegistry,
                tracer: Optional[Tracer] = None) -> Dict[str, Any]:
    """Structured snapshot: one entry per series, spans optional."""
    metrics: Dict[str, Any] = {}
    for family in registry.families():
        series = []
        for key, child in family.series():
            entry: Dict[str, Any] = {"labels": dict(key)}
            if isinstance(child, Histogram):
                entry.update(child.summary())
            else:
                entry["value"] = child.value
            series.append(entry)
        metrics[family.name] = {
            "kind": family.kind,
            "help": family.help,
            "series": series,
        }
    payload: Dict[str, Any] = {"metrics": metrics}
    if tracer is not None:
        payload["trace"] = tracer.to_dict()
    return payload


def render_json_text(registry: MetricsRegistry,
                     tracer: Optional[Tracer] = None, indent: int = 2) -> str:
    """The JSON exposition as a string (CLI convenience)."""
    return json.dumps(render_json(registry, tracer), indent=indent,
                      sort_keys=True)
