"""Observability: process-wide metrics, span tracing, exposition.

The serving stack's shared instrumentation layer (see
``docs/OBSERVABILITY.md`` for the metric-name and span taxonomy):

* :mod:`.metrics` — :class:`MetricsRegistry` with counters, gauges and
  reservoir histograms, all label-aware;
* :mod:`.trace` — :class:`Tracer` building per-request timing trees;
* :mod:`.export` — Prometheus-flavored text and JSON exposition;
* :mod:`.clock` — injectable clocks so every duration is testable.

Instrumented modules default to the process-wide :func:`get_registry`
/ :func:`get_tracer`; pass :class:`NullRegistry` / :class:`NullTracer`
to turn recording off on a call-by-call basis.
"""

from .clock import Clock, ManualClock, SystemClock
from .export import render_json, render_json_text, render_text
from .metrics import (Counter, Gauge, Histogram, MetricFamily,
                      MetricsRegistry, NullRegistry, get_registry,
                      set_registry)
from .trace import NullTracer, Span, Tracer, get_tracer, set_tracer

__all__ = [
    "Clock", "Counter", "Gauge", "Histogram", "ManualClock", "MetricFamily",
    "MetricsRegistry", "NullRegistry", "NullTracer", "Span", "SystemClock",
    "Tracer", "get_registry", "get_tracer", "render_json",
    "render_json_text", "render_text", "set_registry", "set_tracer",
]
