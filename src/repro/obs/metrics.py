"""Process-wide metrics: counters, gauges, histograms, labeled series.

The registry is the single place the serving stack reports numbers to:
the HTTP middleware, the job queue, the decode loop and the trainer all
write here, and ``GET /api/metrics`` / ``repro metrics`` read from it.

Design points:

* **Families and labels.**  ``registry.counter("http_requests_total")``
  returns a family; ``family.labels(route="/api/generate", status="200")``
  returns the child series for that label set.  A family used without
  labels acts as its own single unlabeled series, so simple metrics
  stay one-liners.
* **Histograms keep a reservoir.**  Exact count/sum/min/max plus a
  fixed-size uniform reservoir (Vitter's algorithm R with a seeded
  generator) for percentiles — bounded memory no matter how many
  observations arrive, and deterministic given the observation order.
* **Injectable clock.**  The registry stamps nothing by itself, but
  helpers like :meth:`Histogram.time` read time through the registry's
  clock so tests can drive a :class:`~repro.obs.clock.ManualClock`.
* **Null variant.**  :class:`NullRegistry` accepts the full API and
  records nothing — the "metrics off" baseline the overhead benchmark
  compares against.
"""

from __future__ import annotations

import random
import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from .clock import Clock, SystemClock

LabelKey = Tuple[Tuple[str, str], ...]

_DEFAULT_QUANTILES = (0.5, 0.9, 0.99)


def _label_key(labels: Dict[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing count."""

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can go up and down (queue depth, loss, ...)."""

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Streaming distribution summary with bounded memory.

    Tracks exact ``count``/``sum``/``min``/``max`` and a uniform
    reservoir of at most ``reservoir_size`` observations for
    percentile estimates.
    """

    def __init__(self, reservoir_size: int = 512, seed: int = 0,
                 clock: Optional[Clock] = None) -> None:
        if reservoir_size < 1:
            raise ValueError("reservoir_size must be >= 1")
        self.reservoir_size = reservoir_size
        # random.Random: scalar draws are several times faster than a
        # numpy Generator, and this sits on the per-token hot path.
        self._rng = random.Random(seed)
        self._reservoir: List[float] = []
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._clock = clock or SystemClock()
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value
            if len(self._reservoir) < self.reservoir_size:
                self._reservoir.append(value)
            else:
                # Algorithm R: replace a random slot with prob size/count.
                slot = self._rng.randrange(self._count)
                if slot < self.reservoir_size:
                    self._reservoir[slot] = value

    def observe_many(self, values) -> None:
        """Record a batch of observations in one locked, vectorized pass.

        Equivalent to calling :meth:`observe` per value (same exact
        count/sum/min/max, same uniform-reservoir guarantee) but far
        cheaper per element — hot loops collect locally and flush once.
        Deterministic given the sequence of ``observe``/``observe_many``
        calls, though the two consume the seeded stream differently.
        """
        arr = np.asarray(values, dtype=float)
        n = int(arr.size)
        if n == 0:
            return
        with self._lock:
            before = self._count
            self._count = before + n
            self._sum += float(arr.sum())
            lo, hi = float(arr.min()), float(arr.max())
            if self._min is None or lo < self._min:
                self._min = lo
            if self._max is None or hi > self._max:
                self._max = hi
            reservoir = self._reservoir
            size = self.reservoir_size
            fill = min(size - len(reservoir), n)
            if fill > 0:
                reservoir.extend(float(v) for v in arr[:fill])
            if fill < n:
                # Algorithm R for the tail: element with running count c
                # is admitted iff u < size/c, at slot floor(u*c) — one
                # uniform draw per element, identical admission law to
                # the scalar path.
                tail = arr[fill:]
                counts = np.arange(before + fill + 1, before + n + 1)
                rng_random = self._rng.random
                u = np.array([rng_random() for _ in range(n - fill)])
                slots = (u * counts).astype(np.int64)
                for slot, value in zip(slots, tail):
                    if slot < size:
                        reservoir[int(slot)] = float(value)

    @contextmanager
    def time(self) -> Iterator[None]:
        """Context manager observing the elapsed seconds of its body."""
        start = self._clock.now()
        try:
            yield
        finally:
            self.observe(self._clock.now() - start)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def percentile(self, q: float) -> float:
        """Estimated q-th percentile (q in [0, 100]); nan when empty."""
        with self._lock:
            if not self._reservoir:
                return float("nan")
            return float(np.percentile(np.asarray(self._reservoir), q))

    def summary(self, quantiles: Tuple[float, ...] = _DEFAULT_QUANTILES
                ) -> Dict[str, float]:
        """count / sum / mean / min / max / requested percentiles."""
        with self._lock:
            reservoir = np.asarray(self._reservoir) if self._reservoir else None
            count, total = self._count, self._sum
            lo, hi = self._min, self._max
        out: Dict[str, float] = {
            "count": float(count),
            "sum": total,
            "mean": total / count if count else float("nan"),
            "min": lo if lo is not None else float("nan"),
            "max": hi if hi is not None else float("nan"),
        }
        for q in quantiles:
            key = f"p{int(q * 100)}"
            out[key] = (float(np.percentile(reservoir, q * 100))
                        if reservoir is not None else float("nan"))
        return out


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """A named metric and its labeled children.

    ``family.labels(route="/x")`` returns (creating on first use) the
    child for that label set.  Calling instrument methods directly on
    the family operates on the unlabeled child, so metrics without
    labels need no extra step.
    """

    def __init__(self, name: str, kind: str, help: str = "",
                 clock: Optional[Clock] = None, **kind_kwargs) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self._clock = clock or SystemClock()
        self._kind_kwargs = kind_kwargs
        self._children: Dict[LabelKey, object] = {}
        self._lock = threading.Lock()

    def _make_child(self):
        if self.kind == "histogram":
            return Histogram(clock=self._clock, **self._kind_kwargs)
        return _KINDS[self.kind]()

    def labels(self, **labels: str):
        key = _label_key(labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._make_child()
                self._children[key] = child
            return child

    def series(self) -> List[Tuple[LabelKey, object]]:
        """All (label-key, child) pairs, sorted for stable exposition."""
        with self._lock:
            return sorted(self._children.items())

    # Unlabeled shorthand — delegate to the () child.
    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self.labels().dec(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    def observe_many(self, values) -> None:
        self.labels().observe_many(values)

    def time(self):
        return self.labels().time()

    @property
    def value(self) -> float:
        return self.labels().value

    def summary(self, quantiles: Tuple[float, ...] = _DEFAULT_QUANTILES):
        return self.labels().summary(quantiles)


class MetricsRegistry:
    """The process-wide metric namespace.

    Getting a metric is idempotent: ``registry.counter("x")`` returns
    the same family every call, so instrumented code never has to
    coordinate "who creates it first".  Re-using a name with a
    different kind raises — that is always a bug.
    """

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self.clock = clock or SystemClock()
        self._families: Dict[str, MetricFamily] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Instrument accessors
    # ------------------------------------------------------------------
    def _family(self, name: str, kind: str, help: str,
                **kind_kwargs) -> MetricFamily:
        if not name or not name.replace("_", "").isalnum():
            raise ValueError(f"invalid metric name {name!r}")
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(name, kind, help=help, clock=self.clock,
                                      **kind_kwargs)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}, "
                    f"requested {kind}")
            return family

    def counter(self, name: str, help: str = "") -> MetricFamily:
        return self._family(name, "counter", help)

    def gauge(self, name: str, help: str = "") -> MetricFamily:
        return self._family(name, "gauge", help)

    def histogram(self, name: str, help: str = "",
                  reservoir_size: int = 512) -> MetricFamily:
        return self._family(name, "histogram", help,
                            reservoir_size=reservoir_size)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def families(self) -> List[MetricFamily]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._families

    def reset(self) -> None:
        """Drop every family (tests; a fresh process in one call)."""
        with self._lock:
            self._families.clear()


class _NullChild:
    """Accepts every instrument call; stores nothing."""

    value = 0.0
    count = 0
    sum = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, values) -> None:
        pass

    @contextmanager
    def time(self) -> Iterator[None]:
        yield

    def percentile(self, q: float) -> float:
        return float("nan")

    def summary(self, quantiles: Tuple[float, ...] = _DEFAULT_QUANTILES):
        return {}


class _NullFamily(_NullChild):
    def labels(self, **labels: str) -> "_NullFamily":
        return self

    def series(self) -> List[Tuple[LabelKey, object]]:
        return []


class NullRegistry(MetricsRegistry):
    """A registry that records nothing — metrics 'off'.

    Instrumented code paths keep working unchanged; the overhead
    benchmark uses this as its baseline.
    """

    _NULL = _NullFamily()

    def _family(self, name: str, kind: str, help: str, **kind_kwargs):
        return self._NULL

    def families(self) -> List[MetricFamily]:
        return []


# ----------------------------------------------------------------------
# Process-wide default
# ----------------------------------------------------------------------
_default_registry = MetricsRegistry()
_default_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-wide registry instrumented code defaults to."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry; returns the previous one."""
    global _default_registry
    with _default_lock:
        previous = _default_registry
        _default_registry = registry
    return previous
