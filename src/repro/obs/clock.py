"""Injectable clocks — the determinism backbone of :mod:`repro.obs`.

Every timing-sensitive component in the observability layer (metric
timestamps, span durations, queue wait times) reads time through a
:class:`Clock` instead of calling :mod:`time` directly.  Production
code uses :class:`SystemClock`; tests inject :class:`ManualClock` and
advance it explicitly, which makes every duration assertable to the
exact second instead of "roughly small".
"""

from __future__ import annotations

import time


class Clock:
    """Time source. ``now()`` returns seconds as a monotonic float."""

    def now(self) -> float:
        raise NotImplementedError


class SystemClock(Clock):
    """Real time via ``time.perf_counter`` (monotonic, high resolution)."""

    def now(self) -> float:
        return time.perf_counter()


class ManualClock(Clock):
    """A clock that only moves when told to — for deterministic tests."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; returns the new reading."""
        if seconds < 0:
            raise ValueError("cannot advance a clock backwards")
        self._now += seconds
        return self._now

    def set(self, seconds: float) -> float:
        """Jump to an absolute reading (must not go backwards)."""
        if seconds < self._now:
            raise ValueError("cannot set a clock backwards")
        self._now = float(seconds)
        return self._now
