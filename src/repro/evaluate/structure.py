"""Structural validity scoring of generated recipes.

The paper's motivation for the tagged format is that prior systems'
recipes "are not well structured".  This module scores exactly that:
does a generated string parse into title/ingredients/instructions, and
do the instructions use the prompt's ingredients?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..preprocess.formatting import parse_recipe, structure_errors
from ..preprocess.numbers import decode_numbers

#: function words ignored when checking ingredient mentions
_STOPWORDS = frozenset(
    "a an and of the with in to for fresh frozen dried canned organic baby "
    "wild roasted smoked ripe raw whole ground crushed pickled sweet spicy "
    "large small local".split())


def content_words(text: str) -> List[str]:
    """Lowercased non-stopword alphabetic words of a string."""
    words = [w.strip(".,;:!?") for w in decode_numbers(text).lower().split()]
    return [w for w in words if w and w.isalpha() and w not in _STOPWORDS]


@dataclass(frozen=True)
class StructureScore:
    """Validity breakdown for one generated recipe string."""

    is_valid: bool
    errors: Sequence[str]
    num_ingredients: int
    num_instructions: int
    #: fraction of prompt ingredients mentioned in the instructions
    ingredient_coverage: float


def score_structure(text: str,
                    prompt_ingredients: Sequence[str] = ()) -> StructureScore:
    """Score one generated tagged string."""
    errors = structure_errors(text)
    parsed = parse_recipe(text)
    instruction_words = set()
    for line in parsed.instructions:
        instruction_words.update(content_words(line))

    coverage = 1.0
    if prompt_ingredients:
        mentioned = 0
        for name in prompt_ingredients:
            words = content_words(name)
            if words and any(word in instruction_words for word in words):
                mentioned += 1
        coverage = mentioned / len(prompt_ingredients)

    return StructureScore(
        is_valid=not errors,
        errors=tuple(errors),
        num_ingredients=len(parsed.ingredients),
        num_instructions=len(parsed.instructions),
        ingredient_coverage=coverage,
    )


def validity_rate(texts: Sequence[str]) -> float:
    """Fraction of generations that parse into a complete recipe."""
    if not texts:
        raise ValueError("need at least one generation")
    return sum(1 for t in texts if score_structure(t).is_valid) / len(texts)
