"""ROUGE metrics: recall-oriented counterparts to BLEU.

Recipe-generation papers report ROUGE alongside BLEU (RecipeGPT does
exactly this for instruction generation), because BLEU's precision
orientation under-penalizes dropped content — and dropped steps are
the characteristic failure of recipe generators.  Implemented from
Lin (2004):

* ROUGE-N — n-gram recall/precision/F1;
* ROUGE-L — longest-common-subsequence F-measure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from .bleu import ngrams

TokenSeq = Sequence[str]


@dataclass(frozen=True)
class RougeScore:
    """Precision/recall/F1 triple for one ROUGE variant."""

    precision: float
    recall: float
    f1: float


def _f_measure(precision: float, recall: float, beta: float = 1.0) -> float:
    if precision <= 0.0 or recall <= 0.0:
        return 0.0
    beta2 = beta * beta
    return (1 + beta2) * precision * recall / (recall + beta2 * precision)


def rouge_n(candidate: TokenSeq, reference: TokenSeq, n: int = 1) -> RougeScore:
    """N-gram overlap ROUGE (clipped counts, like BLEU's numerator)."""
    cand = ngrams(candidate, n)
    ref = ngrams(reference, n)
    overlap = sum(min(count, ref[gram]) for gram, count in cand.items())
    cand_total = sum(cand.values())
    ref_total = sum(ref.values())
    precision = overlap / cand_total if cand_total else 0.0
    recall = overlap / ref_total if ref_total else 0.0
    return RougeScore(precision=precision, recall=recall,
                      f1=_f_measure(precision, recall))


def _lcs_length(a: TokenSeq, b: TokenSeq) -> int:
    """Length of the longest common subsequence (O(len(a)*len(b)))."""
    if not a or not b:
        return 0
    previous = [0] * (len(b) + 1)
    for token_a in a:
        current = [0]
        for j, token_b in enumerate(b, start=1):
            if token_a == token_b:
                current.append(previous[j - 1] + 1)
            else:
                current.append(max(previous[j], current[-1]))
        previous = current
    return previous[-1]


def rouge_l(candidate: TokenSeq, reference: TokenSeq) -> RougeScore:
    """LCS-based ROUGE-L F-measure."""
    lcs = _lcs_length(candidate, reference)
    precision = lcs / len(candidate) if candidate else 0.0
    recall = lcs / len(reference) if reference else 0.0
    return RougeScore(precision=precision, recall=recall,
                      f1=_f_measure(precision, recall))


def corpus_rouge(candidates: Sequence[TokenSeq],
                 references: Sequence[TokenSeq],
                 variant: str = "l") -> RougeScore:
    """Mean per-segment ROUGE over a corpus.

    ``variant`` is ``"1"``, ``"2"`` or ``"l"``.
    """
    if len(candidates) != len(references):
        raise ValueError(
            f"{len(candidates)} candidates vs {len(references)} references")
    if not candidates:
        raise ValueError("corpus_rouge needs at least one segment")
    scores: List[RougeScore] = []
    for cand, ref in zip(candidates, references):
        if variant == "l":
            scores.append(rouge_l(cand, ref))
        elif variant in ("1", "2"):
            scores.append(rouge_n(cand, ref, n=int(variant)))
        else:
            raise ValueError(f"unknown ROUGE variant {variant!r}")
    count = len(scores)
    return RougeScore(
        precision=sum(s.precision for s in scores) / count,
        recall=sum(s.recall for s in scores) / count,
        f1=sum(s.f1 for s in scores) / count,
    )
