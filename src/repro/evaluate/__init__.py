"""Evaluation: BLEU (Table I), perplexity, diversity, structure."""

from .bleu import BleuResult, brevity_penalty, corpus_bleu, ngrams, sentence_bleu
from .diversity import corpus_novelty, distinct_n, novelty, self_bleu
from .perplexity import bits_per_token, perplexity
from .report import (EvaluationReport, ModelEvaluation,
                     attach_retrieval_novelty)
from .significance import (BootstrapResult, PermutationResult,
                           bootstrap_interval, paired_permutation_test,
                           segment_bleu_scores)
from .rouge import RougeScore, corpus_rouge, rouge_l, rouge_n
from .structure import (StructureScore, content_words, score_structure,
                        validity_rate)

__all__ = [
    "BleuResult", "EvaluationReport", "ModelEvaluation", "StructureScore",
    "bits_per_token", "brevity_penalty", "content_words", "corpus_bleu",
    "corpus_novelty", "distinct_n", "ngrams", "novelty", "perplexity",
    "RougeScore", "corpus_rouge", "rouge_l", "rouge_n",
    "BootstrapResult", "PermutationResult", "attach_retrieval_novelty",
    "bootstrap_interval",
    "paired_permutation_test", "segment_bleu_scores",
    "score_structure", "self_bleu", "sentence_bleu", "validity_rate",
]
