"""Evaluation report aggregation: the Table-I machinery.

Bundles BLEU / perplexity / diversity / validity for a set of models
into one comparable report, and renders it as the aligned text table
the benchmarks print.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class ModelEvaluation:
    """All metrics for one model."""

    model_name: str
    bleu: float
    perplexity: Optional[float] = None
    validity: Optional[float] = None
    distinct2: Optional[float] = None
    novelty: Optional[float] = None
    params: Optional[int] = None
    train_seconds: Optional[float] = None
    extra: Dict[str, float] = field(default_factory=dict)


def attach_retrieval_novelty(evaluation: ModelEvaluation, index,
                             generated_texts: Sequence[str]
                             ) -> ModelEvaluation:
    """Fill a row's ``novelty`` from the retrieval index.

    Scores each generated text against its nearest corpus neighbour in
    ``index`` (a :class:`~repro.retrieval.RecipeIndex`, see
    ``docs/RETRIEVAL.md``) — the embedding-space memorization measure —
    and records the aggregate: ``novelty`` becomes the mean, and
    ``extra`` gains ``min_novelty`` and ``memorized_fraction``
    (renderable as table columns).  Distinct from the n-gram
    ``corpus_novelty`` in :mod:`.diversity`: that asks "are these
    n-grams new", this asks "is any *whole recipe* a near-copy".
    """
    from ..retrieval import summarize_novelty

    summary = summarize_novelty(index.novelty_batch(list(generated_texts)))
    evaluation.novelty = summary.mean_novelty
    evaluation.extra["min_novelty"] = summary.min_novelty
    evaluation.extra["memorized_fraction"] = summary.memorized_fraction
    return evaluation


@dataclass
class EvaluationReport:
    """An ordered collection of model evaluations."""

    title: str
    rows: List[ModelEvaluation] = field(default_factory=list)

    def add(self, evaluation: ModelEvaluation) -> None:
        self.rows.append(evaluation)

    def get(self, model_name: str) -> ModelEvaluation:
        for row in self.rows:
            if row.model_name == model_name:
                return row
        raise KeyError(f"no evaluation for model {model_name!r}")

    def ranking(self) -> List[str]:
        """Model names sorted by BLEU, best first."""
        return [row.model_name
                for row in sorted(self.rows, key=lambda r: -r.bleu)]

    def to_table(self, columns: Sequence[str] = ("bleu",)) -> str:
        """Render as an aligned text table (Table-I style)."""
        headers = ["Model"] + [c.upper() if c == "bleu" else c.capitalize()
                               for c in columns]
        body: List[List[str]] = []
        for row in self.rows:
            cells = [row.model_name]
            for column in columns:
                value = getattr(row, column, None)
                if value is None:
                    value = row.extra.get(column)
                if value is None:
                    cells.append("-")
                elif isinstance(value, float):
                    cells.append(f"{value:.3f}")
                else:
                    cells.append(str(value))
            body.append(cells)
        widths = [max(len(headers[i]), *(len(r[i]) for r in body)) if body
                  else len(headers[i])
                  for i in range(len(headers))]
        lines = [self.title]
        lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for cells in body:
            lines.append("  ".join(c.ljust(w) for c, w in zip(cells, widths)))
        return "\n".join(lines)
