"""Statistical significance for metric comparisons.

A model-comparison table without uncertainty is folklore; this module
adds the two standard tools used for MT/generation metrics:

* :func:`bootstrap_interval` — percentile bootstrap confidence
  interval for a corpus-level metric over its segments;
* :func:`paired_permutation_test` — significance of a *difference*
  between two systems evaluated on the same segments (Koehn, 2004).

Both operate on per-segment score arrays, so they work for BLEU,
ROUGE, validity or anything else the harness computes per segment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

Aggregate = Callable[[np.ndarray], float]


@dataclass(frozen=True)
class BootstrapResult:
    """A point estimate with its bootstrap confidence interval."""

    estimate: float
    lower: float
    upper: float
    confidence: float
    resamples: int

    def __str__(self) -> str:
        percent = int(self.confidence * 100)
        return (f"{self.estimate:.3f} "
                f"[{percent}% CI {self.lower:.3f}–{self.upper:.3f}]")


def bootstrap_interval(scores: Sequence[float], confidence: float = 0.95,
                       resamples: int = 2000, seed: int = 0,
                       aggregate: Optional[Aggregate] = None) -> BootstrapResult:
    """Percentile-bootstrap CI for an aggregate of per-segment scores."""
    scores = np.asarray(list(scores), dtype=np.float64)
    if scores.size < 2:
        raise ValueError("need at least 2 segments to bootstrap")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    if resamples < 10:
        raise ValueError("resamples must be >= 10")
    agg: Aggregate = aggregate or (lambda arr: float(arr.mean()))
    rng = np.random.default_rng(seed)
    n = scores.size
    stats = np.empty(resamples)
    for i in range(resamples):
        sample = scores[rng.integers(0, n, size=n)]
        stats[i] = agg(sample)
    alpha = (1.0 - confidence) / 2.0
    return BootstrapResult(
        estimate=agg(scores),
        lower=float(np.quantile(stats, alpha)),
        upper=float(np.quantile(stats, 1.0 - alpha)),
        confidence=confidence,
        resamples=resamples,
    )


@dataclass(frozen=True)
class PermutationResult:
    """Outcome of a paired permutation test."""

    observed_difference: float
    p_value: float
    permutations: int

    def significant(self, alpha: float = 0.05) -> bool:
        return self.p_value < alpha


def paired_permutation_test(scores_a: Sequence[float],
                            scores_b: Sequence[float],
                            permutations: int = 5000,
                            seed: int = 0) -> PermutationResult:
    """Two-sided paired permutation test on mean score difference.

    Under the null hypothesis the two systems are interchangeable per
    segment; randomly swapping each segment's pair of scores gives the
    null distribution of the mean difference.
    """
    a = np.asarray(list(scores_a), dtype=np.float64)
    b = np.asarray(list(scores_b), dtype=np.float64)
    if a.shape != b.shape or a.size < 2:
        raise ValueError("score vectors must be equal-length with >= 2 segments")
    if permutations < 100:
        raise ValueError("permutations must be >= 100")
    rng = np.random.default_rng(seed)
    observed = float((a - b).mean())
    diffs = a - b
    count = 0
    for _ in range(permutations):
        signs = rng.integers(0, 2, size=diffs.size) * 2 - 1
        permuted = float((diffs * signs).mean())
        if abs(permuted) >= abs(observed) - 1e-15:
            count += 1
    # add-one smoothing: the observed labelling is itself a permutation
    p_value = (count + 1) / (permutations + 1)
    return PermutationResult(observed_difference=observed, p_value=p_value,
                             permutations=permutations)


def segment_bleu_scores(candidates: Sequence[Sequence[str]],
                        references_list: Sequence[Sequence[Sequence[str]]],
                        max_n: int = 4, smoothing: int = 1) -> np.ndarray:
    """Per-segment sentence-BLEU vector (input for the tests above)."""
    from .bleu import sentence_bleu
    if len(candidates) != len(references_list):
        raise ValueError("candidates and references must align")
    return np.array([
        sentence_bleu(cand, refs, max_n=max_n, smoothing=smoothing).bleu
        for cand, refs in zip(candidates, references_list)
    ])
