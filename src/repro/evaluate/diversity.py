"""Diversity and novelty metrics for generated recipes.

"Our objective is that ... model generates novel and diverse recipes"
(Sec. I).  These metrics quantify exactly that:

* ``distinct_n`` — fraction of unique n-grams across generations (Li
  et al., 2016); low values mean the decoder loops;
* ``self_bleu`` — BLEU of each generation against the others; high
  values mean the generations collapse onto each other;
* ``novelty`` — 1 minus the maximum n-gram overlap with any training
  recipe; high values mean the model is not parroting the corpus.
"""

from __future__ import annotations

from typing import List, Sequence

from .bleu import corpus_bleu, ngrams


def distinct_n(generations: Sequence[Sequence[str]], n: int = 2) -> float:
    """Unique n-grams / total n-grams, pooled over all generations."""
    total = 0
    unique = set()
    for tokens in generations:
        grams = list(ngrams(tokens, n))
        counts = ngrams(tokens, n)
        total += sum(counts.values())
        unique.update(grams)
    if total == 0:
        return 0.0
    return len(unique) / total


def self_bleu(generations: Sequence[Sequence[str]], max_n: int = 4) -> float:
    """Mean BLEU of each generation against all the others.

    Needs at least two generations; returns 0.0 for a single one.
    """
    if len(generations) < 2:
        return 0.0
    scores: List[float] = []
    for index, candidate in enumerate(generations):
        references = [g for j, g in enumerate(generations) if j != index]
        scores.append(corpus_bleu([candidate], [references],
                                  max_n=max_n, smoothing=1).bleu)
    return sum(scores) / len(scores)


def novelty(generation: Sequence[str],
            training_corpus: Sequence[Sequence[str]], n: int = 4) -> float:
    """1 − max fraction of the generation's n-grams found in one
    training recipe.

    1.0 means no training recipe shares any n-gram of order ``n``;
    0.0 means some training recipe contains every one (a copy).
    """
    gen_grams = ngrams(generation, n)
    total = sum(gen_grams.values())
    if total == 0:
        return 1.0
    worst_overlap = 0.0
    for reference in training_corpus:
        ref_keys = set(ngrams(reference, n))
        matched = sum(count for gram, count in gen_grams.items()
                      if gram in ref_keys)
        overlap = matched / total
        if overlap > worst_overlap:
            worst_overlap = overlap
            if worst_overlap >= 1.0:
                break
    return 1.0 - worst_overlap


def corpus_novelty(generations: Sequence[Sequence[str]],
                   training_corpus: Sequence[Sequence[str]],
                   n: int = 4) -> float:
    """Mean :func:`novelty` over a batch of generations."""
    if not generations:
        raise ValueError("need at least one generation")
    return sum(novelty(g, training_corpus, n=n) for g in generations) / len(generations)
