"""Perplexity evaluation.

Perplexity is the metric the inverse-cooking line of work the paper
cites uses (Salvador et al., 2019); we report it alongside BLEU so
model comparisons do not rest on a single number.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..models.base import LanguageModel
from ..nn import no_grad
from ..nn import functional as F
from ..training.dataset import LMDataset


def perplexity(model: LanguageModel, dataset: LMDataset,
               batch_size: int = 8, max_batches: Optional[int] = None,
               seed: int = 0) -> float:
    """exp(mean token cross-entropy) of ``model`` on ``dataset``."""
    model.eval()
    rng = np.random.default_rng(seed)
    total_loss = 0.0
    total_tokens = 0
    with no_grad():
        for index, (inputs, targets) in enumerate(
                dataset.batches(batch_size, rng, drop_last=False)):
            if max_batches is not None and index >= max_batches:
                break
            logits = model(inputs)
            flat = logits.reshape(-1, model.vocab_size)
            loss = F.cross_entropy(flat, targets.reshape(-1))
            count = targets.size
            total_loss += loss.item() * count
            total_tokens += count
    if total_tokens == 0:
        raise ValueError("dataset produced no evaluation tokens")
    return math.exp(total_loss / total_tokens)


def bits_per_token(model: LanguageModel, dataset: LMDataset,
                   batch_size: int = 8, max_batches: Optional[int] = None,
                   seed: int = 0) -> float:
    """Cross-entropy in bits (log2 of perplexity)."""
    return math.log2(perplexity(model, dataset, batch_size=batch_size,
                                max_batches=max_batches, seed=seed))
