"""BLEU score — the paper's evaluation metric (Table I).

A from-scratch implementation of Papineni et al. (2002):

* modified n-gram precision with reference clipping;
* brevity penalty;
* corpus-level aggregation (sum clipped counts over segments first,
  then combine — the correct corpus BLEU, not a mean of sentence
  BLEUs);
* smoothing methods 0–3 after Chen & Cherry (2014), because short
  generated recipes can have zero higher-order matches.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import List, Sequence, Tuple

TokenSeq = Sequence[str]


def ngrams(tokens: TokenSeq, n: int) -> Counter:
    """Multiset of n-grams of order ``n``."""
    if n < 1:
        raise ValueError("n must be >= 1")
    return Counter(tuple(tokens[i:i + n]) for i in range(len(tokens) - n + 1))


def _clipped_matches(candidate: TokenSeq, references: Sequence[TokenSeq],
                     n: int) -> Tuple[int, int]:
    """(clipped match count, total candidate n-grams) for order ``n``."""
    cand_counts = ngrams(candidate, n)
    total = sum(cand_counts.values())
    if not cand_counts:
        return 0, 0
    max_ref: Counter = Counter()
    for reference in references:
        for gram, count in ngrams(reference, n).items():
            if count > max_ref[gram]:
                max_ref[gram] = count
    matches = sum(min(count, max_ref[gram]) for gram, count in cand_counts.items())
    return matches, total


def _closest_ref_length(candidate: TokenSeq,
                        references: Sequence[TokenSeq]) -> int:
    """Reference length closest to the candidate's (ties -> shorter)."""
    cand_len = len(candidate)
    return min((abs(len(ref) - cand_len), len(ref)) for ref in references)[1]


def brevity_penalty(candidate_length: int, reference_length: int) -> float:
    if candidate_length == 0:
        return 0.0
    if candidate_length >= reference_length:
        return 1.0
    return math.exp(1.0 - reference_length / candidate_length)


def _smooth(matches: List[int], totals: List[int],
            method: int) -> List[float]:
    """Apply a Chen & Cherry smoothing method to precision fractions.

    With smoothing enabled, an order the candidate is too short to form
    at all (zero total n-grams) contributes a neutral ``1.0`` — there
    are no n-grams to be wrong about — instead of zeroing the geometric
    mean.  Method 0 keeps the strict behaviour (score collapses to 0).
    """
    if method == 0:
        return [m / t if t else 0.0 for m, t in zip(matches, totals)]
    if method == 1:
        # Add epsilon to zero match counts.
        return [(m if m else 0.1) / t if t else 1.0
                for m, t in zip(matches, totals)]
    if method == 2:
        # Add 1 to both numerator and denominator for n >= 2.
        out = []
        for order, (m, t) in enumerate(zip(matches, totals), start=1):
            if t == 0:
                out.append(1.0)
            elif order == 1:
                out.append(m / t)
            else:
                out.append((m + 1) / (t + 1))
        return out
    if method == 3:
        # NIST geometric: each zero precision is 1 / (2^k * t).
        out = []
        invcnt = 1
        for m, t in zip(matches, totals):
            if t == 0:
                out.append(1.0)
            elif m == 0:
                invcnt *= 2
                out.append(1.0 / (invcnt * t))
            else:
                out.append(m / t)
        return out
    raise ValueError(f"unknown smoothing method {method}; choose 0-3")


@dataclass(frozen=True)
class BleuResult:
    """BLEU with its components, for the Table-I report."""

    bleu: float
    precisions: Tuple[float, ...]
    brevity_penalty: float
    candidate_length: int
    reference_length: int

    def __float__(self) -> float:
        return self.bleu


def corpus_bleu(candidates: Sequence[TokenSeq],
                references_list: Sequence[Sequence[TokenSeq]],
                max_n: int = 4,
                weights: Sequence[float] = (),
                smoothing: int = 1) -> BleuResult:
    """Corpus-level BLEU.

    Parameters
    ----------
    candidates:
        One tokenized hypothesis per segment.
    references_list:
        For each segment, one or more tokenized references.
    max_n:
        Highest n-gram order (default BLEU-4).
    weights:
        Per-order weights; default uniform ``1/max_n``.
    smoothing:
        Chen & Cherry method 0–3 (default 1).
    """
    if len(candidates) != len(references_list):
        raise ValueError(
            f"{len(candidates)} candidates vs {len(references_list)} reference sets")
    if not candidates:
        raise ValueError("corpus_bleu needs at least one segment")
    weights = tuple(weights) or tuple(1.0 / max_n for _ in range(max_n))
    if len(weights) != max_n:
        raise ValueError(f"need {max_n} weights, got {len(weights)}")

    matches = [0] * max_n
    totals = [0] * max_n
    cand_len = 0
    ref_len = 0
    for candidate, references in zip(candidates, references_list):
        if not references:
            raise ValueError("every segment needs at least one reference")
        cand_len += len(candidate)
        ref_len += _closest_ref_length(candidate, references)
        for order in range(1, max_n + 1):
            m, t = _clipped_matches(candidate, references, order)
            matches[order - 1] += m
            totals[order - 1] += t

    precisions = _smooth(matches, totals, smoothing)
    bp = brevity_penalty(cand_len, ref_len)
    if any(p <= 0.0 for p, w in zip(precisions, weights) if w > 0):
        bleu = 0.0
    else:
        log_sum = sum(w * math.log(p) for w, p in zip(weights, precisions) if w > 0)
        bleu = bp * math.exp(log_sum)
    return BleuResult(bleu=bleu, precisions=tuple(precisions),
                      brevity_penalty=bp, candidate_length=cand_len,
                      reference_length=ref_len)


def sentence_bleu(candidate: TokenSeq, references: Sequence[TokenSeq],
                  max_n: int = 4, weights: Sequence[float] = (),
                  smoothing: int = 1) -> BleuResult:
    """BLEU for a single segment."""
    return corpus_bleu([candidate], [references], max_n=max_n,
                       weights=weights, smoothing=smoothing)
