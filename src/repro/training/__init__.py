"""Training: packed LM dataset, trainer loop, callbacks."""

from .callbacks import (Callback, CheckpointCallback, EarlyStopping,
                        LossLogger, MetricsCallback)
from .experiments import (ExperimentResult, Grid, RunRecord, run_experiment)
from .dataset import LMDataset, train_val_split
from .trainer import Trainer, TrainingConfig, TrainingResult

__all__ = [
    "Callback", "CheckpointCallback", "EarlyStopping", "LMDataset",
    "LossLogger", "MetricsCallback", "Trainer",
    "TrainingConfig", "TrainingResult", "train_val_split",
    "ExperimentResult", "Grid", "RunRecord", "run_experiment",
]
