"""Trainer callbacks: logging and early stopping.

Callbacks observe training through two hooks; the trainer calls them
with a read-only view of its progress.  They are deliberately simple —
enough to reproduce the paper's training runs and to test hook
ordering — not a framework.
"""

from __future__ import annotations

import sys
import time
from typing import List, Optional, TextIO


class Callback:
    """Base callback; override any subset of the hooks."""

    def on_step(self, step: int, loss: float, lr: float) -> None:
        pass

    def on_eval(self, step: int, val_loss: float) -> None:
        pass


class LossLogger(Callback):
    """Print progress every ``every`` steps; keeps the loss history."""

    def __init__(self, every: int = 50, stream: Optional[TextIO] = None) -> None:
        if every < 1:
            raise ValueError("every must be >= 1")
        self.every = every
        self.stream = stream or sys.stderr
        self.history: List[tuple] = []
        self._start = time.perf_counter()

    def on_step(self, step: int, loss: float, lr: float) -> None:
        self.history.append((step, loss))
        if step % self.every == 0:
            elapsed = time.perf_counter() - self._start
            print(f"step {step:5d}  loss {loss:7.4f}  lr {lr:.2e}  "
                  f"{elapsed:6.1f}s", file=self.stream)

    def on_eval(self, step: int, val_loss: float) -> None:
        print(f"step {step:5d}  val_loss {val_loss:7.4f}", file=self.stream)


class CheckpointCallback(Callback):
    """Periodically persist the model during training.

    The paper's Colab sessions "crashed after every 5 to 7 epochs"
    (Sec. VII) — periodic checkpointing is the standard mitigation.
    Writes ``<directory>/step-<n>/`` checkpoints every ``every`` steps
    and, when ``keep_best`` is set, ``<directory>/best/`` whenever the
    validation loss improves.
    """

    def __init__(self, model, tokenizer, directory, every: int = 200,
                 keep_best: bool = True) -> None:
        from pathlib import Path
        if every < 1:
            raise ValueError("every must be >= 1")
        self.model = model
        self.tokenizer = tokenizer
        self.directory = Path(directory)
        self.every = every
        self.keep_best = keep_best
        self.best_val: Optional[float] = None
        self.saved: List[str] = []

    def _save(self, name: str) -> None:
        from ..core.checkpoints import save_checkpoint
        save_checkpoint(self.model, self.tokenizer, self.directory / name)
        self.saved.append(name)

    def on_step(self, step: int, loss: float, lr: float) -> None:
        if step % self.every == 0:
            self._save(f"step-{step}")

    def on_eval(self, step: int, val_loss: float) -> None:
        if self.keep_best and (self.best_val is None
                               or val_loss < self.best_val):
            self.best_val = val_loss
            self._save("best")


class MetricsCallback(Callback):
    """Reports training progress into a metrics registry.

    Series: ``train_steps_total`` / ``train_evals_total`` counters,
    ``train_loss`` / ``train_val_loss`` / ``train_lr`` gauges, and a
    ``train_step_seconds`` histogram of the wall time between
    consecutive ``on_step`` hooks (i.e. one optimizer step plus data
    loading).  With an injected :class:`~repro.obs.ManualClock` every
    recorded duration is exact, which is how the tests pin it down.
    """

    def __init__(self, registry=None, clock=None) -> None:
        from ..obs import get_registry
        registry = registry if registry is not None else get_registry()
        self._clock = clock or registry.clock
        self.steps = registry.counter(
            "train_steps_total", help="Optimizer steps completed")
        self.evals = registry.counter(
            "train_evals_total", help="Validation evaluations run")
        self.loss = registry.gauge(
            "train_loss", help="Most recent training loss")
        self.val_loss = registry.gauge(
            "train_val_loss", help="Most recent validation loss")
        self.lr = registry.gauge(
            "train_lr", help="Most recent learning rate")
        self.step_seconds = registry.histogram(
            "train_step_seconds", help="Wall time between training steps")
        self._last_step_at: Optional[float] = None

    def on_step(self, step: int, loss: float, lr: float) -> None:
        now = self._clock.now()
        if self._last_step_at is not None:
            self.step_seconds.observe(now - self._last_step_at)
        self._last_step_at = now
        self.steps.inc()
        self.loss.set(loss)
        self.lr.set(lr)

    def on_eval(self, step: int, val_loss: float) -> None:
        self.evals.inc()
        self.val_loss.set(val_loss)


class EarlyStopping(Callback):
    """Request a stop after ``patience`` evals without improvement."""

    def __init__(self, patience: int = 3, min_delta: float = 0.0) -> None:
        if patience < 1:
            raise ValueError("patience must be >= 1")
        self.patience = patience
        self.min_delta = min_delta
        self.best: Optional[float] = None
        self.bad_evals = 0
        self.should_stop = False

    def on_eval(self, step: int, val_loss: float) -> None:
        if self.best is None or val_loss < self.best - self.min_delta:
            self.best = val_loss
            self.bad_evals = 0
        else:
            self.bad_evals += 1
            if self.bad_evals >= self.patience:
                self.should_stop = True
