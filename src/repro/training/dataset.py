"""Language-model dataset: packed token stream + window batching.

The paper packs recipes into "one long string with all the recipes"
(Sec. IV-B) and trains on fixed-length windows.  That is what this
module does: tokenize every recipe text, join them with EOS, and serve
``(inputs, targets)`` windows where targets are inputs shifted by one.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

import numpy as np

from ..tokenizers import Tokenizer


class LMDataset:
    """A packed next-token-prediction dataset.

    Parameters
    ----------
    texts:
        Preprocessed recipe strings.
    tokenizer:
        Any :class:`~repro.tokenizers.Tokenizer`.
    seq_len:
        Window length; each batch row is ``seq_len`` inputs and
        ``seq_len`` shifted targets.
    """

    def __init__(self, texts: Sequence[str], tokenizer: Tokenizer,
                 seq_len: int = 128) -> None:
        if seq_len < 2:
            raise ValueError("seq_len must be >= 2")
        if not texts:
            raise ValueError("texts must be non-empty")
        self.tokenizer = tokenizer
        self.seq_len = seq_len
        ids: List[int] = []
        for text in texts:
            ids.extend(tokenizer.encode(text, add_eos=True))
        if len(ids) < seq_len + 1:
            raise ValueError(
                f"corpus has only {len(ids)} tokens; need > seq_len={seq_len}")
        self.stream = np.asarray(ids, dtype=np.int64)

    def __len__(self) -> int:
        """Number of non-overlapping windows available."""
        return (len(self.stream) - 1) // self.seq_len

    @property
    def num_tokens(self) -> int:
        return int(self.stream.size)

    def window(self, index: int) -> Tuple[np.ndarray, np.ndarray]:
        """The ``index``-th non-overlapping (inputs, targets) window."""
        if not 0 <= index < len(self):
            raise IndexError(f"window {index} out of range [0, {len(self)})")
        start = index * self.seq_len
        chunk = self.stream[start:start + self.seq_len + 1]
        return chunk[:-1], chunk[1:]

    def batches(self, batch_size: int, rng: np.random.Generator,
                drop_last: bool = True) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """One epoch of shuffled window batches.

        Yields ``(inputs, targets)`` arrays shaped
        ``(batch_size, seq_len)``.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        order = rng.permutation(len(self))
        for start in range(0, len(order), batch_size):
            chosen = order[start:start + batch_size]
            if drop_last and len(chosen) < batch_size:
                break
            pairs = [self.window(i) for i in chosen]
            inputs = np.stack([p[0] for p in pairs])
            targets = np.stack([p[1] for p in pairs])
            yield inputs, targets


def train_val_split(texts: Sequence[str], val_fraction: float = 0.1,
                    seed: int = 0) -> Tuple[List[str], List[str]]:
    """Shuffle and split texts into (train, validation) lists."""
    if not 0.0 < val_fraction < 1.0:
        raise ValueError("val_fraction must be in (0, 1)")
    texts = list(texts)
    if len(texts) < 2:
        raise ValueError("need at least 2 texts to split")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(texts))
    num_val = max(1, int(round(len(texts) * val_fraction)))
    num_val = min(num_val, len(texts) - 1)
    val_idx = set(order[:num_val].tolist())
    train = [texts[i] for i in range(len(texts)) if i not in val_idx]
    val = [texts[i] for i in range(len(texts)) if i in val_idx]
    return train, val
