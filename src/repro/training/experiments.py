"""Experiment runner: config sweeps with collected, renderable results.

The benchmarks each hand-roll a small sweep (models × budgets,
decoders × metrics).  This module factors that pattern into reusable
infrastructure: declare a grid of configurations, run a train/eval
function per point, and collect results into a sortable, markdown-
renderable table — the minimum a reproducible-experiments repo needs.
"""

from __future__ import annotations

import itertools
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Sequence


@dataclass(frozen=True)
class Grid:
    """A cartesian parameter grid.

    >>> list(Grid({"lr": [1, 2], "model": ["a"]}))
    [{'lr': 1, 'model': 'a'}, {'lr': 2, 'model': 'a'}]
    """

    axes: Mapping[str, Sequence[Any]]

    def __post_init__(self) -> None:
        if not self.axes:
            raise ValueError("grid needs at least one axis")
        for name, values in self.axes.items():
            if not values:
                raise ValueError(f"axis {name!r} has no values")

    def __len__(self) -> int:
        size = 1
        for values in self.axes.values():
            size *= len(values)
        return size

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        names = list(self.axes)
        for combo in itertools.product(*(self.axes[n] for n in names)):
            yield dict(zip(names, combo))


@dataclass
class RunRecord:
    """One grid point's outcome."""

    params: Dict[str, Any]
    metrics: Dict[str, float] = field(default_factory=dict)
    seconds: float = 0.0
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class ExperimentResult:
    """All runs of one experiment."""

    name: str
    records: List[RunRecord] = field(default_factory=list)

    @property
    def succeeded(self) -> List[RunRecord]:
        return [r for r in self.records if r.ok]

    def best(self, metric: str, maximize: bool = True) -> RunRecord:
        """The run with the best value of ``metric``."""
        candidates = [r for r in self.succeeded if metric in r.metrics]
        if not candidates:
            raise ValueError(f"no successful run recorded metric {metric!r}")
        key = lambda r: r.metrics[metric]  # noqa: E731
        return max(candidates, key=key) if maximize else min(candidates, key=key)

    def to_markdown(self, metrics: Optional[Sequence[str]] = None) -> str:
        """Render all runs as a GitHub-flavored markdown table."""
        if not self.records:
            return f"## {self.name}\n\n(no runs)"
        param_names = sorted({k for r in self.records for k in r.params})
        if metrics is None:
            metrics = sorted({k for r in self.records for k in r.metrics})
        header = param_names + list(metrics) + ["seconds", "status"]
        lines = [f"## {self.name}", "",
                 "| " + " | ".join(header) + " |",
                 "|" + "|".join("---" for _ in header) + "|"]
        for record in self.records:
            cells = [str(record.params.get(p, "")) for p in param_names]
            for metric in metrics:
                value = record.metrics.get(metric)
                cells.append(f"{value:.4g}" if value is not None else "")
            cells.append(f"{record.seconds:.1f}")
            cells.append("ok" if record.ok else f"error: {record.error}")
            lines.append("| " + " | ".join(cells) + " |")
        return "\n".join(lines)


RunFn = Callable[[Dict[str, Any]], Dict[str, float]]


def run_experiment(name: str, grid: Grid, run_fn: RunFn,
                   on_result: Optional[Callable[[RunRecord], None]] = None,
                   continue_on_error: bool = True) -> ExperimentResult:
    """Execute ``run_fn`` for every grid point.

    ``run_fn`` receives the parameter dict and returns a metric dict.
    Exceptions are captured per-run (the sweep continues) unless
    ``continue_on_error`` is False.
    """
    result = ExperimentResult(name=name)
    for params in grid:
        record = RunRecord(params=dict(params))
        start = time.perf_counter()
        try:
            metrics = run_fn(params)
            if not isinstance(metrics, dict):
                raise TypeError("run_fn must return a dict of metrics")
            record.metrics = {k: float(v) for k, v in metrics.items()}
        except Exception as exc:  # noqa: BLE001 - sweeps must survive
            record.error = f"{type(exc).__name__}: {exc}"
            if not continue_on_error:
                record.seconds = time.perf_counter() - start
                result.records.append(record)
                raise
            traceback.format_exc()  # keep the trace constructible
        record.seconds = time.perf_counter() - start
        result.records.append(record)
        if on_result is not None:
            on_result(record)
    return result
