"""The training loop: AdamW + warmup schedule + clipping + eval.

Drives any :class:`~repro.models.base.LanguageModel` over an
:class:`~repro.training.dataset.LMDataset`.  Mirrors the fine-tuning
recipe the paper inherited from HuggingFace: AdamW, linear warmup,
gradient clipping at 1.0, periodic validation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..models.base import LanguageModel
from ..nn import AdamW, clip_grad_norm, no_grad
from ..nn import functional as F
from ..nn.schedule import schedule_from_name
from .callbacks import Callback, EarlyStopping
from .dataset import LMDataset


@dataclass
class TrainingConfig:
    """Hyperparameters for one training run."""

    max_steps: int = 500
    batch_size: int = 8
    learning_rate: float = 3e-3
    weight_decay: float = 0.01
    grad_clip: float = 1.0
    schedule: str = "cosine"
    warmup_steps: int = 50
    eval_every: int = 100
    eval_batches: int = 8
    seed: int = 0

    def validate(self) -> None:
        if self.max_steps < 1:
            raise ValueError("max_steps must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be > 0")
        if self.eval_every < 1:
            raise ValueError("eval_every must be >= 1")


@dataclass
class TrainingResult:
    """What a run produced: loss curves and throughput."""

    steps: int
    train_losses: List[float] = field(default_factory=list)
    val_losses: List[float] = field(default_factory=list)
    tokens_seen: int = 0
    wall_seconds: float = 0.0
    stopped_early: bool = False

    @property
    def final_train_loss(self) -> float:
        return self.train_losses[-1] if self.train_losses else float("nan")

    @property
    def final_val_loss(self) -> float:
        return self.val_losses[-1] if self.val_losses else float("nan")

    @property
    def tokens_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.tokens_seen / self.wall_seconds


class Trainer:
    """Runs the optimization loop for one model."""

    def __init__(self, model: LanguageModel,
                 config: Optional[TrainingConfig] = None,
                 callbacks: Sequence[Callback] = ()) -> None:
        self.model = model
        self.config = config or TrainingConfig()
        self.config.validate()
        self.callbacks = list(callbacks)
        self.optimizer = AdamW(model.parameters(), lr=self.config.learning_rate,
                               weight_decay=self.config.weight_decay)
        self.schedule = schedule_from_name(
            self.config.schedule, self.config.learning_rate,
            self.config.warmup_steps, self.config.max_steps)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, dataset: LMDataset,
                 max_batches: Optional[int] = None) -> float:
        """Mean token-level cross-entropy on up to ``max_batches``."""
        self.model.eval()
        rng = np.random.default_rng(self.config.seed + 7919)
        losses: List[float] = []
        limit = max_batches or self.config.eval_batches
        with no_grad():
            for index, (inputs, targets) in enumerate(
                    dataset.batches(self.config.batch_size, rng, drop_last=False)):
                if index >= limit:
                    break
                logits = self.model(inputs)
                flat = logits.reshape(-1, self.model.vocab_size)
                loss = F.cross_entropy(flat, targets.reshape(-1))
                losses.append(loss.item())
        self.model.train()
        return float(np.mean(losses)) if losses else float("nan")

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------
    def train(self, dataset: LMDataset,
              val_dataset: Optional[LMDataset] = None) -> TrainingResult:
        config = self.config
        self.model.train()
        rng = np.random.default_rng(config.seed)
        result = TrainingResult(steps=0)
        start = time.perf_counter()
        step = 0
        early_stoppers = [c for c in self.callbacks if isinstance(c, EarlyStopping)]

        while step < config.max_steps:
            for inputs, targets in dataset.batches(config.batch_size, rng):
                if step >= config.max_steps:
                    break
                lr = self.schedule.apply(self.optimizer, step)
                self.optimizer.zero_grad()
                logits = self.model(inputs)
                flat = logits.reshape(-1, self.model.vocab_size)
                loss = F.cross_entropy(flat, targets.reshape(-1))
                loss.backward()
                clip_grad_norm(self.model.parameters(), config.grad_clip)
                self.optimizer.step()

                step += 1
                loss_value = loss.item()
                result.train_losses.append(loss_value)
                result.tokens_seen += int(inputs.size)
                for callback in self.callbacks:
                    callback.on_step(step, loss_value, lr)

                if val_dataset is not None and step % config.eval_every == 0:
                    val_loss = self.evaluate(val_dataset)
                    result.val_losses.append(val_loss)
                    for callback in self.callbacks:
                        callback.on_eval(step, val_loss)
                    if any(stopper.should_stop for stopper in early_stoppers):
                        result.stopped_early = True
                        break
            if result.stopped_early:
                break

        result.steps = step
        result.wall_seconds = time.perf_counter() - start
        self.model.eval()
        return result
