"""Synthetic RecipeDB substrate.

A from-scratch, seeded reconstruction of the RecipeDB resource the
paper trains on: schema (:mod:`~repro.recipedb.schema`), the 6/26/74
geo-cultural taxonomy (:mod:`~repro.recipedb.regions`), 268 cooking
processes (:mod:`~repro.recipedb.processes`), the ingredient catalog
(:mod:`~repro.recipedb.ingredients`), FlavorDB/nutrition/health links,
a grammar-based corpus generator (:mod:`~repro.recipedb.generator`)
and an indexed in-memory database (:mod:`~repro.recipedb.database`).
"""

from .crawl import render_crawl_corpus, render_crawl_text
from .substitutions import (DIET_RULES, Substitution, SubstitutionEngine,
                            available_diets)
from .analysis import (ZipfFit, cooccurrence, corpus_report,
                       pmi_pairs, process_distribution,
                       region_distribution, zipf_fit)
from .database import CorpusStats, RecipeDatabase
from .generator import CorpusConfig, RecipeGenerator, generate_corpus
from .ingredients import (CATEGORIES, IngredientCatalog, default_catalog,
                          full_scale_catalog)
from .io import export_csv, load_jsonl, save_jsonl
from .pairing import PairingGraph
from .processes import PROCESSES, PROCESS_KIND, processes_of_kind, validate_processes
from .regions import (CONTINENTS, COUNTRIES, REGIONS, REGION_TABLE,
                      continent_of, countries_of, locate_country,
                      validate_taxonomy)
from .schema import (Ingredient, Instruction, NutritionProfile, Quantity,
                     Recipe, RecipeIngredient)

__all__ = [
    "CATEGORIES", "CONTINENTS", "COUNTRIES", "CorpusConfig", "CorpusStats",
    "Ingredient", "IngredientCatalog", "Instruction", "NutritionProfile",
    "PROCESSES", "PROCESS_KIND", "PairingGraph", "Quantity", "Recipe",
    "RecipeDatabase", "RecipeGenerator", "RecipeIngredient", "REGIONS",
    "REGION_TABLE", "continent_of", "countries_of", "default_catalog",
    "export_csv", "full_scale_catalog", "generate_corpus", "load_jsonl",
    "locate_country", "processes_of_kind", "save_jsonl",
    "ZipfFit", "cooccurrence", "corpus_report", "pmi_pairs",
    "process_distribution", "region_distribution", "validate_processes",
    "validate_taxonomy", "zipf_fit",
    "DIET_RULES", "Substitution", "SubstitutionEngine", "available_diets",
    "render_crawl_corpus", "render_crawl_text",
]
