"""Corpus analytics: Zipf fit, distributions, co-occurrence.

RecipeDB's stated purpose is "facilitating scientific explorations of
the culinary space"; this module provides the exploration toolkit over
the synthetic corpus: the ingredient rank-frequency (Zipf) law that
real recipe corpora follow, regional/process usage distributions, and
the ingredient co-occurrence structure that underlies pairing studies.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Tuple

import numpy as np

from .database import RecipeDatabase


@dataclass(frozen=True)
class ZipfFit:
    """Least-squares fit of log(freq) = intercept - slope * log(rank)."""

    slope: float
    intercept: float
    r_squared: float
    num_types: int

    @property
    def is_zipfian(self) -> bool:
        """Heavy-tailed with a decent power-law fit (rule of thumb)."""
        return self.slope > 0.5 and self.r_squared > 0.7


def zipf_fit(frequencies: Counter) -> ZipfFit:
    """Fit a power law to a rank-frequency distribution."""
    counts = np.array(sorted(frequencies.values(), reverse=True),
                      dtype=np.float64)
    if counts.size < 3:
        raise ValueError("need at least 3 types for a Zipf fit")
    ranks = np.arange(1, counts.size + 1, dtype=np.float64)
    x = np.log(ranks)
    y = np.log(counts)
    slope, intercept = np.polyfit(x, y, deg=1)
    predicted = slope * x + intercept
    ss_res = float(((y - predicted) ** 2).sum())
    ss_tot = float(((y - y.mean()) ** 2).sum()) or 1e-12
    return ZipfFit(slope=-float(slope), intercept=float(intercept),
                   r_squared=1.0 - ss_res / ss_tot,
                   num_types=int(counts.size))


def region_distribution(db: RecipeDatabase) -> Dict[str, float]:
    """Region -> fraction of the corpus."""
    total = len(db) or 1
    counts = Counter(recipe.region for recipe in db.all())
    return {region: count / total for region, count in counts.most_common()}


def process_distribution(db: RecipeDatabase) -> Dict[str, float]:
    """Process -> fraction of recipes using it."""
    total = len(db) or 1
    return {process: count / total
            for process, count in db.process_frequencies().most_common()}


def cooccurrence(db: RecipeDatabase,
                 top_k: int = 20) -> List[Tuple[Tuple[str, str], int]]:
    """Most frequent ingredient pairs appearing in the same recipe."""
    pairs: Counter = Counter()
    for recipe in db.all():
        names = sorted(set(recipe.ingredient_names))
        pairs.update(combinations(names, 2))
    return pairs.most_common(top_k)


def pmi_pairs(db: RecipeDatabase, min_count: int = 3,
              top_k: int = 20) -> List[Tuple[Tuple[str, str], float]]:
    """Ingredient pairs ranked by pointwise mutual information.

    PMI surfaces pairs that co-occur *more than chance given their
    individual frequencies* — flavor affinities rather than pantry
    staples.
    """
    total = len(db)
    if total == 0:
        return []
    singles = db.ingredient_frequencies()
    scored: List[Tuple[Tuple[str, str], float]] = []
    for pair, count in cooccurrence(db, top_k=10**6):
        if count < min_count:
            continue
        a, b = pair
        p_pair = count / total
        p_a = singles[a] / total
        p_b = singles[b] / total
        pmi = float(np.log(p_pair / (p_a * p_b)))
        scored.append((pair, pmi))
    scored.sort(key=lambda item: -item[1])
    return scored[:top_k]


def corpus_report(db: RecipeDatabase) -> str:
    """Render a human-readable analytics summary."""
    stats = db.stats()
    fit = zipf_fit(db.ingredient_frequencies())
    regions = list(region_distribution(db).items())[:5]
    processes = list(process_distribution(db).items())[:5]
    lines = [
        "Corpus analytics",
        f"  recipes: {stats.num_recipes}, ingredients: "
        f"{stats.num_distinct_ingredients}, processes: "
        f"{stats.num_distinct_processes}",
        f"  Zipf fit: slope={fit.slope:.2f}, R²={fit.r_squared:.2f} "
        f"({'heavy-tailed' if fit.is_zipfian else 'not clearly Zipfian'})",
        "  top regions: " + ", ".join(f"{r} ({f:.0%})" for r, f in regions),
        "  top processes: " + ", ".join(f"{p} ({f:.0%})"
                                        for p, f in processes),
    ]
    return "\n".join(lines)
